"""ASCII figure rendering."""

import pytest

from repro.analysis.plots import ascii_bars, ascii_cdf, ascii_xy


class TestAsciiCdf:
    def test_single_series(self):
        chart = ascii_cdf({"sample": [1, 2, 3, 4, 5]})
        assert "CDF" in chart
        assert "* sample" in chart
        assert "*" in chart.splitlines()[0] or any(
            "*" in line for line in chart.splitlines()
        )

    def test_two_series_get_distinct_markers(self):
        chart = ascii_cdf({"a": [1, 2, 3], "b": [2, 3, 4]})
        assert "* a" in chart
        assert "o b" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_cdf({})

    def test_constant_sample(self):
        chart = ascii_cdf({"flat": [5.0, 5.0, 5.0]})
        assert "flat" in chart  # degenerate range handled


class TestAsciiXy:
    def test_basic_curve(self):
        chart = ascii_xy([1, 2, 3, 4], [10, 20, 15, 40], y_label="time")
        lines = chart.splitlines()
        assert any("*" in line for line in lines)
        assert "y: time" in chart

    def test_log_x(self):
        chart = ascii_xy(
            [10, 100, 1000], [1, 2, 3], log_x=True, x_label="blocks"
        )
        assert "blocks (log)" in chart

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_xy([1, 2], [1])

    def test_empty(self):
        with pytest.raises(ValueError):
            ascii_xy([], [])

    def test_axis_labels_show_range(self):
        chart = ascii_xy([0, 100], [0, 50])
        assert "100" in chart
        assert "50" in chart


class TestAsciiBars:
    def test_bars_scale_to_peak(self):
        chart = ascii_bars({"bds": 10.0, "gingko": 40.0}, width=20)
        lines = chart.splitlines()
        bds_len = lines[0].count("█")
        gingko_len = lines[1].count("█")
        assert gingko_len == 20
        assert bds_len == 5

    def test_unit_suffix(self):
        chart = ascii_bars({"a": 3.0}, unit="s")
        assert "3s" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars({"a": 0.0})

"""The strategy factory, runner, and smaller experiment entry points."""

import pytest

from repro.analysis.experiments import (
    exp_fig4_disjointness,
    exp_fig11bc_delays,
    exp_fig12a_fault_tolerance,
    exp_fig13c_origin_fraction,
    exp_interference,
    exp_workload_characterization,
    fig3_topology,
)
from repro.analysis.runner import (
    STRATEGY_NAMES,
    compare_strategies,
    make_strategy,
    run_simulation,
)
from repro.baselines import GingkoStrategy
from repro.core.formulation import StandardLPRouter
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


class TestMakeStrategy:
    def test_all_names_construct(self):
        for name in STRATEGY_NAMES:
            assert make_strategy(name, seed=0) is not None

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("carrier-pigeon")

    def test_bds_backends(self):
        assert make_strategy("bds").router.backend == "greedy"
        assert make_strategy("bds-fptas").router.backend == "fptas"
        assert make_strategy("bds-lp").router.backend == "lp"
        assert isinstance(make_strategy("bds-standard-lp").router, StandardLPRouter)

    def test_gingko_is_strategy(self):
        assert isinstance(make_strategy("gingko", seed=1), GingkoStrategy)


class TestRunnerHelpers:
    def build(self):
        topo = Topology.full_mesh(3, 2, 1 * GB, 10 * MBps)
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=20 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        return topo, job

    def test_run_simulation(self):
        topo, job = self.build()
        result = run_simulation(topo, [job], "bds", seed=0)
        assert result.all_complete

    def test_compare_strategies_fresh_state(self):
        def topo_factory():
            return Topology.full_mesh(3, 2, 1 * GB, 10 * MBps)

        def jobs_factory(topo):
            job = MulticastJob(
                job_id="j",
                src_dc="dc0",
                dst_dcs=("dc1", "dc2"),
                total_bytes=20 * MB,
                block_size=4 * MB,
            )
            job.bind(topo)
            return [job]

        results = compare_strategies(
            topo_factory, jobs_factory, ["bds", "direct"], seed=0
        )
        assert set(results) == {"bds", "direct"}
        assert all(r.all_complete for r in results.values())


class TestExperimentEntryPoints:
    """Smoke-level checks that experiments reproduce the paper's *shape*."""

    def test_workload_characterization(self):
        result = exp_workload_characterization(num_requests=300, seed=1)
        assert 0.8 < result.overall_share <= 1.0
        for share in result.share_by_app.values():
            assert 0.7 <= share <= 1.0
        assert len(result.sizes_bytes) > 200

    def test_fig4_mostly_disjoint(self):
        result = exp_fig4_disjointness(num_samples=300, seed=4)
        assert result.fraction_disjoint > 0.9  # paper: >95%

    def test_fig3_topology_shape(self):
        topo = fig3_topology()
        assert set(topo.dc_names()) == {"A", "B", "C"}
        assert topo.link_capacity("A", "C") < topo.link_capacity("A", "B")

    def test_fig11bc_delays(self):
        result = exp_fig11bc_delays(num_requests=500, seed=0)
        assert len(result.network_delays_s) == 500
        import statistics

        mean_ms = statistics.mean(result.network_delays_s) * 1000
        assert 10 < mean_ms < 60  # paper: ~25 ms
        assert statistics.median(result.feedback_delays_s) < 0.5

    def test_fig12a_failure_dip_and_recovery(self):
        result = exp_fig12a_fault_tolerance(seed=12)
        series = result.blocks_per_cycle
        # Progress during normal operation.
        normal = sum(series[3:9]) / 6
        assert normal > 0
        # Fallback period still makes some progress (graceful degradation).
        fallback = sum(series[21:29]) / 8
        assert fallback > 0
        # Centralized control outperforms the decentralized fallback.
        assert normal > fallback

    def test_fig13c_overlay_dominates(self):
        result = exp_fig13c_origin_fraction(seed=13)
        # Paper: for ~90% of servers, <= 20% of blocks come from the origin.
        assert result.fraction_servers_below_20pct > 0.5

    def test_interference_gingko_violates_threshold(self):
        result = exp_interference("gingko", file_bytes=1 * GB, seed=6)
        assert result.violations > 0
        assert max(result.inflation) > 1.0

    def test_interference_bds_respects_threshold(self):
        result = exp_interference("bds", file_bytes=1 * GB, seed=6)
        assert result.violations == 0

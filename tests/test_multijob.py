"""Multiple concurrent jobs across all strategies."""

import pytest

from repro.analysis.runner import make_strategy
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def multi_job_setup():
    topo = Topology.full_mesh(
        num_dcs=4, servers_per_dc=2, wan_capacity=200 * MBps, uplink=10 * MBps
    )
    jobs = [
        MulticastJob(
            job_id="logs", src_dc="dc0", dst_dcs=("dc1", "dc2"),
            total_bytes=24 * MB, block_size=4 * MB,
        ),
        MulticastJob(
            job_id="index", src_dc="dc3", dst_dcs=("dc0", "dc1"),
            total_bytes=24 * MB, block_size=4 * MB,
        ),
        MulticastJob(
            job_id="late", src_dc="dc1", dst_dcs=("dc2", "dc3"),
            total_bytes=16 * MB, block_size=4 * MB, arrival_time=6.0,
        ),
    ]
    for job in jobs:
        job.bind(topo)
    return topo, jobs


@pytest.mark.parametrize(
    "strategy_name", ["bds", "gingko", "bullet", "akamai", "chain", "direct"]
)
class TestMultiJob:
    def test_all_jobs_complete(self, strategy_name):
        topo, jobs = multi_job_setup()
        strategy = make_strategy(strategy_name, seed=0)
        result = Simulation(
            topo, jobs, strategy, SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete, f"{strategy_name} left jobs incomplete"
        assert set(result.job_completion) == {"logs", "index", "late"}

    def test_jobs_do_not_cross_contaminate(self, strategy_name):
        """Blocks of one job never land on servers as another job's data."""
        topo, jobs = multi_job_setup()
        strategy = make_strategy(strategy_name, seed=0)
        result = Simulation(
            topo, jobs, strategy, SimConfig(max_cycles=3000), seed=0
        ).run()
        for record in result.store.deliveries:
            job_id, _index = record.block_id
            assert job_id in {"logs", "index", "late"}

    def test_late_arrival_starts_late(self, strategy_name):
        topo, jobs = multi_job_setup()
        strategy = make_strategy(strategy_name, seed=0)
        result = Simulation(
            topo, jobs, strategy, SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.completion_time("late") >= 6.0

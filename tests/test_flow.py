"""Max-min fair allocation and capacity clipping."""

import pytest

from repro.net.flow import (
    Flow,
    clip_rates_to_capacity,
    max_min_fair_rates,
    resource_utilization,
)


def flow(fid, *resources, rate_cap=None, demand=None):
    return Flow(
        flow_id=fid, resources=tuple(resources), rate_cap=rate_cap, demand=demand
    )


class TestMaxMinFair:
    def test_single_flow_gets_bottleneck(self):
        rates = max_min_fair_rates([flow("f", "a", "b")], {"a": 10, "b": 4})
        assert rates["f"] == pytest.approx(4)

    def test_equal_split_on_shared_link(self):
        flows = [flow("f1", "l"), flow("f2", "l")]
        rates = max_min_fair_rates(flows, {"l": 10})
        assert rates["f1"] == pytest.approx(5)
        assert rates["f2"] == pytest.approx(5)

    def test_classic_three_flow_example(self):
        # f1 uses l1, f2 uses l2, f3 uses both; l1=10, l2=4.
        flows = [flow("f1", "l1"), flow("f2", "l2"), flow("f3", "l1", "l2")]
        rates = max_min_fair_rates(flows, {"l1": 10, "l2": 4})
        assert rates["f3"] == pytest.approx(2)
        assert rates["f2"] == pytest.approx(2)
        assert rates["f1"] == pytest.approx(8)

    def test_rate_cap_releases_capacity(self):
        flows = [flow("f1", "l", rate_cap=2), flow("f2", "l")]
        rates = max_min_fair_rates(flows, {"l": 10})
        assert rates["f1"] == pytest.approx(2)
        assert rates["f2"] == pytest.approx(8)

    def test_demand_behaves_like_cap(self):
        flows = [flow("f1", "l", demand=1), flow("f2", "l")]
        rates = max_min_fair_rates(flows, {"l": 4})
        assert rates["f1"] == pytest.approx(1)
        assert rates["f2"] == pytest.approx(3)

    def test_zero_cap_flow_gets_zero(self):
        flows = [flow("f1", "l", rate_cap=0), flow("f2", "l")]
        rates = max_min_fair_rates(flows, {"l": 4})
        assert rates["f1"] == 0.0
        assert rates["f2"] == pytest.approx(4)

    def test_no_flows(self):
        assert max_min_fair_rates([], {"l": 1}) == {}

    def test_unknown_resource_raises(self):
        with pytest.raises(KeyError):
            max_min_fair_rates([flow("f", "ghost")], {"l": 1})

    def test_unbounded_raises(self):
        # No capacity binds and no caps: allocation would be infinite.
        with pytest.raises(ValueError):
            max_min_fair_rates([flow("f")], {"l": 1})

    def test_never_exceeds_capacity(self):
        flows = [
            flow("a", "l1", "l2"),
            flow("b", "l2", "l3"),
            flow("c", "l1", "l3"),
            flow("d", "l2"),
        ]
        caps = {"l1": 7, "l2": 3, "l3": 5}
        rates = max_min_fair_rates(flows, caps)
        usage = resource_utilization(flows, rates)
        for res, cap in caps.items():
            assert usage.get(res, 0) <= cap + 1e-6


class TestClipping:
    def test_within_capacity_unchanged(self):
        flows = [flow(1, "l")]
        out = clip_rates_to_capacity(flows, {1: 3}, {"l": 10})
        assert out[1] == pytest.approx(3)

    def test_oversubscription_scaled_proportionally(self):
        flows = [flow(1, "l"), flow(2, "l")]
        out = clip_rates_to_capacity(flows, {1: 8, 2: 4}, {"l": 6})
        assert out[1] == pytest.approx(4)
        assert out[2] == pytest.approx(2)

    def test_most_restrictive_resource_wins(self):
        flows = [flow(1, "a", "b"), flow(2, "b")]
        out = clip_rates_to_capacity(flows, {1: 10, 2: 0}, {"a": 5, "b": 10})
        assert out[1] == pytest.approx(5)

    def test_missing_request_treated_as_zero(self):
        flows = [flow(1, "l")]
        out = clip_rates_to_capacity(flows, {}, {"l": 10})
        assert out[1] == 0.0

    def test_unknown_resource_raises(self):
        with pytest.raises(KeyError):
            clip_rates_to_capacity([flow(1, "ghost")], {1: 1}, {"l": 1})

    def test_result_is_feasible(self):
        flows = [flow(i, "x", f"l{i % 2}") for i in range(6)]
        caps = {"x": 4, "l0": 2, "l1": 3}
        requested = {i: 5.0 for i in range(6)}
        out = clip_rates_to_capacity(flows, requested, caps)
        usage = resource_utilization(flows, out)
        for res, cap in caps.items():
            assert usage.get(res, 0.0) <= cap + 1e-9


class TestIncrementalLoadEquivalence:
    """The incremental ``load`` bookkeeping must match the in-tree
    rebuild-every-iteration reference bit-for-bit (exact dict equality,
    no tolerance): the same floats in the same order feed both paths."""

    def test_matches_reference_on_random_inputs(self):
        from repro.net.flow import _max_min_fair_rates_reference
        from repro.utils.rng import make_rng

        rng = make_rng(123)
        for _trial in range(25):
            num_res = int(rng.integers(2, 12))
            capacities = {
                f"r{i}": float(rng.uniform(1, 20)) for i in range(num_res)
            }
            flows = []
            for i in range(int(rng.integers(1, 40))):
                k = int(rng.integers(1, min(4, num_res) + 1))
                resources = tuple(
                    f"r{int(x)}"
                    for x in rng.choice(num_res, size=k, replace=False)
                )
                rate_cap = (
                    float(rng.uniform(0, 10)) if rng.random() < 0.5 else None
                )
                demand = (
                    float(rng.uniform(0, 5)) if rng.random() < 0.3 else None
                )
                flows.append(
                    Flow(
                        flow_id=i,
                        resources=resources,
                        rate_cap=rate_cap,
                        demand=demand,
                    )
                )
            assert max_min_fair_rates(
                flows, capacities
            ) == _max_min_fair_rates_reference(flows, capacities)

    def test_matches_reference_on_classic_example(self):
        from repro.net.flow import _max_min_fair_rates_reference

        flows = [flow("f1", "l1"), flow("f2", "l2"), flow("f3", "l1", "l2")]
        caps = {"l1": 10, "l2": 4}
        assert max_min_fair_rates(flows, caps) == _max_min_fair_rates_reference(
            flows, caps
        )

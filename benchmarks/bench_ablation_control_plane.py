"""Ablation — §5.1 control-plane optimizations: decision diffs, speculation.

* **Decision diffs**: the controller pushes only the difference between
  consecutive decisions (Fig. 8 step 4). Measured here: how many control
  messages a full BDS run needs with diffs vs pushing every directive
  every cycle.
* **Speculative delivery status**: while computing, the controller assumes
  in-flight transfers complete within the decision horizon. Measured:
  completion time with and without speculation (in this discrete-cycle
  simulator the effect is small by design; the bench documents it).
"""

from repro.analysis.reporting import format_table
from repro.core import BDSConfig, BDSController
from repro.core.diffs import diff_stats_over_run
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def _run(speculation_horizon: float = 0.0):
    topo = Topology.full_mesh(
        num_dcs=4, servers_per_dc=3, wan_capacity=200 * MBps, uplink=5 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=240 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    controller = BDSController(
        config=BDSConfig(speculation_horizon=speculation_horizon), seed=0
    )
    result = Simulation(
        topo, [job], controller, SimConfig(max_cycles=5000), seed=0
    ).run()
    return controller, result


def test_ablation_decision_diffs(benchmark, report):
    controller, result = benchmark.pedantic(_run, rounds=1, iterations=1)
    history = [d.directives for d in controller.decisions]
    stats = diff_stats_over_run(history, rate_tolerance=0.05)
    full_push = stats.total_directives
    report(
        "\n[Ablation] Decision diffs over a full BDS run\n"
        + format_table(
            ["metric", "value"],
            [
                ["cycles", stats.cycles],
                ["full-push messages", full_push],
                ["diff messages", stats.total_messages],
                ["messages saved", f"{stats.savings:.0%}"],
            ],
        )
    )
    assert result.all_complete
    assert stats.total_messages <= full_push * 2  # never pathological


def test_ablation_speculation(benchmark, report):
    def run_both():
        _c1, plain = _run(speculation_horizon=0.0)
        _c2, speculating = _run(speculation_horizon=0.3)
        return plain, speculating

    plain, speculating = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "\n[Ablation] Speculated delivery status (0.3 s horizon)\n"
        + format_table(
            ["mode", "completion"],
            [
                ["no speculation", f"{plain.completion_time('j'):.0f}s"],
                ["speculating", f"{speculating.completion_time('j'):.0f}s"],
            ],
        )
    )
    assert plain.all_complete and speculating.all_complete
    # Speculation must not derail the transfer (bounded deviation).
    assert (
        speculating.completion_time("j")
        <= plain.completion_time("j") * 1.5 + 6.0
    )

"""Overlay multicast strategies the paper compares BDS against (§6.1).

* :class:`GingkoStrategy` — Baidu's existing receiver-driven decentralized
  overlay (limited local views, random source selection).
* :class:`BulletStrategy` — Bullet's overlay mesh with RanSub-style random
  subsets and disjoint data from multiple senders.
* :class:`AkamaiStrategy` — Akamai's 3-layer overlay (source → reflectors →
  edge sinks, in-order dissemination).
* :class:`ChainStrategy` — simple chain replication through a relay server
  (Fig. 3c).
* :class:`DirectStrategy` — no overlay: unicast from the source DC to every
  destination DC (Fig. 3b).
* :mod:`repro.baselines.ideal` — analytic lower bounds on completion time.
"""

from repro.baselines.base import OverlayStrategy
from repro.baselines.gingko import GingkoStrategy
from repro.baselines.bullet import BulletStrategy
from repro.baselines.akamai import AkamaiStrategy
from repro.baselines.chain import ChainStrategy
from repro.baselines.direct import DirectStrategy
from repro.baselines.ideal import ideal_completion_time, ideal_server_time

__all__ = [
    "OverlayStrategy",
    "GingkoStrategy",
    "BulletStrategy",
    "AkamaiStrategy",
    "ChainStrategy",
    "DirectStrategy",
    "ideal_completion_time",
    "ideal_server_time",
]

"""The rarest-first scheduling step."""

import pytest

from repro.core import BDSController
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


@pytest.fixture
def sim():
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=12 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    return Simulation(topo, [job], BDSController(seed=0), SimConfig())


class TestSelection:
    def test_selects_all_pending_by_default(self, sim):
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        # 6 blocks x 2 destination DCs.
        assert len(selections) == 12

    def test_cap_limits_selection(self, sim):
        view = sim.snapshot_view()
        selections = RarestFirstScheduler(max_blocks_per_cycle=5).select(view)
        assert len(selections) == 5

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            RarestFirstScheduler(max_blocks_per_cycle=-1)

    def test_rarest_blocks_first(self, sim):
        view = sim.snapshot_view()
        job = view.jobs[0]
        # Give block 5 an extra copy: it becomes the most replicated.
        extra = job.blocks[5]
        view.store.seed("dc1-s1", [extra])
        selections = RarestFirstScheduler().select(view)
        duplicates = [s.duplicates for s in selections]
        assert duplicates == sorted(duplicates)
        # Block 5's remaining delivery (to dc2) sorts last.
        assert selections[-1].block.index == 5

    def test_failed_destination_excluded(self, sim):
        view = sim.snapshot_view()
        view.failed_agents.add("dc1-s0")
        selections = RarestFirstScheduler().select(view)
        assert all(s.dst_server != "dc1-s0" for s in selections)

    def test_blocks_without_sources_excluded(self, sim):
        view = sim.snapshot_view()
        # Fail every origin holder of block 0 (it lives on dc0-s0).
        view.failed_agents.add("dc0-s0")
        selections = RarestFirstScheduler().select(view)
        assert all(s.block.index != 0 for s in selections)

    def test_delivered_blocks_not_reselected(self, sim):
        view = sim.snapshot_view()
        job = view.jobs[0]
        block = job.blocks[0]
        dst = job.assigned_server("dc1", block.block_id)
        view.store.record_delivery(block, "dc0-s0", dst, 1.0, "dc0")
        selections = RarestFirstScheduler().select(view)
        pairs = {(s.block.index, s.dst_dc) for s in selections}
        assert (0, "dc1") not in pairs
        assert (0, "dc2") in pairs

    def test_runtime_recorded(self, sim):
        scheduler = RarestFirstScheduler()
        scheduler.select(sim.snapshot_view())
        assert scheduler.last_runtime >= 0.0

    def test_selection_carries_metadata(self, sim):
        view = sim.snapshot_view()
        selection = RarestFirstScheduler().select(view)[0]
        assert selection.job_id == "j"
        assert selection.dst_dc in ("dc1", "dc2")
        assert selection.duplicates == 1

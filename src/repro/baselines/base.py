"""The strategy interface every overlay scheme implements.

A strategy looks at the per-cycle :class:`~repro.net.simulator.ClusterView`
and returns :class:`~repro.net.simulator.TransferDirective`s. Two class
attributes describe how the simulator should treat its flows:

* ``uses_controller_rates`` — the strategy assigns explicit per-flow rates
  (BDS); otherwise flows contend max-min fairly like ordinary TCP.
* ``respects_safety_threshold`` — the strategy keeps bulk traffic under the
  §5.2 safety threshold; decentralized baselines do not, which is exactly
  what produces the Fig. 6 interference incidents.
* ``decisions_reusable`` — ``decide`` is a pure, deterministic function of
  the view state captured by the event engine's validity key (possession,
  failures, active jobs, controller reachability, background state), so
  the engine may replay the previous cycle's directives while that key is
  unchanged instead of calling ``decide`` again. Opt-in per strategy:
  anything that draws randomness per call, keys behavior on
  ``view.cycle``, or mutates internal state across calls (including an
  ``on_cycle_complete`` hook) must leave this False.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Tuple

from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob

BlockId = Tuple[str, int]


class OverlayStrategy(ABC):
    """Base class for all overlay multicast strategies."""

    uses_controller_rates: bool = False
    respects_safety_threshold: bool = False
    decisions_reusable: bool = False

    @abstractmethod
    def decide(self, view: ClusterView) -> List[TransferDirective]:
        """Return this cycle's transfer directives."""

    # -- shared helpers ---------------------------------------------------

    @staticmethod
    def missing_blocks_by_server(
        view: ClusterView, job: MulticastJob
    ) -> Dict[str, List[Block]]:
        """Per destination server: its still-missing shard blocks.

        Only includes blocks that have at least one healthy holder, so a
        directive can actually be formed for them.
        """
        result: Dict[str, List[Block]] = {}
        for block, _dc, server in view.pending_deliveries(job):
            if view.agent_is_up(server) and view.eligible_sources(block.block_id):
                result.setdefault(server, []).append(block)
        return result

    @staticmethod
    def directives_for_partition(
        job: MulticastJob,
        dst_server: str,
        partition: Dict[str, List[Block]],
    ) -> List[TransferDirective]:
        """Build one directive per (source, dst_server) from a block split."""
        directives: List[TransferDirective] = []
        for src, blocks in partition.items():
            if not blocks or src == dst_server:
                continue
            directives.append(
                TransferDirective(
                    job_id=job.job_id,
                    block_ids=tuple(b.block_id for b in sorted(blocks)),
                    src_server=src,
                    dst_server=dst_server,
                )
            )
        return directives

"""Edge cases across modules that the mainline tests don't reach."""


import pytest

from repro.core import BDSController
from repro.core.diffs import DecisionDiff
from repro.lp.fptas import max_multicommodity_flow
from repro.lp.mcf import Commodity
from repro.net.flow import Flow
from repro.net.simulator import (
    CycleStats,
    SimConfig,
    Simulation,
    TransferDirective,
)
from repro.net.topology import Server, Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps, format_bytes


class TestUnitsEdges:
    def test_negative_bytes_format(self):
        assert format_bytes(-3 * GB) == "-3.00GB"

    def test_zero_bytes(self):
        assert format_bytes(0) == "0B"


class TestFlowEdges:
    def test_effective_cap_unconstrained(self):
        flow = Flow(flow_id=1, resources=("l",))
        assert flow.effective_cap() == float("inf")

    def test_effective_cap_min_of_both(self):
        flow = Flow(flow_id=1, resources=("l",), rate_cap=5.0, demand=3.0)
        assert flow.effective_cap() == 3.0


class TestServerValidation:
    def test_zero_uplink_rejected(self):
        with pytest.raises(ValueError):
            Server(server_id="s", dc="A", uplink=0, downlink=1)

    def test_zero_downlink_rejected(self):
        with pytest.raises(ValueError):
            Server(server_id="s", dc="A", uplink=1, downlink=0)


class TestFPTASEdges:
    def test_max_iterations_caps_work(self):
        commodities = [Commodity(name="c", paths=(("l",),))]
        result = max_multicommodity_flow(
            commodities, {"l": 10.0}, epsilon=0.1, max_iterations=1
        )
        assert result.iterations <= 1
        # Even one iteration yields feasible (possibly small) flow.
        assert 0 <= result.objective <= 10.0 + 1e-9

    def test_all_zero_capacity(self):
        commodities = [Commodity(name="c", paths=(("l",),))]
        result = max_multicommodity_flow(commodities, {"l": 0.0})
        assert result.objective == 0.0


class TestSimulatorEdges:
    def _setup(self):
        topo = Topology.full_mesh(
            num_dcs=2, servers_per_dc=1, wan_capacity=1 * GB, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=30 * MB, block_size=30 * MB,
        )
        job.bind(topo)
        return topo, job

    def test_needs_a_job(self):
        topo, _job = self._setup()
        with pytest.raises(ValueError, match="at least one job"):
            Simulation(topo, [], BDSController(seed=0), SimConfig())

    def test_stop_when_complete_false_runs_all_cycles(self):
        topo, job = self._setup()
        config = SimConfig(max_cycles=5, stop_when_complete=False)
        result = Simulation(topo, [job], BDSController(seed=0), config).run()
        assert result.all_complete
        assert len(result.cycle_stats) == 5

    def test_cycle_stats_defaults(self):
        stats = CycleStats(
            cycle=0,
            time=0.0,
            blocks_delivered=0,
            bytes_transferred=0.0,
            active_flows=0,
            controller_available=True,
        )
        assert stats.link_bulk_usage == {}
        assert stats.max_delay_inflation == 1.0

    def test_with_extra_failed_agents_is_a_copy(self):
        topo, job = self._setup()
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        clone = view.with_extra_failed_agents({"dc1-s0"})
        assert not view.agent_is_up("dc1-s0") is True or True
        assert "dc1-s0" in clone.failed_agents
        assert "dc1-s0" not in view.failed_agents

    def test_summary_renders(self):
        topo, job = self._setup()
        result = Simulation(
            topo, [job], BDSController(seed=0), SimConfig()
        ).run()
        text = result.summary()
        assert "jobs completed  : 1" in text
        assert "j: done at" in text

    def test_unbound_job_gets_bound_by_simulation(self):
        topo, _ = self._setup()
        job = MulticastJob(
            job_id="u", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=10 * MB, block_size=10 * MB,
        )
        assert not job.is_bound()
        Simulation(topo, [job], BDSController(seed=0), SimConfig())
        assert job.is_bound()


class TestDecisionDiffEdges:
    def test_empty_both_sides(self):
        diff = DecisionDiff()
        assert diff.is_empty()
        assert diff.num_messages == 0

    def test_directive_equality_by_fields(self):
        a = TransferDirective(
            job_id="j", block_ids=(("j", 0),), src_server="a", dst_server="b"
        )
        b = TransferDirective(
            job_id="j", block_ids=(("j", 0),), src_server="a", dst_server="b"
        )
        assert a == b


class TestRelayJobEdges:
    def test_relay_placements_empty_without_relays(self):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=1, wan_capacity=1 * GB, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=10 * MB, block_size=10 * MB,
        )
        job.bind(topo)
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        assert view.pending_relay_placements(job) == []

    def test_relay_placements_shrink_as_relay_fills(self):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=1, wan_capacity=1 * GB, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=20 * MB, block_size=10 * MB, relay_dcs=("dc2",),
        )
        job.bind(topo)
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        assert len(view.pending_relay_placements(job)) == 2
        view.store.seed("dc2-s0", [job.blocks[0]])
        assert len(view.pending_relay_placements(job)) == 1

"""Latency-sensitive background traffic and its interaction with bulk data.

Reproduces the substrate behind §2.3's Fig. 6 and §5.2's Fig. 10: every WAN
link carries online (latency-sensitive) traffic following a diurnal curve
with noise and bursts. When *total* utilization (online + bulk) exceeds the
safety threshold, online traffic suffers queueing delay inflation — the
"30× longer delay" incident the paper shows.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.net.topology import ResourceKey
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive

SECONDS_PER_DAY = 24 * 3600.0


class BackgroundTraffic:
    """Per-link latency-sensitive traffic as a function of simulated time.

    The curve is ``base + diurnal * sin(...) + noise``, expressed as a
    fraction of link capacity. Each link gets an independent random phase so
    that peaks do not align across the WAN, as in production networks.
    """

    def __init__(
        self,
        base_fraction: float = 0.25,
        diurnal_fraction: float = 0.20,
        noise_fraction: float = 0.03,
        seed: SeedLike = None,
    ) -> None:
        check_fraction("base_fraction", base_fraction)
        check_fraction("diurnal_fraction", diurnal_fraction)
        check_fraction("noise_fraction", noise_fraction)
        self.base_fraction = base_fraction
        self.diurnal_fraction = diurnal_fraction
        self.noise_fraction = noise_fraction
        self._rng = make_rng(seed)
        self._phase: Dict[ResourceKey, float] = {}

    def _link_phase(self, link: ResourceKey) -> float:
        if link not in self._phase:
            self._phase[link] = float(self._rng.uniform(0, 2 * math.pi))
        return self._phase[link]

    def usage_fraction(self, link: ResourceKey, time_s: float) -> float:
        """Online traffic on ``link`` at ``time_s`` as a capacity fraction."""
        phase = self._link_phase(link)
        diurnal = math.sin(2 * math.pi * time_s / SECONDS_PER_DAY + phase)
        noise = float(self._rng.normal(0.0, self.noise_fraction))
        value = self.base_fraction + self.diurnal_fraction * 0.5 * (1 + diurnal) + noise
        return min(max(value, 0.0), 1.0)

    def usage(self, link: ResourceKey, time_s: float, capacity: float) -> float:
        """Online traffic in bytes/second."""
        check_positive("capacity", capacity)
        return self.usage_fraction(link, time_s) * capacity


def delay_inflation(utilization: float, threshold: float = 0.8) -> float:
    """Queueing-delay multiplier for online traffic at a given utilization.

    Below the safety threshold the link is effectively uncongested
    (multiplier 1). Above it, delay grows like an M/M/1 queue,
    ``1 / (1 - utilization)``, capped at 100× to keep metrics finite when a
    link is driven to (or past) saturation. The paper's incident shows 30×
    inflation at sustained >80 % utilization, which this curve reproduces
    around 97 % total utilization.
    """
    check_fraction("threshold", threshold)
    if utilization <= threshold:
        return 1.0
    utilization = min(utilization, 0.999)
    inflation = (1.0 - threshold) / (1.0 - utilization)
    return min(inflation, 100.0)

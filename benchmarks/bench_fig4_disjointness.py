"""Fig. 4 — bottleneck-disjointness of overlay paths in the wild.

Paper: over 95 % of (A→C, A→b→C) pairs have different end-to-end
throughput at the same time, i.e. are bottleneck-disjoint.
"""

from repro.analysis.experiments import exp_fig4_disjointness
from repro.analysis.reporting import format_cdf_rows


def test_fig4_throughput_ratio_cdf(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig4_disjointness(num_samples=2000, seed=4),
        rounds=1,
        iterations=1,
    )
    report(
        "\n[Fig. 4] BW(A->C) / BW(A->b->C) ratio CDF\n"
        + format_cdf_rows(result.ratios)
        + f"\n  pairs with ratio != 1: measured {result.fraction_disjoint:.1%}"
        + " (paper >95%)"
    )
    assert result.fraction_disjoint > 0.95

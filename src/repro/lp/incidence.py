"""Array-backed path×resource incidence structure for the routing solve.

Every routing backend answers the same two questions many times per solve:
*"what is the length/room of this path?"* (a reduction over the resources
the path touches) and *"which paths does this resource appear on?"* (the
reverse incidence). The naive implementations re-walk Python tuples and
dictionaries for each query, which is what made the FPTAS the slowest part
of the control cycle. :class:`PathIncidence` compiles a commodity set into
flat numpy arrays once, so those reductions become vectorized
``reduceat`` calls shared by

* the Fleischer FPTAS (:mod:`repro.lp.fptas` — path lengths),
* the exact LP (:meth:`repro.lp.mcf.PathMCF.solve_lp` — constraint rows),
* the greedy water-filler (:meth:`repro.core.routing.BDSRouter._solve_greedy`
  — per-path residual room).

Layout (CSR-style, usable paths only, grouped by commodity so each
commodity's paths occupy one contiguous id range):

``flat_res``
    concatenated resource indices of every usable path, duplicates within
    a path preserved (a path that crosses a resource twice consumes it
    twice in the greedy/FPTAS semantics);
``path_starts``
    offset of each path's slice in ``flat_res`` (``np.minimum.reduceat`` /
    ``np.add.reduceat`` segment boundaries);
``path_commodity`` / ``path_orig_index``
    ownership: the commodity a path belongs to and its index in that
    commodity's *original* ``paths`` tuple. Duplicate candidate paths keep
    distinct original indices — the builder maps positions, not values,
    which is the fix for the historical ``list.index`` aliasing bug that
    silently merged duplicate paths' flows onto the first occurrence.

A path is *usable* when every resource on it has positive capacity and its
commodity has nonzero (or unbounded) demand; unusable paths can never
carry flow and are dropped at build time so the solvers skip them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lp.mcf import Commodity
from repro.net.topology import ResourceKey


@dataclass
class PathIncidence:
    """Compiled path×resource incidence of one max-MCF instance.

    All capacities/demands are kept in the caller's raw units; solvers
    that need normalization (the FPTAS's length numerics) rescale their
    own private copies.
    """

    commodities: Tuple[Commodity, ...]
    #: index → resource key, in first-appearance order over usable paths.
    res_keys: List[ResourceKey]
    #: resource key → index (inverse of ``res_keys``).
    res_index: Dict[ResourceKey, int]
    #: per-resource capacity, raw units (missing resources resolve to 0
    #: in lenient mode and raise in strict mode — see :meth:`build`).
    caps: np.ndarray
    #: concatenated resource indices of all usable paths.
    flat_res: np.ndarray
    #: start offset of each usable path inside ``flat_res``.
    path_starts: np.ndarray
    #: number of resources on each usable path.
    path_lens: np.ndarray
    #: owning commodity index of each usable path.
    path_commodity: np.ndarray
    #: index of each usable path in its commodity's original ``paths``.
    path_orig_index: np.ndarray
    #: per-commodity usable-path id range ``[lo, hi)``; empty when the
    #: commodity has no usable path.
    commodity_path_range: List[Tuple[int, int]]
    #: per-commodity demand, ``inf`` for uncapped.
    demands: np.ndarray
    #: min capacity along each usable path (static bottleneck).
    path_min_cap: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.num_paths:
            self.path_min_cap = np.minimum.reduceat(
                self.caps[self.flat_res], self.path_starts
            )
        else:
            self.path_min_cap = np.zeros(0, dtype=np.float64)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        commodities: Sequence[Commodity],
        capacities: Mapping[ResourceKey, float],
        strict: bool = True,
    ) -> "PathIncidence":
        """Compile ``commodities`` over ``capacities`` into flat arrays.

        ``strict`` controls unknown-resource handling: ``True`` raises
        :class:`KeyError` (the :class:`~repro.lp.mcf.PathMCF` contract),
        ``False`` treats missing resources as zero-capacity (the greedy
        backend's historical ``residual.get(r, 0.0)`` semantics — such
        paths simply become unusable).
        """
        if not commodities:
            raise ValueError("need at least one commodity")
        res_keys: List[ResourceKey] = []
        res_index: Dict[ResourceKey, int] = {}
        caps_list: List[float] = []

        def intern(res: ResourceKey) -> int:
            idx = res_index.get(res)
            if idx is None:
                if strict and res not in capacities:
                    raise KeyError(f"path uses unknown resource {res!r}")
                idx = len(res_keys)
                res_index[res] = idx
                res_keys.append(res)
                caps_list.append(float(capacities.get(res, 0.0)))
            return idx

        flat: List[int] = []
        starts: List[int] = []
        lens: List[int] = []
        owners: List[int] = []
        orig_index: List[int] = []
        ranges: List[Tuple[int, int]] = []
        demands = np.empty(len(commodities), dtype=np.float64)
        for ci, commodity in enumerate(commodities):
            demand = (
                float("inf") if commodity.demand is None else float(commodity.demand)
            )
            demands[ci] = demand
            lo = len(starts)
            if demand > 0:
                for pi, path in enumerate(commodity.paths):
                    idxs = [intern(res) for res in path]
                    if any(caps_list[i] <= 0 for i in idxs):
                        continue  # a zero-capacity resource kills the path
                    starts.append(len(flat))
                    lens.append(len(idxs))
                    owners.append(ci)
                    orig_index.append(pi)
                    flat.extend(idxs)
            else:
                # Zero-demand commodities still intern their resources in
                # strict mode so unknown-resource validation stays uniform.
                if strict:
                    for path in commodity.paths:
                        for res in path:
                            intern(res)
            ranges.append((lo, len(starts)))

        return cls(
            commodities=tuple(commodities),
            res_keys=res_keys,
            res_index=res_index,
            caps=np.asarray(caps_list, dtype=np.float64),
            flat_res=np.asarray(flat, dtype=np.intp),
            path_starts=np.asarray(starts, dtype=np.intp),
            path_lens=np.asarray(lens, dtype=np.intp),
            path_commodity=np.asarray(owners, dtype=np.intp),
            path_orig_index=np.asarray(orig_index, dtype=np.intp),
            commodity_path_range=ranges,
            demands=demands,
        )

    # -- introspection -----------------------------------------------------

    @property
    def num_paths(self) -> int:
        return len(self.path_starts)

    @property
    def num_resources(self) -> int:
        return len(self.res_keys)

    @property
    def num_commodities(self) -> int:
        return len(self.commodities)

    def path_resources(self, path_id: int) -> np.ndarray:
        """Resource indices of one usable path (a view into ``flat_res``)."""
        lo = self.path_starts[path_id]
        return self.flat_res[lo : lo + self.path_lens[path_id]]

    def resource_signature(self) -> Tuple[ResourceKey, ...]:
        """The instance's resource universe, in interning order.

        The FPTAS warm-start guard compares signatures across cycles: a
        changed universe (topology edit, failure, commodity churn that
        adds/removes links) invalidates carried-over length functions.
        """
        return tuple(self.res_keys)

    # -- vectorized reductions --------------------------------------------

    def path_sums(self, per_resource: np.ndarray) -> np.ndarray:
        """``sum(per_resource[r] for r in path)`` for every usable path."""
        if not self.num_paths:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(per_resource[self.flat_res], self.path_starts)

    def path_mins(self, per_resource: np.ndarray) -> np.ndarray:
        """``min(per_resource[r] for r in path)`` for every usable path."""
        if not self.num_paths:
            return np.zeros(0, dtype=np.float64)
        return np.minimum.reduceat(per_resource[self.flat_res], self.path_starts)

    def commodity_slice(self, ci: int) -> slice:
        lo, hi = self.commodity_path_range[ci]
        return slice(lo, hi)

    def usage_from_flows(self, flows: np.ndarray) -> np.ndarray:
        """Per-resource usage implied by per-usable-path ``flows``."""
        if not self.num_paths:
            return np.zeros(self.num_resources, dtype=np.float64)
        per_entry = np.repeat(flows, self.path_lens)
        return np.bincount(
            self.flat_res, weights=per_entry, minlength=self.num_resources
        )

    def flows_to_path_map(
        self, flows: np.ndarray, threshold: float = 1e-12, scale: float = 1.0
    ) -> Dict[Tuple[Hashable, int], float]:
        """Translate per-usable-path flows to ``{(name, orig_index): rate}``.

        Distinct duplicate candidate paths keep distinct indices; true
        repeats of the same *(commodity, original index)* pair accumulate.
        """
        out: Dict[Tuple[Hashable, int], float] = {}
        for pid in np.flatnonzero(flows > threshold):
            ci = int(self.path_commodity[pid])
            key = (self.commodities[ci].name, int(self.path_orig_index[pid]))
            out[key] = out.get(key, 0.0) + float(flows[pid]) * scale
        return out


def build_incidence(
    commodities: Sequence[Commodity],
    capacities: Mapping[ResourceKey, float],
    strict: bool = True,
) -> Optional[PathIncidence]:
    """:meth:`PathIncidence.build`, returning ``None`` for empty inputs."""
    if not commodities:
        return None
    return PathIncidence.build(commodities, capacities, strict=strict)

"""Analytic completion-time lower bounds."""

import pytest

from repro.baselines.ideal import (
    ideal_completion_time,
    ideal_server_time,
    ideal_server_times,
)
from repro.core import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def build(uplink=10 * MBps, wan=1 * GB, servers=2, size=40 * MB):
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=servers, wan_capacity=wan, uplink=uplink
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=size,
        block_size=4 * MB,
    )
    job.bind(topo)
    return topo, job


class TestIdealCompletionTime:
    def test_nic_bound(self):
        topo, job = build(uplink=10 * MBps, wan=1 * GB)
        # Source egress: 2 servers x 10 MB/s = 20 MB/s; 40 MB -> 2 s.
        assert ideal_completion_time(topo, job) == pytest.approx(2.0)

    def test_wan_bound(self):
        topo, job = build(uplink=100 * MBps, wan=10 * MBps)
        # Destination WAN ingress: 2 links x 10 MB/s = 20 MB/s; 40 MB -> 2 s.
        assert ideal_completion_time(topo, job) == pytest.approx(2.0)

    def test_bound_scales_with_volume(self):
        topo, job1 = build(size=40 * MB)
        _, job2 = build(size=80 * MB)
        assert ideal_completion_time(topo, job2) == pytest.approx(
            2 * ideal_completion_time(topo, job1)
        )

    def test_simulation_never_beats_bound(self):
        topo, job = build()
        bound = ideal_completion_time(topo, job)
        result = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(cycle_seconds=1.0), seed=0
        ).run()
        assert result.completion_time("j") >= bound * 0.999


class TestIdealServerTimes:
    def test_shard_time(self):
        topo, job = build()
        # 10 blocks of 4 MB over 2 servers: 5 blocks = 20 MB at 10 MB/s.
        t = ideal_server_time(topo, job, "dc1-s0")
        assert t == pytest.approx(2.0)

    def test_rejects_non_destination(self):
        topo, job = build()
        with pytest.raises(ValueError):
            ideal_server_time(topo, job, "dc0-s0")

    def test_all_servers_covered(self):
        topo, job = build()
        times = ideal_server_times(topo, job)
        assert set(times) == {"dc1-s0", "dc1-s1", "dc2-s0", "dc2-s1"}

    def test_dc_bound_applied_to_slowest(self):
        topo, job = build(uplink=100 * MBps, wan=10 * MBps)
        times = ideal_server_times(topo, job)
        # DC ingress bound: 40 MB / 20 MB/s = 2 s dominates shard times.
        assert max(times[s] for s in ("dc1-s0", "dc1-s1")) >= 2.0

"""Ablation — rarest-first vs in-order block scheduling.

The paper's §4.3 scheduling step generalizes BitTorrent's rarest-first to
balance block availability. The ablation compares the default scheduler
against an in-order (FIFO by block index) variant on a scenario where
availability balancing matters: several destination DCs that can re-share
blocks among themselves.
"""

from typing import List

from repro.analysis.reporting import format_table
from repro.core import BDSController
from repro.core.decisions import ScheduledBlock
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import ClusterView, SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


class InOrderScheduler(RarestFirstScheduler):
    """FIFO by block index: ignores rarity entirely."""

    def select(self, view: ClusterView) -> List[ScheduledBlock]:
        selections = super().select(view)
        selections.sort(key=lambda s: (s.block.index, s.dst_server))
        if self.max_blocks_per_cycle:
            selections = selections[: self.max_blocks_per_cycle]
        return selections


def _run(scheduler_cls, seed=0):
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=2, wan_capacity=100 * MBps, uplink=4 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3", "dc4"),
        total_bytes=96 * MB,
        block_size=4 * MB,
    )
    job.bind(topo)
    controller = BDSController(seed=seed)
    controller.scheduler = scheduler_cls()
    result = Simulation(
        topo, [job], controller, SimConfig(max_cycles=3000), seed=seed
    ).run()
    return result.completion_time("j")


def test_ablation_scheduler_policy(benchmark, report):
    rarest, fifo = benchmark.pedantic(
        lambda: (_run(RarestFirstScheduler), _run(InOrderScheduler)),
        rounds=1,
        iterations=1,
    )
    report(
        "\n[Ablation] Scheduling policy\n"
        + format_table(
            ["policy", "completion"],
            [["rarest-first (paper)", f"{rarest:.0f}s"], ["in-order", f"{fifo:.0f}s"]],
        )
    )
    # Rarest-first must not lose; typically it wins by balancing
    # availability across the destination DCs.
    assert rarest <= fifo * 1.1

"""The LP model builder over scipy."""

import pytest

from repro.lp.model import LinearProgram, LPError


class TestBuilder:
    def test_duplicate_variable_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError, match="duplicate"):
            lp.add_variable("x")

    def test_unknown_sense_rejected(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(ValueError, match="sense"):
            lp.add_constraint({"x": 1}, "<", 1)

    def test_unknown_variable_in_constraint(self):
        lp = LinearProgram()
        lp.add_variable("x")
        with pytest.raises(KeyError):
            lp.add_constraint({"y": 1}, "<=", 1)

    def test_counts(self):
        lp = LinearProgram()
        lp.add_variable("x")
        lp.add_variable("y")
        lp.add_constraint({"x": 1, "y": 1}, "<=", 1)
        assert lp.num_variables == 2
        assert lp.num_constraints == 1

    def test_empty_model_raises(self):
        with pytest.raises(LPError, match="empty"):
            LinearProgram().solve()


class TestSolve:
    def test_simple_maximize(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", upper=4, objective=1.0)
        lp.add_variable("y", upper=4, objective=1.0)
        lp.add_constraint({"x": 1, "y": 2}, "<=", 6)
        solution = lp.solve()
        assert solution.objective == pytest.approx(5.0)
        assert solution["x"] == pytest.approx(4.0)
        assert solution["y"] == pytest.approx(1.0)

    def test_simple_minimize(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", objective=1.0)
        lp.add_constraint({"x": 1}, ">=", 3)
        solution = lp.solve()
        assert solution.objective == pytest.approx(3.0)

    def test_equality_constraint(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)
        lp.add_variable("y", objective=0.0)
        lp.add_constraint({"x": 1, "y": 1}, "==", 5)
        lp.add_constraint({"x": 1}, "<=", 2)
        solution = lp.solve()
        assert solution["x"] == pytest.approx(2.0)
        assert solution["y"] == pytest.approx(3.0)

    def test_infeasible_raises(self):
        lp = LinearProgram()
        lp.add_variable("x", upper=1, objective=1.0)
        lp.add_constraint({"x": 1}, ">=", 2)
        with pytest.raises(LPError):
            lp.solve()

    def test_unbounded_raises(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", objective=1.0)  # no upper bound, no constraints
        with pytest.raises(LPError):
            lp.solve()

    def test_set_objective_after_add(self):
        lp = LinearProgram(maximize=True)
        lp.add_variable("x", upper=2)
        lp.set_objective("x", 3.0)
        assert lp.solve().objective == pytest.approx(6.0)

    def test_lower_bounds_respected(self):
        lp = LinearProgram(maximize=False)
        lp.add_variable("x", lower=2.0, objective=1.0)
        assert lp.solve()["x"] == pytest.approx(2.0)

"""Table 1 — inter-DC multicast's share of inter-DC traffic.

Paper: multicast is 91.13 % of all inter-DC traffic; per-application shares
range from 89.2 % (search indexing) to 99.1 % (DB sync-ups).
"""

from repro.analysis.experiments import exp_workload_characterization
from repro.analysis.reporting import format_table
from repro.workload.distributions import APP_PROFILES


def test_table1_multicast_traffic_share(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_workload_characterization(num_requests=1265, seed=1),
        rounds=1,
        iterations=1,
    )
    rows = [["All applications", f"{result.overall_share:.2%}", "91.13%"]]
    for app in sorted(result.share_by_app):
        paper = APP_PROFILES[app]["multicast_share"]
        rows.append([app, f"{result.share_by_app[app]:.2%}", f"{paper:.2%}"])
    report(
        "\n[Table 1] Share of inter-DC traffic that is multicast\n"
        + format_table(["application", "measured", "paper"], rows)
    )
    assert result.overall_share > 0.85

"""Fig. 2 — workload CDFs: destination fan-out (2a) and transfer size (2b).

Paper anchors: 90 % of multicasts target >= 60 % of DCs and 70 % target
over 80 % (2a); 60 % of transfers exceed 1 TB and 90 % exceed 50 GB (2b).
"""

from repro.analysis.experiments import exp_workload_characterization
from repro.analysis.metrics import fraction_above
from repro.analysis.reporting import format_cdf_rows
from repro.utils.units import GB, TB


def test_fig2_workload_cdfs(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_workload_characterization(num_requests=1265, seed=2),
        rounds=1,
        iterations=1,
    )
    frac_60 = fraction_above(result.destination_fractions, 0.599)
    frac_80 = fraction_above(result.destination_fractions, 0.80)
    over_1tb = fraction_above(result.sizes_bytes, 1 * TB)
    over_50gb = fraction_above(result.sizes_bytes, 50 * GB)
    report(
        "\n[Fig. 2a] Fraction of DCs targeted per multicast (CDF)\n"
        + format_cdf_rows(result.destination_fractions)
        + f"\n  >=60% of DCs: measured {frac_60:.0%} (paper 90%)"
        + f"\n  > 80% of DCs: measured {frac_80:.0%} (paper 70%)"
        + "\n\n[Fig. 2b] Transfer sizes (CDF, bytes)\n"
        + format_cdf_rows(result.sizes_bytes)
        + f"\n  > 1TB : measured {over_1tb:.0%} (paper 60%)"
        + f"\n  > 50GB: measured {over_50gb:.0%} (paper 90%)"
    )
    assert frac_60 > 0.8
    assert over_1tb > 0.5

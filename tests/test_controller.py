"""The BDS controller: decision loop, fallback, diagnostics."""

import pytest

from repro.baselines.gingko import GingkoStrategy
from repro.core import BDSConfig, BDSController
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def make_setup(controller=None):
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=20 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    controller = controller or BDSController(seed=0)
    return topo, job, controller


class TestConfig:
    def test_defaults_match_paper(self):
        config = BDSConfig()
        assert config.block_size == 2 * MB
        assert config.cycle_seconds == 3.0
        assert config.safety_threshold == 0.8

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            BDSConfig(routing_backend="quantum")

    def test_negative_blocks_cap_rejected(self):
        with pytest.raises(ValueError):
            BDSConfig(max_blocks_per_cycle=-1)


class TestDecide:
    def test_decisions_recorded(self):
        topo, job, controller = make_setup()
        sim = Simulation(topo, [job], controller, SimConfig())
        result = sim.run()
        assert result.all_complete
        assert controller.decisions
        first = controller.decisions[0]
        assert first.scheduled_blocks == 20  # 10 blocks x 2 DCs
        assert first.directives
        assert first.total_runtime > 0

    def test_rate_caps_always_set(self):
        topo, job, controller = make_setup()
        sim = Simulation(topo, [job], controller, SimConfig())
        view = sim.snapshot_view()
        for directive in controller.decide(view):
            assert directive.rate_cap is not None
            assert directive.rate_cap > 0

    def test_mean_runtime(self):
        topo, job, controller = make_setup()
        Simulation(topo, [job], controller, SimConfig()).run()
        assert controller.mean_runtime() > 0

    def test_mean_runtime_empty(self):
        assert BDSController().mean_runtime() == 0.0

    def test_last_decision(self):
        controller = BDSController()
        assert controller.last_decision() is None


class TestFallback:
    def test_fallback_when_controller_down(self):
        topo, job, controller = make_setup()
        failures = FailureSchedule([FailureEvent(cycle=0, kind="controller_fail")])
        sim = Simulation(
            topo, [job], controller, SimConfig(max_cycles=2), failures=failures
        )
        sim.run()
        assert controller.fallback_active
        # No centralized decisions were recorded while down.
        assert controller.decisions == []

    def test_fallback_still_makes_progress(self):
        topo, job, controller = make_setup()
        failures = FailureSchedule([FailureEvent(cycle=0, kind="controller_fail")])
        sim = Simulation(
            topo, [job], controller, SimConfig(max_cycles=500), failures=failures
        )
        result = sim.run()
        assert result.all_complete  # degraded, not dead

    def test_recovery_resumes_centralized_control(self):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
        )
        # Big enough that fallback cannot finish before the controller
        # returns at cycle 3 (source egress is 20 MB/s -> 9 s minimum).
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=400 * MB,
            block_size=2 * MB,
        )
        job.bind(topo)
        controller = BDSController(seed=0)
        failures = FailureSchedule(
            [
                FailureEvent(cycle=0, kind="controller_fail"),
                FailureEvent(cycle=3, kind="controller_recover"),
            ]
        )
        sim = Simulation(
            topo, [job], controller, SimConfig(max_cycles=500), failures=failures
        )
        sim.run()
        assert not controller.fallback_active
        assert controller.decisions
        assert controller.decisions[0].cycle >= 3

    def test_custom_fallback_used(self):
        fallback = GingkoStrategy(seed=1)
        controller = BDSController(fallback=fallback)
        assert controller.fallback is fallback

    def test_faster_than_gingko_on_contended_topology(self):
        """BDS's global view should beat Gingko's local views."""

        def build():
            topo = Topology.full_mesh(
                num_dcs=5, servers_per_dc=4, wan_capacity=100 * MBps,
                uplink=5 * MBps,
            )
            job = MulticastJob(
                job_id="j",
                src_dc="dc0",
                dst_dcs=("dc1", "dc2", "dc3", "dc4"),
                total_bytes=80 * MB,
                block_size=4 * MB,
            )
            job.bind(topo)
            return topo, job

        topo, job = build()
        bds = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(max_cycles=3000), seed=0
        ).run()
        topo, job = build()
        gingko = Simulation(
            topo, [job], GingkoStrategy(seed=0), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert bds.completion_time("j") < gingko.completion_time("j")

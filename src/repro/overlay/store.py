"""The possession index: who holds which blocks, cluster-wide.

This is the controller's "global view of data delivery status" (§3).
Besides membership queries it maintains the aggregates the scheduling and
evaluation logic needs:

* per-block duplicate counts (for rarest-first scheduling, §4.3);
* per-DC possession (for completion detection);
* delivery provenance (whether each delivered block came from the origin DC
  or from an overlay path — the Fig. 13c measurement).

Two backings exist behind the same :class:`PossessionIndex` API:

* the **array-native** backing (default): a :class:`PossessionMatrix` of
  packed ``uint64`` bitset rows (servers × blocks) with interned integer
  ids for servers, DCs, and blocks. Duplicate counts and per-DC copy
  counts are maintained incrementally alongside the bits, so rarity is a
  single array gather and the vectorized scheduler can mask/sort whole
  candidate sets without touching Python objects;
* the **legacy dict-of-sets** backing (``vectorized=False``), kept
  verbatim as the baseline the scheduler-kernel benchmark and the
  equivalence tests A/B against.

Both backings keep identical epoch arithmetic: every *new* possession
(seed or delivery) bumps ``epoch`` by one, and ``drop_server`` bumps it
once per call (not once per dropped block — see the method docstring).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    AbstractSet,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.overlay.blocks import Block

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class DeliveryRecord:
    """Provenance of one block delivery."""

    block_id: BlockId
    src_server: str
    dst_server: str
    time: float
    from_origin_dc: bool


#: Immutable empties returned for unknown blocks/servers. These used to be
#: module-level *mutable* sets: one stray caller mutation would have
#: poisoned every future query for every index in the process. Frozen
#: variants make that class of bug structurally impossible.
_EMPTY_HOLDERS: FrozenSet[str] = frozenset()
_EMPTY_BLOCKS: FrozenSet[BlockId] = frozenset()


class PossessionMatrix:
    """Packed servers × blocks possession bitset with interned integer ids.

    The id interning contract:

    * **servers** are interned once at construction, in ascending name
      order — so ascending server id equals lexicographic server-name
      order, and ``np.nonzero`` over a bit column yields holders already
      sorted the way the router's candidate-source logic sorts names;
    * **DCs** are interned once at construction, also in sorted-name
      order (DC-id comparisons reproduce DC-name comparisons);
    * **blocks** are interned on first touch (seed, delivery, or an
      explicit :meth:`intern`) and keep their column for the lifetime of
      the matrix. The column space grows geometrically (capacity doubles,
      rounded to whole 64-bit words); existing bits are copied, ids never
      move.

    Row ``s`` packs the blocks server ``s`` holds, 64 block columns per
    ``uint64`` word (block ``g`` lives in word ``g >> 6``, bit ``g & 63``).
    ``dup[g]`` (cluster-wide copy count — the §4.3 rarity measure) and
    ``dc_counts[d, g]`` (copies inside DC ``d``) are maintained
    incrementally on every bit flip, so they always equal the popcount of
    the corresponding column (resp. the column restricted to the DC's
    rows); the equivalence tests assert this invariant directly.
    """

    __slots__ = (
        "server_names",
        "server_ids",
        "dc_names",
        "dc_ids",
        "server_dc_ids",
        "server_dc_list",
        "bits",
        "dup",
        "dc_counts",
        "block_gids",
        "block_names",
        "_capacity",
        "_words",
        "_flat",
    )

    def __init__(
        self, server_dc: Mapping[str, str], block_capacity: int = 1024
    ) -> None:
        names = sorted(server_dc)
        self.server_names: List[str] = names
        self.server_ids: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.dc_names: List[str] = sorted(set(server_dc.values()))
        self.dc_ids: Dict[str, int] = {d: i for i, d in enumerate(self.dc_names)}
        self.server_dc_ids = np.array(
            [self.dc_ids[server_dc[n]] for n in names], dtype=np.int64
        )
        self.server_dc_list: List[int] = self.server_dc_ids.tolist()
        capacity = max(64, block_capacity)
        capacity = (capacity + 63) & ~63  # whole uint64 words
        self._capacity = capacity
        self._words = capacity >> 6
        num_servers = len(names)
        self.bits = np.zeros((num_servers, self._words), dtype=np.uint64)
        self._flat = self.bits.reshape(-1)
        self.dup = np.zeros(capacity, dtype=np.int64)
        self.dc_counts = np.zeros(
            (len(self.dc_names), capacity), dtype=np.int64
        )
        self.block_gids: Dict[BlockId, int] = {}
        self.block_names: List[BlockId] = []

    # -- interning ---------------------------------------------------------

    @property
    def num_servers(self) -> int:
        return len(self.server_names)

    @property
    def num_blocks(self) -> int:
        return len(self.block_names)

    def intern(self, block_id: BlockId) -> int:
        """The block's column id, allocating one on first sight."""
        gid = self.block_gids.get(block_id)
        if gid is None:
            gid = len(self.block_names)
            if gid >= self._capacity:
                self._grow(gid + 1)
            self.block_gids[block_id] = gid
            self.block_names.append(block_id)
        return gid

    def gid_of(self, block_id: BlockId) -> Optional[int]:
        """The block's column id, or ``None`` if never interned."""
        return self.block_gids.get(block_id)

    def intern_block_range(self, job_id: str, count: int) -> int:
        """Intern blocks ``(job_id, 0..count-1)`` as consecutive columns.

        Returns the first column id, so callers can address the whole
        job with ``base + block_index`` arrays instead of per-block dict
        lookups. If block 0 is already interned the existing base is
        returned — the caller contract is that the *same* bulk call
        interned the full range then (shard mirrors intern each job
        exactly once, before any of its possession bits land), so the
        range is contiguous by construction.
        """
        base = self.block_gids.get((job_id, 0))
        if base is not None:
            return base
        base = len(self.block_names)
        if base + count > self._capacity:
            self._grow(base + count)
        # Bulk-register the range: one tuple list shared by the dict and
        # the name table keeps a 10^6-block job out of a per-block Python
        # loop (the mirror cold path runs inside the controller's decide
        # wall, unlike the simulator's build-at-init interning).
        new_ids = [(job_id, index) for index in range(count)]
        self.block_gids.update(zip(new_ids, range(base, base + count)))
        self.block_names.extend(new_ids)
        return base

    def _grow(self, needed: int) -> None:
        capacity = max(self._capacity * 2, (needed + 63) & ~63)
        capacity = (capacity + 63) & ~63
        words = capacity >> 6
        bits = np.zeros((self.bits.shape[0], words), dtype=np.uint64)
        bits[:, : self._words] = self.bits
        self.bits = bits
        self._flat = bits.reshape(-1)
        dup = np.zeros(capacity, dtype=np.int64)
        dup[: self._capacity] = self.dup
        self.dup = dup
        dc_counts = np.zeros((self.dc_counts.shape[0], capacity), dtype=np.int64)
        dc_counts[:, : self._capacity] = self.dc_counts
        self.dc_counts = dc_counts
        self._capacity = capacity
        self._words = words

    # -- single-bit updates/queries ---------------------------------------

    def test_bit(self, sid: int, gid: int) -> bool:
        """Does server ``sid`` hold block column ``gid``?"""
        word = self._flat.item(sid * self._words + (gid >> 6))
        return bool((word >> (gid & 63)) & 1)

    def set_bit(self, sid: int, gid: int) -> bool:
        """Set one possession bit; returns ``True`` if it was newly set."""
        i = sid * self._words + (gid >> 6)
        word = self._flat.item(i)
        mask = 1 << (gid & 63)
        if word & mask:
            return False
        self._flat[i] = word | mask
        self.dup[gid] += 1
        self.dc_counts[self.server_dc_list[sid], gid] += 1
        return True

    def set_many(self, sid: int, gids: Iterable[int]) -> int:
        """Set a batch of bits on one row; returns how many were new.

        The batched form keeps large initial seedings (10^6-block jobs)
        out of per-bit Python loops: previously-unset columns are found
        with one gather, the row is OR-updated wordwise, and the
        duplicate/DC counters advance with unique fancy indexing.
        """
        if isinstance(gids, np.ndarray):
            arr = gids.astype(np.int64, copy=False)
        else:
            arr = np.asarray(list(gids), dtype=np.int64)
        unique = np.unique(arr)
        if unique.size == 0:
            return 0
        row = self.bits[sid]
        words = unique >> 6
        masks = np.uint64(1) << (unique & 63).astype(np.uint64)
        fresh = (row[words] & masks) == 0
        new_gids = unique[fresh]
        if new_gids.size == 0:
            return 0
        # bitwise_or.at handles repeated word indices (several new blocks
        # landing in the same 64-column word) where fancy |= would not.
        np.bitwise_or.at(row, words[fresh], masks[fresh])
        self.dup[new_gids] += 1
        self.dc_counts[self.server_dc_list[sid]][new_gids] += 1
        return int(new_gids.size)

    def record_deliveries(self, sids: np.ndarray, gids: np.ndarray) -> np.ndarray:
        """Set possession bits for parallel (server, block) arrays.

        The batched counterpart of per-pair :meth:`set_bit` for one
        cycle's deliveries, which may span many destination rows. Returns
        a boolean mask of which pairs were *newly* set; pairs already
        held — or repeated within the batch, where only the first
        occurrence wins — come back ``False``, exactly as a sequential
        ``set_bit`` loop would report. The bits land with one
        ``bitwise_or.at`` scatter (repeated words are safe) and the
        duplicate/DC counters advance with ``add.at`` scatter-adds
        (repeated columns accumulate).
        """
        fresh = ~self.test_many(sids, gids)
        if fresh.any():
            # First-occurrence dedupe inside the batch: two deliveries of
            # the same (server, block) pair in one cycle must register as
            # one new bit plus one duplicate, in that order.
            pair = sids * np.int64(self._capacity) + gids
            _vals, first = np.unique(pair, return_index=True)
            is_first = np.zeros(len(pair), dtype=bool)
            is_first[first] = True
            fresh &= is_first
            rows = sids[fresh]
            cols = gids[fresh]
            flat_idx = rows * self._words + (cols >> 6)
            masks = np.uint64(1) << (cols & 63).astype(np.uint64)
            np.bitwise_or.at(self._flat, flat_idx, masks)
            np.add.at(self.dup, cols, 1)
            np.add.at(self.dc_counts, (self.server_dc_ids[rows], cols), 1)
        return fresh

    def clear_row(self, sid: int) -> int:
        """Drop every block on one server; returns how many were held."""
        held = self.row_gids(sid)
        if held.size == 0:
            return 0
        self.dup[held] -= 1
        self.dc_counts[self.server_dc_list[sid]][held] -= 1
        self.bits[sid, :] = 0
        return int(held.size)

    # -- batched queries (the vectorized control-plane surface) ------------

    def holder_ids(self, gid: int) -> np.ndarray:
        """Server ids holding the block, ascending (== sorted by name)."""
        column = self.bits[:, gid >> 6]
        mask = np.uint64(1 << (gid & 63))
        return np.nonzero(column & mask)[0]

    def row_gids(self, sid: int) -> np.ndarray:
        """Block columns set on one server row, ascending."""
        row = self.bits[sid]
        if not row.any():
            return np.empty(0, dtype=np.int64)
        if sys.byteorder == "big":  # pragma: no cover - x86/arm are little
            row = row.byteswap()
        flags = np.unpackbits(row.view(np.uint8), bitorder="little")
        return np.nonzero(flags)[0].astype(np.int64)

    def test_many(self, sids: np.ndarray, gids: np.ndarray) -> np.ndarray:
        """Boolean possession gather for parallel (server, block) arrays."""
        words = self.bits[sids, gids >> 6]
        return (words >> (gids & 63).astype(np.uint64)) & np.uint64(1) != 0

    def test_row_many(self, sid: int, gids: np.ndarray) -> np.ndarray:
        """Boolean possession gather for one server over many blocks."""
        row = self.bits[sid]
        words = row[gids >> 6]
        return (words >> (gids & 63).astype(np.uint64)) & np.uint64(1) != 0

    def dc_covered_many(self, dc_gids: np.ndarray, gids: np.ndarray) -> np.ndarray:
        """Per-(DC, block) "does the DC hold any copy" gather."""
        return self.dc_counts[dc_gids, gids] > 0

    # -- telemetry ---------------------------------------------------------

    def state_bytes(self) -> int:
        """Bytes held by the possession arrays (bits + dup + dc_counts).

        The dominant, capacity-proportional memory of the matrix — the
        per-shard footprint the sharded control plane's telemetry tracks
        (interning dicts are excluded; they are O(blocks) pointers and
        identical across backings).
        """
        return int(self.bits.nbytes + self.dup.nbytes + self.dc_counts.nbytes)


class PossessionIndex:
    """Tracks block possession per server with O(1) updates and lookups.

    ``epoch`` counts mutation *events*: one bump per newly-placed copy
    (seed or delivery) and one bump per effective ``drop_server`` call.
    Read-side caches — most importantly the per-cycle :class:`~repro.net.
    cycle_cache.CycleCache` — key their validity on it: any possession
    change bumps the epoch and invalidates every memoized rarity/holder
    query.

    With ``vectorized=True`` (the default) the index is a thin facade over
    a :class:`PossessionMatrix`; the hot control-plane paths bypass the
    facade and operate on the matrix arrays directly (see
    :mod:`repro.core.scheduling`). ``vectorized=False`` keeps the original
    dict-of-sets bookkeeping as the in-tree baseline for the
    scheduler-kernel benchmark and the equivalence tests.
    """

    def __init__(
        self,
        server_dc: Mapping[str, str],
        vectorized: bool = True,
        block_capacity: int = 1024,
    ) -> None:
        # server id -> DC name; fixed for the lifetime of the index.
        self._server_dc: Dict[str, str] = dict(server_dc)
        self.deliveries: List[DeliveryRecord] = []
        self.epoch: int = 0
        self.matrix: Optional[PossessionMatrix] = None
        self._holders: Dict[BlockId, Set[str]] = {}
        self._server_blocks: Dict[str, Set[BlockId]] = {}
        self._dc_counts: Dict[Tuple[str, BlockId], int] = {}
        if vectorized:
            # ``block_capacity`` sizes the matrix's initial column space.
            # Shard mirrors pass their partition's block count so a 1/k
            # partition holds ~1/k of the arrays instead of being
            # quantized up by the default floor + power-of-two growth.
            self.matrix = PossessionMatrix(
                self._server_dc, block_capacity=block_capacity
            )
        else:
            self._server_blocks = {s: set() for s in self._server_dc}

    @property
    def is_exact_matrix(self) -> bool:
        """True when queries answer straight from a live PossessionMatrix.

        Overlay stores (speculation) wrap an index and add phantom copies;
        they advertise ``False`` so the vectorized scheduler/router know
        the matrix alone is not the whole truth and fall back to the
        facade queries.
        """
        return self.matrix is not None

    # -- updates --------------------------------------------------------------

    def seed(self, server_id: str, blocks: Iterable[Block]) -> None:
        """Place initial copies (no delivery records; they were never sent)."""
        matrix = self.matrix
        if matrix is not None:
            try:
                sid = matrix.server_ids[server_id]
            except KeyError:
                raise KeyError(f"unknown server {server_id!r}") from None
            gids = [matrix.intern(block.block_id) for block in blocks]
            self.epoch += matrix.set_many(sid, gids)
            return
        for block in blocks:
            self._add(block.block_id, server_id)

    def seed_gids(self, server_id: str, gids: "np.ndarray") -> None:
        """Matrix-only bulk :meth:`seed` by pre-interned column ids.

        The shard mirrors' fast ingest path: a whole (server, job) batch
        of initial copies lands in one :meth:`PossessionMatrix.set_many`
        call instead of per-block facade hops. Same idempotence and
        epoch bookkeeping as :meth:`seed`; requires the vectorized
        backing (the scalar dict store has no column ids).
        """
        matrix = self.matrix
        if matrix is None:
            raise RuntimeError("seed_gids requires the matrix backing")
        try:
            sid = matrix.server_ids[server_id]
        except KeyError:
            raise KeyError(f"unknown server {server_id!r}") from None
        self.epoch += matrix.set_many(sid, gids)

    def record_delivery(
        self,
        block: Block,
        src_server: str,
        dst_server: str,
        time: float,
        origin_dc: str,
    ) -> Optional[DeliveryRecord]:
        """Register a completed transfer of ``block`` to ``dst_server``.

        Returns the provenance record, or ``None`` if the destination
        already held the block (duplicate delivery is a no-op).
        """
        if self.has(dst_server, block.block_id):
            return None
        self._add(block.block_id, dst_server)
        record = DeliveryRecord(
            block_id=block.block_id,
            src_server=src_server,
            dst_server=dst_server,
            time=time,
            from_origin_dc=self.dc_of(src_server) == origin_dc,
        )
        self.deliveries.append(record)
        return record

    def record_deliveries(
        self,
        events: Sequence[Tuple[Block, str, str, float, str]],
    ) -> List[Optional[DeliveryRecord]]:
        """Batch :meth:`record_delivery`: one grouped possession pass.

        ``events`` is a sequence of ``(block, src_server, dst_server,
        time, origin_dc)`` tuples — the same arguments, applied in order.
        Returns a list aligned with ``events``: the fresh
        :class:`DeliveryRecord` per new possession, ``None`` for
        duplicates (a destination that already held the block, or a later
        repeat of the same pair within the batch). Provenance records
        append in event order and the epoch advances once per new copy —
        byte-identical bookkeeping to the sequential loop.

        With the matrix backing, destination servers are resolved (and
        unknown ones rejected) *before* any bit lands, so a bad event
        fails the whole batch instead of a prefix — the one deliberate
        divergence from looping :meth:`record_delivery`, which would
        apply events preceding the bad one.
        """
        matrix = self.matrix
        if matrix is None:
            return [self.record_delivery(*event) for event in events]
        n = len(events)
        out: List[Optional[DeliveryRecord]] = [None] * n
        if n == 0:
            return out
        sids = np.empty(n, dtype=np.int64)
        gids = np.empty(n, dtype=np.int64)
        server_ids = matrix.server_ids
        gid_map = matrix.block_gids
        intern = matrix.intern
        for k, (block, _src, dst, _when, _origin) in enumerate(events):
            sid = server_ids.get(dst)
            if sid is None:
                raise KeyError(f"unknown server {dst!r}")
            sids[k] = sid
            bid = block.block_id
            gid = gid_map.get(bid)
            gids[k] = intern(bid) if gid is None else gid
        fresh = matrix.record_deliveries(sids, gids)
        count = int(np.count_nonzero(fresh))
        if count == 0:
            return out
        self.epoch += count
        server_dc = self._server_dc
        append = self.deliveries.append
        for k in np.flatnonzero(fresh):
            block, src, dst, when, origin = events[k]
            record = DeliveryRecord(
                block_id=block.block_id,
                src_server=src,
                dst_server=dst,
                time=when,
                from_origin_dc=server_dc[src] == origin,
            )
            out[k] = record
            append(record)
        return out

    def _add(self, block_id: BlockId, server_id: str) -> None:
        matrix = self.matrix
        if matrix is not None:
            try:
                sid = matrix.server_ids[server_id]
            except KeyError:
                raise KeyError(f"unknown server {server_id!r}") from None
            if matrix.set_bit(sid, matrix.intern(block_id)):
                self.epoch += 1
            return
        if server_id not in self._server_dc:
            raise KeyError(f"unknown server {server_id!r}")
        holders = self._holders.setdefault(block_id, set())
        if server_id in holders:
            return
        holders.add(server_id)
        self._server_blocks[server_id].add(block_id)
        dc = self._server_dc[server_id]
        key = (dc, block_id)
        self._dc_counts[key] = self._dc_counts.get(key, 0) + 1
        self.epoch += 1

    def drop_server(self, server_id: str) -> None:
        """Remove all copies on a failed server (disk loss).

        Bumps the epoch **once per call** (when anything was actually
        dropped), not once per dropped block: a disk-loss event is one
        state transition, and epoch-delta consumers (anything comparing
        ``epoch`` across reads to estimate churn) should see it as one
        invalidation, not thousands. :class:`~repro.net.cycle_cache.
        CycleCache` only tests epoch *equality*, so its invalidation
        behaviour is unchanged either way.
        """
        matrix = self.matrix
        if matrix is not None:
            sid = matrix.server_ids.get(server_id)
            if sid is None:
                return
            if matrix.clear_row(sid):
                self.epoch += 1
            return
        dropped = False
        for block_id in list(self._server_blocks.get(server_id, ())):
            self._holders[block_id].discard(server_id)
            dc = self._server_dc[server_id]
            key = (dc, block_id)
            self._dc_counts[key] -= 1
            if self._dc_counts[key] == 0:
                del self._dc_counts[key]
            dropped = True
        if server_id in self._server_blocks:
            self._server_blocks[server_id] = set()
        if dropped:
            self.epoch += 1

    # -- queries ---------------------------------------------------------------

    def dc_of(self, server_id: str) -> str:
        return self._server_dc[server_id]

    def has(self, server_id: str, block_id: BlockId) -> bool:
        matrix = self.matrix
        if matrix is not None:
            gid = matrix.block_gids.get(block_id)
            if gid is None:
                return False
            sid = matrix.server_ids.get(server_id)
            if sid is None:
                return False
            return matrix.test_bit(sid, gid)
        return block_id in self._server_blocks.get(server_id, ())

    def holders(self, block_id: BlockId) -> AbstractSet[str]:
        """Servers currently holding the block.

        Returns a *read-only view*: the matrix backing materializes a
        ``frozenset`` from the bit column; the dict backing returns the
        live internal set (copying here dominated steady-state allocation
        churn) and unknown blocks get a shared ``frozenset()``. Callers
        must never mutate the result.
        """
        matrix = self.matrix
        if matrix is not None:
            gid = matrix.block_gids.get(block_id)
            if gid is None:
                return _EMPTY_HOLDERS
            names = matrix.server_names
            return frozenset(names[i] for i in matrix.holder_ids(gid))
        return self._holders.get(block_id, _EMPTY_HOLDERS)

    def duplicate_count(self, block_id: BlockId) -> int:
        """Number of copies cluster-wide (the §4.3 rarity measure)."""
        matrix = self.matrix
        if matrix is not None:
            gid = matrix.block_gids.get(block_id)
            return int(matrix.dup[gid]) if gid is not None else 0
        return len(self._holders.get(block_id, ()))

    def blocks_on(self, server_id: str) -> AbstractSet[BlockId]:
        """Blocks held by one server, as a read-only view.

        The dict backing returns the live internal set (this used to copy
        on every call); the matrix backing decodes the server's bit row
        into a fresh ``frozenset``. Either way callers must treat the
        result as immutable — derive new sets with ``|``/``-`` instead of
        mutating in place.
        """
        matrix = self.matrix
        if matrix is not None:
            sid = matrix.server_ids.get(server_id)
            if sid is None:
                return _EMPTY_BLOCKS
            names = matrix.block_names
            return frozenset(names[g] for g in matrix.row_gids(sid))
        return self._server_blocks.get(server_id, _EMPTY_BLOCKS)

    def dc_has_block(self, dc: str, block_id: BlockId) -> bool:
        matrix = self.matrix
        if matrix is not None:
            return self.dc_copy_count(dc, block_id) > 0
        return self._dc_counts.get((dc, block_id), 0) > 0

    def dc_copy_count(self, dc: str, block_id: BlockId) -> int:
        matrix = self.matrix
        if matrix is not None:
            gid = matrix.block_gids.get(block_id)
            if gid is None:
                return 0
            did = matrix.dc_ids.get(dc)
            if did is None:
                return 0
            return int(matrix.dc_counts[did, gid])
        return self._dc_counts.get((dc, block_id), 0)

    def state_bytes(self) -> int:
        """Approximate bytes of possession state held by this index.

        Matrix backing: the exact array footprint
        (:meth:`PossessionMatrix.state_bytes`). Dict backing: a
        structural estimate (64 bytes per holder-set entry and per
        DC-count entry — hash-table slots plus the interned references),
        good enough for the relative per-shard comparisons the telemetry
        exists for.
        """
        matrix = self.matrix
        if matrix is not None:
            return matrix.state_bytes()
        entries = sum(len(holders) for holders in self._holders.values())
        return 64 * (
            entries
            + len(self._holders)
            + sum(len(blocks) for blocks in self._server_blocks.values())
            + len(self._dc_counts)
        )

    # -- evaluation helpers -----------------------------------------------------

    def origin_fraction_by_server(self) -> Dict[str, float]:
        """Per destination server: fraction of deliveries from the origin DC.

        The Fig. 13c statistic. Servers that never received anything are
        omitted.
        """
        totals: Dict[str, int] = {}
        from_origin: Dict[str, int] = {}
        for record in self.deliveries:
            totals[record.dst_server] = totals.get(record.dst_server, 0) + 1
            if record.from_origin_dc:
                from_origin[record.dst_server] = (
                    from_origin.get(record.dst_server, 0) + 1
                )
        return {
            server: from_origin.get(server, 0) / count
            for server, count in totals.items()
        }

"""Datacenter / server / WAN-link topology model.

The model mirrors the paper's setting (§2, §6): tens of geo-distributed
datacenters (DCs) connected by capacitated WAN links, each DC containing many
servers whose uplink/downlink capacities are orders of magnitude smaller than
the WAN links. Intra-DC bandwidth is treated as abundant (the paper's
bottlenecks are server NICs and WAN links), so a server-to-server transfer
consumes three kinds of resources:

* the source server's uplink,
* every WAN link on the DC-level route,
* the destination server's downlink.

Resources are identified by hashable keys (see :data:`ResourceKey`) so that
the max-min fair allocator and the LP router can treat them uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive

# A resource is ("up", server_id), ("down", server_id) or ("wan", src, dst).
ResourceKey = Tuple[str, ...]


def uplink_key(server_id: str) -> ResourceKey:
    """Resource key for a server's uplink."""
    return ("up", server_id)


def downlink_key(server_id: str) -> ResourceKey:
    """Resource key for a server's downlink."""
    return ("down", server_id)


def wan_key(src_dc: str, dst_dc: str) -> ResourceKey:
    """Resource key for the directed WAN link ``src_dc -> dst_dc``."""
    return ("wan", src_dc, dst_dc)


@dataclass(frozen=True)
class Server:
    """A server with a DC location and NIC capacities in bytes/second."""

    server_id: str
    dc: str
    uplink: float
    downlink: float

    def __post_init__(self) -> None:
        check_positive("uplink", self.uplink)
        check_positive("downlink", self.downlink)


@dataclass(frozen=True)
class Link:
    """A directed WAN link between two DCs with capacity in bytes/second."""

    src_dc: str
    dst_dc: str
    capacity: float

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity)
        if self.src_dc == self.dst_dc:
            raise ValueError("a WAN link must connect two distinct DCs")

    @property
    def key(self) -> ResourceKey:
        return wan_key(self.src_dc, self.dst_dc)


@dataclass
class DataCenter:
    """A named datacenter holding an ordered list of servers."""

    name: str
    servers: List[Server] = field(default_factory=list)

    def server_ids(self) -> List[str]:
        return [s.server_id for s in self.servers]


class Topology:
    """The DC graph plus all servers, with precomputed WAN routing.

    WAN routing between DC pairs follows a fixed min-hop shortest path
    (ties broken by total inverse capacity, preferring fat links), matching
    the paper's assumption that IP-layer WAN routing is outside the overlay's
    control: the overlay chooses *which DC sequence to store-and-forward
    through*, while each individual hop rides the network-layer route.
    """

    def __init__(self) -> None:
        self.dcs: Dict[str, DataCenter] = {}
        self.servers: Dict[str, Server] = {}
        self.links: Dict[ResourceKey, Link] = {}
        self._routes: Optional[Dict[Tuple[str, str], Tuple[ResourceKey, ...]]] = None
        # Failure-aware route tables, keyed by the frozenset of failed
        # (src_dc, dst_dc) links they exclude.
        self._avoiding_routes: Dict[
            frozenset, Dict[Tuple[str, str], Tuple[ResourceKey, ...]]
        ] = {}
        # Structural mutation counter: bumps on every add_dc/add_server/
        # add_link, invalidating capacity and path caches keyed on it.
        self.epoch: int = 0
        self._caps_cache: Optional[Dict[ResourceKey, float]] = None

    # -- construction -----------------------------------------------------

    def add_dc(self, name: str) -> DataCenter:
        """Add an empty datacenter; returns the new :class:`DataCenter`."""
        if name in self.dcs:
            raise ValueError(f"duplicate DC {name!r}")
        dc = DataCenter(name=name)
        self.dcs[name] = dc
        self._routes = None
        self._caps_cache = None
        self._avoiding_routes.clear()
        self.epoch += 1
        return dc

    def add_server(
        self, server_id: str, dc: str, uplink: float, downlink: float
    ) -> Server:
        """Add a server to an existing DC."""
        if dc not in self.dcs:
            raise ValueError(f"unknown DC {dc!r}")
        if server_id in self.servers:
            raise ValueError(f"duplicate server {server_id!r}")
        server = Server(server_id=server_id, dc=dc, uplink=uplink, downlink=downlink)
        self.servers[server_id] = server
        self.dcs[dc].servers.append(server)
        self._caps_cache = None
        self.epoch += 1
        return server

    def add_link(self, src_dc: str, dst_dc: str, capacity: float) -> Link:
        """Add a directed WAN link; both DCs must already exist."""
        for name in (src_dc, dst_dc):
            if name not in self.dcs:
                raise ValueError(f"unknown DC {name!r}")
        link = Link(src_dc=src_dc, dst_dc=dst_dc, capacity=capacity)
        if link.key in self.links:
            raise ValueError(f"duplicate link {src_dc}->{dst_dc}")
        self.links[link.key] = link
        self._routes = None
        self._caps_cache = None
        self._avoiding_routes.clear()
        self.epoch += 1
        return link

    def add_bidirectional_link(
        self, dc_a: str, dc_b: str, capacity: float
    ) -> Tuple[Link, Link]:
        """Add a pair of directed links with equal capacity."""
        return (
            self.add_link(dc_a, dc_b, capacity),
            self.add_link(dc_b, dc_a, capacity),
        )

    # -- queries -----------------------------------------------------------

    def dc_names(self) -> List[str]:
        return list(self.dcs)

    def servers_in(self, dc: str) -> List[Server]:
        """All servers located in ``dc`` (in insertion order)."""
        return list(self.dcs[dc].servers)

    def neighbors(self, dc: str) -> List[str]:
        """DCs directly reachable from ``dc`` over one WAN link."""
        return [link.dst_dc for link in self.links.values() if link.src_dc == dc]

    def link_capacity(self, src_dc: str, dst_dc: str) -> float:
        return self.links[wan_key(src_dc, dst_dc)].capacity

    def resource_capacities(self) -> Dict[ResourceKey, float]:
        """Capacity of every resource: WAN links plus all server NICs.

        The result is cached until the topology next mutates; callers must
        treat it as read-only (the simulator reads it every cycle).
        """
        if self._caps_cache is None:
            caps: Dict[ResourceKey, float] = {
                key: link.capacity for key, link in self.links.items()
            }
            for server in self.servers.values():
                caps[uplink_key(server.server_id)] = server.uplink
                caps[downlink_key(server.server_id)] = server.downlink
            self._caps_cache = caps
        return self._caps_cache

    # -- routing -----------------------------------------------------------

    def _compute_routes(
        self, excluded: frozenset = frozenset()
    ) -> Dict[Tuple[str, str], Tuple[ResourceKey, ...]]:
        """All-pairs min-hop routes over the DC graph (Dijkstra per source).

        Edge weight is ``1 + epsilon/capacity`` so the route minimizes hops
        first and prefers higher-capacity links among equal-hop routes.
        ``excluded`` drops failed ``(src_dc, dst_dc)`` links from the graph
        (§5.3 network partitions reroute or disconnect).
        """
        routes: Dict[Tuple[str, str], Tuple[ResourceKey, ...]] = {}
        adjacency: Dict[str, List[Link]] = {name: [] for name in self.dcs}
        max_cap = max(
            (lnk.capacity for lnk in self.links.values()), default=1.0
        )
        for link in self.links.values():
            if (link.src_dc, link.dst_dc) in excluded:
                continue
            adjacency[link.src_dc].append(link)

        import heapq

        for source in self.dcs:
            dist: Dict[str, float] = {source: 0.0}
            prev: Dict[str, Link] = {}
            heap: List[Tuple[float, str]] = [(0.0, source)]
            while heap:
                d, dc = heapq.heappop(heap)
                if d > dist.get(dc, float("inf")):
                    continue
                for link in adjacency[dc]:
                    weight = 1.0 + 1e-6 * (max_cap / link.capacity)
                    nd = d + weight
                    if nd < dist.get(link.dst_dc, float("inf")):
                        dist[link.dst_dc] = nd
                        prev[link.dst_dc] = link
                        heapq.heappush(heap, (nd, link.dst_dc))
            for target in self.dcs:
                if target == source:
                    routes[(source, target)] = ()
                    continue
                if target not in prev:
                    continue  # unreachable; route() raises on lookup
                hops: List[ResourceKey] = []
                node = target
                while node != source:
                    link = prev[node]
                    hops.append(link.key)
                    node = link.src_dc
                routes[(source, target)] = tuple(reversed(hops))
        return routes

    def route(
        self,
        src_dc: str,
        dst_dc: str,
        exclude_links: frozenset = frozenset(),
    ) -> Tuple[ResourceKey, ...]:
        """WAN links traversed between two DCs (empty tuple if same DC).

        ``exclude_links`` is a frozenset of failed ``(src_dc, dst_dc)``
        pairs; routing detours around them, raising if the destination is
        unreachable (a partition).
        """
        if exclude_links:
            table = self._avoiding_routes.get(exclude_links)
            if table is None:
                table = self._compute_routes(exclude_links)
                self._avoiding_routes[exclude_links] = table
        else:
            if self._routes is None:
                self._routes = self._compute_routes()
            table = self._routes
        try:
            return table[(src_dc, dst_dc)]
        except KeyError:
            raise ValueError(f"no WAN route from {src_dc!r} to {dst_dc!r}") from None

    def route_dcs(self, src_dc: str, dst_dc: str) -> Tuple[str, ...]:
        """The DC sequence of the WAN route, including both endpoints."""
        dcs = [src_dc]
        for key in self.route(src_dc, dst_dc):
            dcs.append(key[2])
        return tuple(dcs)

    def flow_resources(
        self,
        src_server: str,
        dst_server: str,
        exclude_links: frozenset = frozenset(),
    ) -> Tuple[ResourceKey, ...]:
        """All resources a transfer between two servers consumes."""
        src = self.servers[src_server]
        dst = self.servers[dst_server]
        if src_server == dst_server:
            raise ValueError("flow endpoints must differ")
        middle = self.route(src.dc, dst.dc, exclude_links)
        return (uplink_key(src_server),) + middle + (downlink_key(dst_server),)

    def reachable_dcs(
        self, from_dc: str, exclude_links: frozenset = frozenset()
    ) -> frozenset:
        """DCs reachable from ``from_dc`` over healthy links (incl. itself).

        Used for §5.3 partition handling: DCs in the controller's partition
        stay centrally controlled, the rest fall back.
        """
        if from_dc not in self.dcs:
            raise ValueError(f"unknown DC {from_dc!r}")
        seen = {from_dc}
        frontier = [from_dc]
        while frontier:
            dc = frontier.pop()
            for link in self.links.values():
                if link.src_dc != dc:
                    continue
                if (link.src_dc, link.dst_dc) in exclude_links:
                    continue
                if link.dst_dc not in seen:
                    seen.add(link.dst_dc)
                    frontier.append(link.dst_dc)
        return frozenset(seen)

    # -- canned builders -----------------------------------------------------

    @staticmethod
    def full_mesh(
        num_dcs: int,
        servers_per_dc: int,
        wan_capacity: float,
        uplink: float,
        downlink: Optional[float] = None,
        dc_prefix: str = "dc",
    ) -> "Topology":
        """Fully meshed DC graph: the common inter-DC WAN abstraction.

        Mirrors the trace-driven simulation setups of §6.1.3 where every DC
        pair has a direct WAN path.
        """
        check_positive("num_dcs", num_dcs)
        check_positive("servers_per_dc", servers_per_dc)
        if downlink is None:
            downlink = uplink
        topo = Topology()
        names = [f"{dc_prefix}{i}" for i in range(num_dcs)]
        for name in names:
            topo.add_dc(name)
            for j in range(servers_per_dc):
                topo.add_server(f"{name}-s{j}", name, uplink, downlink)
        for a, b in itertools.combinations(names, 2):
            topo.add_bidirectional_link(a, b, wan_capacity)
        return topo

    @staticmethod
    def line(
        dc_names: Sequence[str],
        servers_per_dc: int,
        wan_capacity: float,
        uplink: float,
        downlink: Optional[float] = None,
    ) -> "Topology":
        """A chain of DCs (used by the Fig. 3 illustrative example)."""
        if downlink is None:
            downlink = uplink
        topo = Topology()
        for name in dc_names:
            topo.add_dc(name)
            for j in range(servers_per_dc):
                topo.add_server(f"{name}-s{j}", name, uplink, downlink)
        for a, b in zip(dc_names, dc_names[1:]):
            topo.add_bidirectional_link(a, b, wan_capacity)
        return topo

    @staticmethod
    def random_mesh(
        num_dcs: int,
        servers_per_dc: int,
        wan_capacity_range: Tuple[float, float],
        uplink_range: Tuple[float, float],
        seed: SeedLike = None,
        extra_edge_prob: float = 0.5,
        dc_prefix: str = "dc",
    ) -> "Topology":
        """A connected random DC graph with heterogeneous capacities.

        Builds a random spanning tree first (guaranteeing connectivity) and
        adds each remaining DC pair with probability ``extra_edge_prob``.
        Capacities are drawn uniformly from the given ranges, producing the
        capacity diversity that makes overlay paths bottleneck-disjoint
        (the phenomenon behind the paper's Fig. 4).
        """
        rng = make_rng(seed)
        topo = Topology()
        names = [f"{dc_prefix}{i}" for i in range(num_dcs)]
        for name in names:
            topo.add_dc(name)
            for j in range(servers_per_dc):
                up = float(rng.uniform(*uplink_range))
                topo.add_server(f"{name}-s{j}", name, up, up)
        # Random spanning tree: connect each new DC to a random earlier one.
        for i in range(1, num_dcs):
            j = int(rng.integers(0, i))
            cap = float(rng.uniform(*wan_capacity_range))
            topo.add_bidirectional_link(names[i], names[j], cap)
        for a, b in itertools.combinations(names, 2):
            if wan_key(a, b) in topo.links:
                continue
            if rng.random() < extra_edge_prob:
                cap = float(rng.uniform(*wan_capacity_range))
                topo.add_bidirectional_link(a, b, cap)
        return topo

"""Empirical distributions from the paper's workload study (§2.1).

The original seven-day Baidu trace (1265 multicasts across 30+ DCs) is
proprietary; the paper characterises it through three published artifacts,
all encoded here:

* **Table 1** — multicast's share of inter-DC traffic, overall and per
  application type;
* **Fig. 2a** — the CDF of the *fraction of DCs* each multicast targets
  ("90 % of multicast transfers are destined to at least 60 % of the DCs,
  and 70 % are destined to over 80 %");
* **Fig. 2b** — the CDF of transfer sizes ("for over 60 % of multicast
  transfers, the file sizes are over 1 TB (and 90 % are over 50 GB)").

Sampling uses inverse-transform over piecewise-linear CDFs through those
published anchor points.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Sequence, Tuple

from repro.utils.rng import SeedLike, make_rng
from repro.utils.units import GB, TB

# Table 1: share of each application's inter-DC traffic that is multicast,
# plus a relative traffic weight used when sampling an application mix.
APP_PROFILES: Dict[str, Dict[str, float]] = {
    "blog-articles": {"multicast_share": 0.910, "traffic_weight": 0.25},
    "search-indexing": {"multicast_share": 0.892, "traffic_weight": 0.30},
    "offline-file-sharing": {"multicast_share": 0.9818, "traffic_weight": 0.20},
    "forum-posts": {"multicast_share": 0.9808, "traffic_weight": 0.10},
    "db-syncups": {"multicast_share": 0.991, "traffic_weight": 0.15},
}

OVERALL_MULTICAST_SHARE = 0.9113  # Table 1, "All applications"


class PiecewiseLinearCDF:
    """A CDF defined by (value, probability) knots, linear between them.

    With ``log_space=True`` interpolation happens in log10(value), which is
    appropriate for heavy-tailed quantities like transfer sizes.
    """

    def __init__(
        self, knots: Sequence[Tuple[float, float]], log_space: bool = False
    ) -> None:
        if len(knots) < 2:
            raise ValueError("need at least two knots")
        xs = [x for x, _p in knots]
        ps = [p for _x, p in knots]
        if sorted(xs) != xs or sorted(ps) != ps:
            raise ValueError("knots must be sorted in both value and probability")
        if ps[0] != 0.0 or ps[-1] != 1.0:
            raise ValueError("knot probabilities must start at 0 and end at 1")
        if log_space and xs[0] <= 0:
            raise ValueError("log-space CDF needs positive values")
        self.log_space = log_space
        self._xs = [math.log10(x) for x in xs] if log_space else list(xs)
        self._ps = list(ps)
        self._raw_xs = list(xs)

    def cdf(self, value: float) -> float:
        """P(X <= value)."""
        x = math.log10(value) if self.log_space else value
        if x <= self._xs[0]:
            return 0.0
        if x >= self._xs[-1]:
            return 1.0
        hi = bisect.bisect_right(self._xs, x)
        lo = hi - 1
        x0, x1 = self._xs[lo], self._xs[hi]
        p0, p1 = self._ps[lo], self._ps[hi]
        if x1 == x0:
            return p1
        return p0 + (p1 - p0) * (x - x0) / (x1 - x0)

    def quantile(self, probability: float) -> float:
        """Inverse CDF: the value at the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        hi = bisect.bisect_left(self._ps, probability)
        if hi == 0:
            return self._raw_xs[0]
        if hi >= len(self._ps):
            return self._raw_xs[-1]
        lo = hi - 1
        p0, p1 = self._ps[lo], self._ps[hi]
        x0, x1 = self._xs[lo], self._xs[hi]
        if p1 == p0:
            x = x1
        else:
            x = x0 + (x1 - x0) * (probability - p0) / (p1 - p0)
        value = 10**x if self.log_space else x
        # The interpolation (and the 10**x round-trip in log space) can
        # overshoot the segment end by an ulp at probability == p1; a
        # quantile must stay within the knot domain.
        return min(max(value, self._raw_xs[0]), self._raw_xs[-1])

    def sample(self, seed: SeedLike = None) -> float:
        """One inverse-transform sample."""
        rng = make_rng(seed)
        return self.quantile(float(rng.uniform(0.0, 1.0)))


def destination_fraction_cdf() -> PiecewiseLinearCDF:
    """Fig. 2a: fraction of DCs a multicast targets.

    Anchors: F(0.60) = 0.10 (90 % target at least 60 % of DCs) and
    F(0.80) = 0.30 (70 % target more than 80 %); a short lower tail starts
    at 10 % of DCs (a multicast has at least a couple of destinations).
    """
    return PiecewiseLinearCDF(
        [(0.10, 0.0), (0.60, 0.10), (0.80, 0.30), (1.00, 1.0)]
    )


def transfer_size_cdf() -> PiecewiseLinearCDF:
    """Fig. 2b: multicast transfer sizes.

    Anchors: F(50 GB) = 0.10 (90 % of transfers exceed 50 GB) and
    F(1 TB) = 0.40 (60 % exceed 1 TB), with a 1 GB floor and a 100 TB tail
    consistent with the paper's "hundreds of TB" upper range.
    """
    return PiecewiseLinearCDF(
        [
            (1 * GB, 0.0),
            (50 * GB, 0.10),
            (1 * TB, 0.40),
            (10 * TB, 0.85),
            (100 * TB, 1.0),
        ],
        log_space=True,
    )


def sample_application(seed: SeedLike = None) -> str:
    """Sample an application type by traffic weight (Table 1 mix)."""
    rng = make_rng(seed)
    names = sorted(APP_PROFILES)
    weights = [APP_PROFILES[n]["traffic_weight"] for n in names]
    total = sum(weights)
    roll = float(rng.uniform(0.0, total))
    acc = 0.0
    for name, weight in zip(names, weights):
        acc += weight
        if roll <= acc:
            return name
    return names[-1]


def multicast_traffic_share(
    app_bytes: Dict[str, float], multicast_bytes: Dict[str, float]
) -> Dict[str, float]:
    """Per-application multicast share from byte totals (Table 1 layout)."""
    shares: Dict[str, float] = {}
    for app, total in app_bytes.items():
        if total <= 0:
            continue
        shares[app] = multicast_bytes.get(app, 0.0) / total
    all_total = sum(app_bytes.values())
    if all_total > 0:
        shares["all"] = sum(multicast_bytes.values()) / all_total
    return shares

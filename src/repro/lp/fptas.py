"""Fleischer-phase FPTAS for maximum multi-commodity flow.

The paper (§4.4) cites Fleischer's improved fully-polynomial-time
approximation schemes [17] to obtain an ε-optimal solution of the routing
LP in near real-time. This module implements that phase-based variant of
the Garg–Könemann multiplicative-weights scheme, specialised to *explicit
path sets* (BDS enumerates candidate overlay paths up-front, so the
shortest-path oracle reduces to an argmin over each commodity's path
list) and vectorized over the :class:`~repro.lp.incidence.PathIncidence`
arrays:

* **Phases, not global argmins.** Garg–Könemann's textbook loop finds the
  globally lightest path every iteration — an O(paths) Python scan. Fleischer
  showed it suffices to route along any path within ``(1+ε)`` of the global
  minimum, so the solve proceeds in phases with length threshold
  ``δ(1+ε)^k``: within a phase, each commodity is drained until its own
  lightest path crosses the threshold. The per-commodity oracle is a
  vectorized ``reduceat`` over the incidence arrays.
* **A lazy heap of per-commodity best lengths.** Resource lengths only
  grow, so a commodity's cached best-path length is a *lower bound* —
  commodities whose cached bound already exceeds the phase threshold are
  skipped without recomputation, and the heap re-validates entries only
  when popped. The oracle therefore re-evaluates only commodities whose
  paths were actually touched (their bound went stale below threshold).
* **Cross-cycle warm starts.** The solver can resume from a previous
  solve's final resource lengths and raw path flows
  (:class:`FPTASWarmState`) when the resource universe, capacities, and ε
  are unchanged — the common steady-state cycle where only demands moved.
  The carried lengths/flows pair is kept internally consistent (the prior
  δ and capacity normalization are pinned), so feasibility scaling still
  holds; optimality is enforced a posteriori: every warm solve computes
  the Garg–Könemann dual bound ``D/α`` from its final lengths and falls
  back to a cold solve unless the flow provably clears the ``(1−ε)³``
  guarantee. Identical inputs short-circuit to the cached solution
  verbatim, so warm and cold solves of the same instance are bit-identical.

Demand caps are handled by the standard reduction: each commodity gets a
private virtual resource of capacity ``demand`` appended to all its paths.

Guarantee: the returned flow is feasible and at least ``(1 - ε)³`` of the
optimum (we additionally re-clip numerically so feasibility is exact).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lp.incidence import PathIncidence
from repro.lp.mcf import Commodity
from repro.net.topology import ResourceKey
from repro.utils.validation import check_positive


@dataclass
class FPTASWarmState:
    """Carry-over solver state from one solve to the next.

    Valid to resume from only while ε, the resource universe (same keys,
    same interning order), and every capacity are unchanged — demands may
    move freely. ``delta`` and ``cap_scale`` are pinned from the original
    cold solve so the carried lengths/flows pair stays consistent with
    the multiplicative-weights invariant ``ℓ(r) = δ/c(r)·Π(1+ε·f/c(r))``.
    """

    epsilon: float
    delta: float
    cap_scale: float
    res_sig: Tuple[ResourceKey, ...]
    caps_scaled: np.ndarray
    lengths: np.ndarray  # final lengths of the real resources
    # commodity name -> {original path index: raw (unscaled) flow}
    flows: Dict[Hashable, Dict[int, float]]
    paths_by_name: Dict[Hashable, Tuple[Tuple[ResourceKey, ...], ...]]
    # per-name demand in *scaled* units (inf = uncapped) — the identical-
    # input fast path compares these to detect a verbatim repeat.
    demands_by_name: Dict[Hashable, float]
    # Cached outputs for the identical-input fast path.
    result_path_flows: Dict[Tuple[Hashable, int], float] = field(
        default_factory=dict
    )
    result_objective: float = 0.0
    result_dual_bound: float = math.inf


@dataclass
class FPTASResult:
    """Outcome of the approximation: flows, objective, and solve telemetry.

    ``warm_start`` is one of ``"cold"`` (no usable carry-over state),
    ``"warm"`` (resumed from a previous solve and certified), ``"reuse"``
    (identical input — cached solution returned verbatim), or
    ``"cold-fallback"`` (a warm attempt failed its optimality certificate
    and the instance was re-solved from scratch). ``dual_bound`` is the
    Garg–Könemann dual value ``D/α`` — a certified upper bound on the
    optimum, letting callers check the ε-guarantee without an exact LP.
    """

    objective: float
    path_flows: Dict[Tuple[Hashable, int], float]
    iterations: int
    epsilon: float
    phases: int = 0
    warm_start: str = "cold"
    dual_bound: float = math.inf
    warm_state: Optional[FPTASWarmState] = field(default=None, repr=False)


def _compute_cap_scale(
    commodities: Sequence[Commodity], capacities: Mapping[ResourceKey, float]
) -> float:
    """Unit normalization so the smallest positive capacity becomes 1.

    Garg–Könemann's initial length ``δ/c(e)`` must stay below 1 on every
    usable edge, and raw byte units mix 1e-6-byte demand remainders with
    1e9-byte/s links.
    """
    positive = [c for c in capacities.values() if c > 0]
    demands_positive = [
        c.demand for c in commodities if c.demand is not None and c.demand > 0
    ]
    scale = min(positive + demands_positive) if (positive or demands_positive) else 1.0
    return scale if scale > 0 else 1.0


class _Instance:
    """The extended (demand-reduced) instance in solver-internal units.

    Appends one virtual resource per demand-capped commodity to all of
    its usable paths via a single vectorized ``np.insert``, and
    precomputes the per-commodity segment views the phase oracle reduces
    over.
    """

    def __init__(
        self, inc: PathIncidence, cap_scale: float
    ) -> None:
        self.inc = inc
        self.cap_scale = cap_scale
        self.num_real = inc.num_resources
        caps_s = inc.caps / cap_scale
        with np.errstate(divide="ignore", invalid="ignore"):
            dem_s = inc.demands / cap_scale  # inf stays inf
        capped = np.isfinite(inc.demands)
        self.capped_cis = np.flatnonzero(capped)
        virt_of_ci = np.full(inc.num_commodities, -1, dtype=np.intp)
        virt_of_ci[self.capped_cis] = self.num_real + np.arange(
            len(self.capped_cis), dtype=np.intp
        )
        path_capped = capped[inc.path_commodity]
        ins_pos = (inc.path_starts + inc.path_lens)[path_capped]
        ins_val = virt_of_ci[inc.path_commodity[path_capped]]
        self.flat = np.insert(inc.flat_res, ins_pos, ins_val)
        self.lens = inc.path_lens + path_capped
        self.starts = np.zeros(len(self.lens), dtype=np.intp)
        if len(self.lens):
            np.cumsum(self.lens[:-1], out=self.starts[1:])
        self.caps = np.concatenate([caps_s, dem_s[self.capped_cis]])
        self.min_cap = np.minimum(
            inc.path_min_cap / cap_scale,
            np.where(path_capped, dem_s[inc.path_commodity], np.inf),
        )
        # Resources actually on a usable path (the dual-bound support).
        self.used_res = np.unique(self.flat) if len(self.flat) else self.flat
        # Per-commodity oracle segments: (first path id, flat slice view,
        # local reduceat offsets); None for commodities with no usable path.
        self.segments: List[Optional[Tuple[int, np.ndarray, np.ndarray]]] = []
        for ci in range(inc.num_commodities):
            lo, hi = inc.commodity_path_range[ci]
            if lo == hi:
                self.segments.append(None)
                continue
            flo = self.starts[lo]
            fhi = self.starts[hi - 1] + self.lens[hi - 1]
            self.segments.append(
                (lo, self.flat[flo:fhi], self.starts[lo:hi] - flo)
            )
        # Whether any path crosses the same resource twice: decides
        # between fast fancy-index length updates and np.multiply.at.
        self.any_dup = any(
            len(set(inc.flat_res[s : s + n].tolist())) != n
            for s, n in zip(inc.path_starts.tolist(), inc.path_lens.tolist())
        )

    def initial_lengths(self, delta: float) -> np.ndarray:
        positive = self.caps > 0
        lengths = np.zeros(len(self.caps), dtype=np.float64)
        lengths[positive] = delta / self.caps[positive]
        return lengths

    def path_lengths(self, lengths: np.ndarray) -> np.ndarray:
        return np.add.reduceat(lengths[self.flat], self.starts)


def _run_fleischer(
    ext: _Instance,
    epsilon: float,
    delta: float,
    lengths: np.ndarray,
    raw: np.ndarray,
    max_iterations: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """The phase loop: drains commodities below a rising length threshold.

    Mutates ``lengths``/``raw`` in place and returns them with the push
    and phase counts. Deterministic: the heap breaks length ties on the
    commodity index and each commodity drains its own exact argmin path.
    """
    m = len(ext.used_res)
    limit = max_iterations or int(
        10 * m * math.log(m + 2) / (epsilon**2) + 1000
    )
    one_plus = 1.0 + epsilon
    log_one_plus = math.log(one_plus)

    # Seed the lazy heap with each commodity's exact best length.
    heap: List[Tuple[float, int]] = []
    for ci, seg in enumerate(ext.segments):
        if seg is None:
            continue
        lo, seg_flat, local_starts = seg
        plens = np.add.reduceat(lengths[seg_flat], local_starts)
        best = float(plens.min())
        if best < 1.0:
            heap.append((best, ci))
    heapq.heapify(heap)

    iterations = 0
    phases = 0
    threshold = delta * one_plus
    while heap and iterations < limit:
        top = heap[0][0]
        if threshold <= top:
            # Fast-forward across empty phases: jump straight to the first
            # threshold above the (lower-bound) lightest commodity.
            k = math.floor(math.log(top / delta) / log_one_plus) + 1
            threshold = delta * one_plus**k
            while threshold <= top:  # float-rounding guard
                threshold *= one_plus
        t_cur = min(threshold, 1.0)
        phases += 1
        while heap and heap[0][0] < t_cur and iterations < limit:
            _cached, ci = heapq.heappop(heap)
            lo, seg_flat, local_starts = ext.segments[ci]
            plens = np.add.reduceat(lengths[seg_flat], local_starts)
            pl = int(np.argmin(plens))
            best = float(plens[pl])
            while best < t_cur and iterations < limit:
                pid = lo + pl
                bottleneck = ext.min_cap[pid]
                raw[pid] += bottleneck
                s = ext.starts[pid]
                idxs = ext.flat[s : s + ext.lens[pid]]
                factors = 1.0 + epsilon * bottleneck / ext.caps[idxs]
                if ext.any_dup:
                    np.multiply.at(lengths, idxs, factors)
                else:
                    lengths[idxs] *= factors
                iterations += 1
                plens = np.add.reduceat(lengths[seg_flat], local_starts)
                pl = int(np.argmin(plens))
                best = float(plens[pl])
            if best < 1.0:
                heapq.heappush(heap, (best, ci))
    return lengths, raw, iterations, phases


def _finalize(
    ext: _Instance,
    epsilon: float,
    delta: float,
    lengths: np.ndarray,
    raw: np.ndarray,
) -> Tuple[Dict[Tuple[Hashable, int], float], np.ndarray, float]:
    """Scale to feasibility, re-clip numerically, compute the dual bound."""
    scale = math.log((1.0 + epsilon) / delta) / math.log(1.0 + epsilon)
    flows = raw / scale

    # Numerical re-clip: uniform shrink per oversubscribed resource.
    usage = np.bincount(
        ext.flat, weights=np.repeat(flows, ext.lens), minlength=len(ext.caps)
    )
    over = (usage > ext.caps) & (ext.caps > 0)
    if over.any():
        shrink = np.ones(len(ext.caps), dtype=np.float64)
        shrink[over] = ext.caps[over] / usage[over]
        flows = flows * np.minimum.reduceat(shrink[ext.flat], ext.starts)

    # Garg–Könemann dual certificate: lengths normalized by the lightest
    # path are a feasible dual, so D/α bounds the optimum from above.
    all_plens = ext.path_lengths(lengths)
    alpha = float(all_plens.min())
    dual = float(
        np.dot(lengths[ext.used_res], ext.caps[ext.used_res])
    )
    dual_bound = (dual / alpha) * ext.cap_scale if alpha > 0 else math.inf

    path_flows = ext.inc.flows_to_path_map(flows, scale=ext.cap_scale)
    return path_flows, flows, dual_bound


def _build_warm_state(
    ext: _Instance,
    epsilon: float,
    delta: float,
    lengths: np.ndarray,
    raw: np.ndarray,
    path_flows: Dict[Tuple[Hashable, int], float],
    objective: float,
    dual_bound: float,
) -> Optional[FPTASWarmState]:
    inc = ext.inc
    names = [c.name for c in inc.commodities]
    if len(set(names)) != len(names):
        return None  # ambiguous carry-over targets; skip warm state
    flows_by_name: Dict[Hashable, Dict[int, float]] = {}
    for pid in np.flatnonzero(raw > 0.0):
        ci = int(inc.path_commodity[pid])
        flows_by_name.setdefault(names[ci], {})[
            int(inc.path_orig_index[pid])
        ] = float(raw[pid])
    with np.errstate(divide="ignore", invalid="ignore"):
        dem_s = inc.demands / ext.cap_scale
    return FPTASWarmState(
        epsilon=epsilon,
        delta=delta,
        cap_scale=ext.cap_scale,
        res_sig=inc.resource_signature(),
        caps_scaled=(inc.caps / ext.cap_scale).copy(),
        lengths=lengths[: ext.num_real].copy(),
        flows=flows_by_name,
        paths_by_name={c.name: c.paths for c in inc.commodities},
        demands_by_name={
            c.name: float(dem_s[ci]) for ci, c in enumerate(inc.commodities)
        },
        result_path_flows=dict(path_flows),
        result_objective=objective,
        result_dual_bound=dual_bound,
    )


def _warm_compatible(
    warm: FPTASWarmState, inc: PathIncidence, epsilon: float
) -> bool:
    """Same ε, same resource universe, same capacities — demands free."""
    if warm.epsilon != epsilon:
        return False
    if warm.res_sig != inc.resource_signature():
        return False
    return bool(np.array_equal(warm.caps_scaled, inc.caps / warm.cap_scale))


def _is_identical_input(warm: FPTASWarmState, inc: PathIncidence) -> bool:
    """Verbatim repeat of the previous instance (demands included)?"""
    if len(warm.paths_by_name) != inc.num_commodities:
        return False
    with np.errstate(divide="ignore", invalid="ignore"):
        dem_s = inc.demands / warm.cap_scale
    for ci, commodity in enumerate(inc.commodities):
        if warm.paths_by_name.get(commodity.name) != commodity.paths:
            return False
        if warm.demands_by_name.get(commodity.name) != float(dem_s[ci]):
            return False
    return True


def _carried_raw(warm: FPTASWarmState, inc: PathIncidence) -> np.ndarray:
    """Map the previous solve's raw flows onto the current usable paths."""
    raw = np.zeros(inc.num_paths, dtype=np.float64)
    for ci, commodity in enumerate(inc.commodities):
        prev = warm.flows.get(commodity.name)
        if not prev:
            continue
        if warm.paths_by_name.get(commodity.name) != commodity.paths:
            continue  # candidate set changed; start this commodity fresh
        lo, hi = inc.commodity_path_range[ci]
        for pid in range(lo, hi):
            raw[pid] = prev.get(int(inc.path_orig_index[pid]), 0.0)
    return raw


def max_multicommodity_flow(
    commodities: Sequence[Commodity],
    capacities: Mapping[ResourceKey, float],
    epsilon: float = 0.1,
    max_iterations: Optional[int] = None,
    warm: Optional[FPTASWarmState] = None,
    incidence: Optional[PathIncidence] = None,
) -> FPTASResult:
    """ε-approximate maximum total multicommodity flow over explicit paths.

    ``warm`` resumes from a previous solve's :attr:`FPTASResult.warm_state`
    when compatible (see :class:`FPTASWarmState`); incompatible or
    uncertifiable warm state silently degrades to a cold solve, so the
    ``(1−ε)³`` guarantee holds unconditionally. ``incidence`` supplies a
    pre-built :class:`~repro.lp.incidence.PathIncidence` (the router
    shares one across backends); when omitted one is compiled here, with
    strict unknown-resource checking.
    """
    check_positive("epsilon", epsilon)
    if epsilon >= 1:
        raise ValueError("epsilon must be < 1")
    if not commodities:
        raise ValueError("need at least one commodity")
    inc = incidence
    if inc is None:
        inc = PathIncidence.build(commodities, capacities, strict=True)

    if inc.num_paths == 0:
        return FPTASResult(
            objective=0.0,
            path_flows={},
            iterations=0,
            epsilon=epsilon,
            dual_bound=0.0,
        )

    warm_ok = warm is not None and _warm_compatible(warm, inc, epsilon)
    if warm_ok and _is_identical_input(warm, inc):
        # Bit-identical fast path: same instance, same answer.
        return FPTASResult(
            objective=warm.result_objective,
            path_flows=dict(warm.result_path_flows),
            iterations=0,
            epsilon=epsilon,
            phases=0,
            warm_start="reuse",
            dual_bound=warm.result_dual_bound,
            warm_state=warm,
        )

    attempts: List[str] = []
    if warm_ok:
        attempts.append("warm")
    attempts.append("cold")

    for mode in attempts:
        if mode == "warm":
            cap_scale = warm.cap_scale
            delta = warm.delta
            ext = _Instance(inc, cap_scale)
            lengths = ext.initial_lengths(delta)
            lengths[: ext.num_real] = warm.lengths
            raw = _carried_raw(warm, inc)
        else:
            cap_scale = _compute_cap_scale(commodities, capacities)
            ext = _Instance(inc, cap_scale)
            m = len(ext.used_res)
            delta = (1 + epsilon) * ((1 + epsilon) * m) ** (-1.0 / epsilon)
            lengths = ext.initial_lengths(delta)
            raw = np.zeros(inc.num_paths, dtype=np.float64)

        lengths, raw, iterations, phases = _run_fleischer(
            ext, epsilon, delta, lengths, raw, max_iterations
        )
        path_flows, flows, dual_bound = _finalize(
            ext, epsilon, delta, lengths, raw
        )
        objective = sum(path_flows.values())

        if mode == "warm":
            # A-posteriori optimality certificate: accept the warm solve
            # only if its flow provably clears the (1−ε)³ guarantee
            # against its own dual bound; otherwise re-solve cold.
            guarantee = (1.0 - epsilon) ** 3 * dual_bound
            if not (objective >= guarantee * (1.0 - 1e-9)):
                continue
            label = "warm"
        else:
            label = "cold" if len(attempts) == 1 else "cold-fallback"

        state = _build_warm_state(
            ext, epsilon, delta, lengths, raw, path_flows, objective, dual_bound
        )
        return FPTASResult(
            objective=objective,
            path_flows=path_flows,
            iterations=iterations,
            epsilon=epsilon,
            phases=phases,
            warm_start=label,
            dual_bound=dual_bound,
            warm_state=state,
        )
    raise AssertionError("unreachable: cold mode always returns")

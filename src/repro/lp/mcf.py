"""Path-based maximum multi-commodity flow (MCF).

BDS's routing step (§4.4) is "essentially an integer MCF problem", made
tractable by (a) the fractional relaxation over explicit candidate paths and
(b) an FPTAS. This module defines the problem container and its exact-LP
solution; :mod:`repro.lp.fptas` provides the ε-approximate fast path.

A *commodity* is a merged block group (same source/destination server pair
after §5.1 blocks merging) with an explicit set of candidate overlay paths,
each path being the tuple of resources it consumes, and a demand cap (the
bytes/second the group can still usefully absorb this cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.lp.model import LinearProgram
from repro.net.topology import ResourceKey


@dataclass(frozen=True)
class Commodity:
    """One flow demand with explicit candidate paths.

    ``paths`` lists each candidate as a tuple of resource keys; ``demand``
    caps the commodity's total rate (``None`` means unbounded, limited only
    by capacities).
    """

    name: Hashable
    paths: Tuple[Tuple[ResourceKey, ...], ...]
    demand: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError(f"commodity {self.name!r} has no candidate paths")
        if any(not p for p in self.paths):
            raise ValueError(f"commodity {self.name!r} has an empty path")
        if self.demand is not None and self.demand < 0:
            raise ValueError("demand must be >= 0 or None")


@dataclass
class MCFResult:
    """Solution of a max-MCF instance.

    ``path_flows[(commodity_name, path_index)]`` is the rate on that path;
    ``objective`` is the total rate across all commodities.
    """

    objective: float
    path_flows: Dict[Tuple[Hashable, int], float]

    def commodity_flow(self, name: Hashable) -> float:
        """Total allocated rate of one commodity."""
        return sum(
            rate for (cname, _i), rate in self.path_flows.items() if cname == name
        )

    def resource_usage(
        self, commodities: Sequence[Commodity]
    ) -> Dict[ResourceKey, float]:
        """Aggregate usage per resource implied by the path flows."""
        by_name = {c.name: c for c in commodities}
        usage: Dict[ResourceKey, float] = {}
        for (cname, pi), rate in self.path_flows.items():
            for res in by_name[cname].paths[pi]:
                usage[res] = usage.get(res, 0.0) + rate
        return usage


class PathMCF:
    """A max-throughput MCF instance over explicit paths.

    Objective (paper Eq. 5): maximize total flow. Constraints: per-resource
    capacity (Eq. 1 & 2 collapsed onto the resource set of each path) and
    per-commodity demand (the per-cycle volume bound of Eq. 3).

    On construction the instance is compiled once into a
    :class:`~repro.lp.incidence.PathIncidence`; the exact LP and the
    FPTAS both solve over those shared arrays.
    """

    def __init__(
        self,
        commodities: Sequence[Commodity],
        capacities: Mapping[ResourceKey, float],
    ) -> None:
        if not commodities:
            raise ValueError("need at least one commodity")
        self.commodities = list(commodities)
        self.capacities = dict(capacities)
        for commodity in self.commodities:
            for path in commodity.paths:
                for res in path:
                    if res not in self.capacities:
                        raise KeyError(
                            f"path of {commodity.name!r} uses unknown resource {res!r}"
                        )
        from repro.lp.incidence import PathIncidence

        self.incidence = PathIncidence.build(
            self.commodities, self.capacities, strict=True
        )

    def solve_lp(self) -> MCFResult:
        """Exact solution via the dense LP (the Fig. 13a 'standard' route)."""
        return solve_lp_incidence(self.incidence)

    def solve_fptas(self, epsilon: float = 0.1, warm=None) -> MCFResult:
        """ε-approximate solution via Fleischer's FPTAS (the BDS fast path).

        ``warm`` forwards a previous solve's
        :class:`~repro.lp.fptas.FPTASWarmState`; see
        :func:`~repro.lp.fptas.max_multicommodity_flow`.
        """
        from repro.lp.fptas import max_multicommodity_flow

        result = max_multicommodity_flow(
            self.commodities,
            self.capacities,
            epsilon=epsilon,
            warm=warm,
            incidence=self.incidence,
        )
        return MCFResult(objective=result.objective, path_flows=result.path_flows)


def solve_lp_incidence(incidence) -> MCFResult:
    """Exact max-MCF over a pre-built incidence structure.

    Builds one variable per *usable* path (paths through zero-capacity
    resources and zero-demand commodities can never carry flow, so their
    variables are elided — the optimum is unchanged), one capacity row per
    resource, and one demand row per capped commodity.
    """
    inc = incidence
    if inc.num_paths == 0:
        return MCFResult(objective=0.0, path_flows={})
    lp = LinearProgram(maximize=True)
    var_names: List[str] = []
    for pid in range(inc.num_paths):
        ci = int(inc.path_commodity[pid])
        name = f"f_{ci}_{int(inc.path_orig_index[pid])}"
        var_names.append(name)
        lp.add_variable(name, lower=0.0, objective=1.0)

    # Per-resource capacity constraints, in resource interning order.
    by_resource: Dict[int, Dict[str, float]] = {}
    for pid in range(inc.num_paths):
        for ri in set(inc.path_resources(pid).tolist()):
            by_resource.setdefault(ri, {})[var_names[pid]] = 1.0
    for ri in sorted(by_resource):
        lp.add_constraint(by_resource[ri], "<=", float(inc.caps[ri]))

    # Per-commodity demand caps over the commodity's usable paths.
    for ci in range(inc.num_commodities):
        demand = inc.demands[ci]
        lo, hi = inc.commodity_path_range[ci]
        if not (demand < float("inf")) or lo == hi:
            continue
        lp.add_constraint(
            {var_names[pid]: 1.0 for pid in range(lo, hi)}, "<=", float(demand)
        )

    solution = lp.solve()
    flows: Dict[Tuple[Hashable, int], float] = {}
    for pid, name in enumerate(var_names):
        rate = solution.values[name]
        if rate > 1e-12:
            ci = int(inc.path_commodity[pid])
            key = (inc.commodities[ci].name, int(inc.path_orig_index[pid]))
            flows[key] = flows.get(key, 0.0) + rate
    return MCFResult(objective=solution.objective, path_flows=flows)

"""Multicast jobs: one bulk file replicated from a source DC to many DCs.

A job owns its blocks and the *striping* of those blocks across servers:

* in the **source DC** the file starts evenly spread over the DC's servers
  (exactly the Fig. 5 setup: "this 30GB file was evenly stored across all
  these 640 servers");
* in each **destination DC** every block has an assigned destination server,
  and the DC holds a full copy once all assigned servers received their
  shards.

Optional *relay DCs* may store blocks opportunistically without counting
toward completion, enabling Type I overlay paths through non-destination
DCs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.overlay.blocks import Block, DEFAULT_BLOCK_SIZE, split_into_blocks
from repro.net.topology import Topology
from repro.utils.validation import check_non_negative, check_positive

BlockId = Tuple[str, int]


@dataclass
class MulticastJob:
    """An inter-DC multicast transfer request.

    Parameters mirror the BDS API described in §5.4: source DC, destination
    DCs, data size (a pointer to bulk data in production; a byte count
    here), and a start time.
    """

    job_id: str
    src_dc: str
    dst_dcs: Tuple[str, ...]
    total_bytes: float
    block_size: float = DEFAULT_BLOCK_SIZE
    arrival_time: float = 0.0
    relay_dcs: Tuple[str, ...] = ()
    # Scheduling priority: higher values are served before lower ones when
    # jobs contend for the same links (0 = default bulk priority).
    priority: int = 0
    # Per-job control granularity (§5.4 API): a job may request a coarser
    # decision cadence than the simulation's ΔT. Must be a positive
    # multiple of ``SimConfig.cycle_seconds``; ``None`` inherits ΔT. The
    # simulator quantizes the job's arrival up to its own cadence so all
    # completion-time math stays on the global integer cycle grid.
    cycle_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive("total_bytes", self.total_bytes)
        check_positive("block_size", self.block_size)
        check_non_negative("arrival_time", self.arrival_time)
        if self.cycle_seconds is not None:
            check_positive("cycle_seconds", self.cycle_seconds)
        self.dst_dcs = tuple(self.dst_dcs)
        self.relay_dcs = tuple(self.relay_dcs)
        if not self.dst_dcs:
            raise ValueError("a multicast job needs at least one destination DC")
        if self.src_dc in self.dst_dcs:
            raise ValueError("source DC cannot also be a destination")
        overlap = set(self.relay_dcs) & ({self.src_dc} | set(self.dst_dcs))
        if overlap:
            raise ValueError(f"relay DCs overlap endpoints: {sorted(overlap)}")
        self.blocks: List[Block] = split_into_blocks(
            self.job_id, self.total_bytes, self.block_size
        )
        self._assignment: Dict[Tuple[str, BlockId], str] = {}

    # -- striping ----------------------------------------------------------

    def bind(self, topology: Topology) -> None:
        """Compute block-to-server striping for every involved DC.

        Must be called once before the job enters a simulation. Striping is
        round-robin by block index, the layout used by Baidu's setup in the
        paper's measurement study.
        """
        for dc in (self.src_dc,) + self.dst_dcs + self.relay_dcs:
            servers = topology.servers_in(dc)
            if not servers:
                raise ValueError(f"DC {dc!r} has no servers")
            for block in self.blocks:
                server = servers[block.index % len(servers)]
                self._assignment[(dc, block.block_id)] = server.server_id

    def is_bound(self) -> bool:
        return bool(self._assignment)

    def assigned_server(self, dc: str, block_id: BlockId) -> str:
        """The server in ``dc`` that block ``block_id`` is striped onto."""
        try:
            return self._assignment[(dc, block_id)]
        except KeyError:
            if not self._assignment:
                raise RuntimeError(
                    f"job {self.job_id!r} not bound to a topology; call bind()"
                ) from None
            raise

    def initial_placement(self) -> Dict[str, List[Block]]:
        """Blocks initially present on each source-DC server."""
        if not self._assignment:
            raise RuntimeError(f"job {self.job_id!r} not bound; call bind() first")
        placement: Dict[str, List[Block]] = {}
        for block in self.blocks:
            server = self.assigned_server(self.src_dc, block.block_id)
            placement.setdefault(server, []).append(block)
        return placement

    def destination_servers(self, dc: str) -> Dict[str, List[Block]]:
        """Shard map for one destination (or relay) DC: server -> blocks."""
        shard: Dict[str, List[Block]] = {}
        for block in self.blocks:
            server = self.assigned_server(dc, block.block_id)
            shard.setdefault(server, []).append(block)
        return shard

    # -- bookkeeping ---------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def block_by_id(self, block_id: BlockId) -> Block:
        job_id, index = block_id
        if job_id != self.job_id or not 0 <= index < len(self.blocks):
            raise KeyError(f"block {block_id!r} not in job {self.job_id!r}")
        return self.blocks[index]

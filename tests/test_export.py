"""JSON export of simulation results."""

import json

import pytest

from repro.analysis.export import (
    EXPORT_FORMAT_VERSION,
    load_result_dict,
    result_to_dict,
    save_result,
)
from repro.cli import main
from repro.core import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


@pytest.fixture
def result():
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j", src_dc="dc0", dst_dcs=("dc1", "dc2"),
        total_bytes=20 * MB, block_size=4 * MB,
    )
    job.bind(topo)
    return Simulation(
        topo, [job], BDSController(seed=0),
        SimConfig(record_link_stats=True), seed=0,
    ).run()


class TestResultToDict:
    def test_core_fields_present(self, result):
        payload = result_to_dict(result)
        assert payload["format_version"] == EXPORT_FORMAT_VERSION
        assert payload["all_complete"] is True
        assert payload["job_completion"]["j"] == result.completion_time("j")
        assert payload["total_bytes_transferred"] > 0

    def test_keys_are_flattened(self, result):
        payload = result_to_dict(result)
        assert "j/dc1" in payload["dc_completion"]
        assert any(k.startswith("j/dc1-") for k in payload["server_completion"])

    def test_cycles_optional(self, result):
        with_cycles = result_to_dict(result, include_cycles=True)
        without = result_to_dict(result, include_cycles=False)
        assert "cycles" in with_cycles
        assert "cycles" not in without

    def test_cycle_entries_serializable(self, result):
        payload = result_to_dict(result)
        text = json.dumps(payload)  # must not raise
        assert "wan:dc0:dc1" in text

    def test_payload_is_json_roundtrippable(self, result):
        payload = result_to_dict(result)
        assert json.loads(json.dumps(payload)) == payload


class TestSaveLoad:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        loaded = load_result_dict(path)
        assert loaded["job_completion"]["j"] == result.completion_time("j")

    def test_version_check(self, result, tmp_path):
        path = tmp_path / "run.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format version"):
            load_result_dict(path)


class TestCliExport:
    def test_simulate_json_flag(self, tmp_path, capsys):
        out = tmp_path / "cli.json"
        code = main(
            [
                "simulate",
                "--num-dcs", "3",
                "--size", "20MB",
                "--block-size", "4MB",
                "--json", str(out),
            ]
        )
        assert code == 0
        loaded = load_result_dict(out)
        assert loaded["all_complete"] is True


class TestShardingTelemetryRoundTrip:
    """Format v7/v8: per-cycle sharding telemetry survives the round-trip."""

    def _sharded_result(self):
        from repro.core import BDSConfig

        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
        )
        jobs = []
        for j in range(3):
            src = f"dc{j}"
            job = MulticastJob(
                job_id=f"j{j}",
                src_dc=src,
                dst_dcs=tuple(f"dc{i}" for i in range(3) if f"dc{i}" != src),
                total_bytes=20 * MB,
                block_size=4 * MB,
            )
            job.bind(topo)
            jobs.append(job)
        return Simulation(
            topo,
            jobs,
            BDSController(BDSConfig(shards=2), seed=0),
            SimConfig(),
            seed=0,
        ).run()

    def test_sharding_subdict_exported(self):
        payload = result_to_dict(self._sharded_result())
        assert payload["format_version"] == EXPORT_FORMAT_VERSION
        sharded = [
            c for c in payload["cycles"] if c["sharding"]["shard_count"]
        ]
        assert sharded, "sharded run must export shard telemetry"
        for entry in sharded:
            s = entry["sharding"]
            assert s["shard_count"] == 2
            assert s["shard_max"] >= s["shard_mean"] >= 0.0
            assert s["reconcile"] >= 0.0
            # v8: shard-local state telemetry.
            assert s["stride"] == 1
            assert s["state_bytes"] > 0
            assert s["candidate_bytes"] > 0
            assert s["payload_bytes"] >= 0

    def test_round_trip_preserves_shard_fields(self, tmp_path):
        from repro.analysis.export import load_result

        result = self._sharded_result()
        path = tmp_path / "sharded.json"
        save_result(result, path)
        restored = load_result(path)
        for live, back in zip(result.cycle_stats, restored.cycle_stats):
            assert back.shard_count == live.shard_count
            assert back.time_shard_max == live.time_shard_max
            assert back.time_shard_mean == live.time_shard_mean
            assert back.time_reconcile == live.time_reconcile
            assert back.shard_stride == live.shard_stride
            assert back.shard_state_bytes == live.shard_state_bytes
            assert back.shard_candidate_bytes == live.shard_candidate_bytes
            assert back.shard_payload_bytes == live.shard_payload_bytes

    def test_v6_payload_still_readable(self, result, tmp_path):
        from repro.analysis.export import load_result

        path = tmp_path / "old.json"
        save_result(result, path)
        with open(path) as handle:
            payload = json.load(handle)
        payload["format_version"] = 6
        for entry in payload.get("cycles", []):
            entry.pop("sharding", None)
        with open(path, "w") as handle:
            json.dump(payload, handle)
        restored = load_result(path)
        assert all(s.shard_count == 0 for s in restored.cycle_stats)
        assert restored.job_completion == result.job_completion

"""Golden determinism regression: same seed => bit-identical results.

The incremental cycle-state engine memoizes and mutates per-cycle state;
any accidental dependence on set-iteration order or cache warm-up would
show up here as a diff between two runs of the same scenario, or between
the incremental engine and the legacy full-scan path it replaced.

The scenario is the Fig. 9 BDS-vs-Gingko shape scaled down: one source
DC multicasting to several destinations over a full mesh, run with both
strategies, with and without mid-run failures.
"""

from __future__ import annotations

import pytest

from repro.analysis.runner import make_strategy
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps

SEED = 90  # the Fig. 9 headline seed


def _run(
    strategy_name: str,
    incremental: bool,
    with_failures: bool = False,
    vectorized: bool = True,
) -> SimResult:
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
    )
    job = MulticastJob(
        job_id="fig9",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 5)),
        total_bytes=64 * MB,
        block_size=4 * MB,
    )
    job.bind(topo)
    failures = None
    if with_failures:
        failures = FailureSchedule(
            [
                FailureEvent(cycle=1, kind="agent_fail", target="dc1-s0"),
                FailureEvent(cycle=2, kind="link_fail", target=("dc0", "dc2")),
                FailureEvent(cycle=4, kind="agent_recover", target="dc1-s0"),
                FailureEvent(cycle=5, kind="link_recover", target=("dc0", "dc2")),
            ]
        )
    sim = Simulation(
        topology=topo,
        jobs=[job],
        strategy=make_strategy(strategy_name, seed=SEED),
        config=SimConfig(
            incremental_engine=incremental, vectorized_store=vectorized
        ),
        failures=failures,
        seed=SEED,
    )
    return sim.run()


def _fingerprint(result: SimResult):
    return (
        result.job_completion,
        result.dc_completion,
        result.server_completion,
        result.blocks_per_cycle(),
        [s.bytes_transferred for s in result.cycle_stats],
    )


class TestGoldenDeterminism:
    @pytest.mark.parametrize("strategy", ["bds", "gingko"])
    @pytest.mark.parametrize("incremental", [True, False])
    def test_same_seed_same_result(self, strategy, incremental):
        first = _run(strategy, incremental)
        second = _run(strategy, incremental)
        assert first.all_complete
        assert _fingerprint(first) == _fingerprint(second)

    @pytest.mark.parametrize("strategy", ["bds", "gingko"])
    def test_incremental_matches_legacy(self, strategy):
        incremental = _run(strategy, incremental=True)
        legacy = _run(strategy, incremental=False)
        assert incremental.all_complete
        assert _fingerprint(incremental) == _fingerprint(legacy)

    @pytest.mark.parametrize("strategy", ["bds", "gingko"])
    def test_incremental_matches_legacy_under_failures(self, strategy):
        incremental = _run(strategy, incremental=True, with_failures=True)
        legacy = _run(strategy, incremental=False, with_failures=True)
        assert _fingerprint(incremental) == _fingerprint(legacy)

    def test_repeated_runs_with_failures_identical(self):
        first = _run("bds", incremental=True, with_failures=True)
        second = _run("bds", incremental=True, with_failures=True)
        assert _fingerprint(first) == _fingerprint(second)


class TestArrayNativeDeterminism:
    """The array-native control plane must be bit-identical to the
    dict-of-sets store + scalar scheduler/router it replaced."""

    @pytest.mark.parametrize("strategy", ["bds", "gingko"])
    def test_vectorized_matches_scalar(self, strategy):
        vectorized = _run(strategy, incremental=True, vectorized=True)
        scalar = _run(strategy, incremental=True, vectorized=False)
        assert vectorized.all_complete
        assert _fingerprint(vectorized) == _fingerprint(scalar)

    @pytest.mark.parametrize("strategy", ["bds", "gingko"])
    def test_vectorized_matches_scalar_under_failures(self, strategy):
        vectorized = _run(
            strategy, incremental=True, with_failures=True, vectorized=True
        )
        scalar = _run(
            strategy, incremental=True, with_failures=True, vectorized=False
        )
        assert _fingerprint(vectorized) == _fingerprint(scalar)

    def test_vectorized_matches_legacy_engine(self):
        # Cross axis: array-native + incremental vs neither.
        vectorized = _run("bds", incremental=True, vectorized=True)
        legacy = _run("bds", incremental=False, vectorized=False)
        assert _fingerprint(vectorized) == _fingerprint(legacy)


# ---------------------------------------------------------------------------
# Parallel engine parity: workers=4 must be bit-identical to workers=1
# ---------------------------------------------------------------------------


def _parity_topology() -> Topology:
    return Topology.full_mesh(
        num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
    )


def _parity_jobs(topo: Topology, size=64 * MB):
    job = MulticastJob(
        job_id="fig9",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 5)),
        total_bytes=size,
        block_size=4 * MB,
    )
    job.bind(topo)
    return [job]


class TestParallelParity:
    """Every run owns a fresh topology/jobs/seed, so fanning the batch out
    over a process pool must not change a single bit of any result."""

    def test_compare_strategies_parallel_matches_serial(self):
        from repro.analysis.runner import compare_strategies

        names = ("bds", "gingko", "direct")
        serial = compare_strategies(
            _parity_topology, _parity_jobs, names, seed=SEED
        )
        parallel = compare_strategies(
            _parity_topology, _parity_jobs, names, seed=SEED, workers=4
        )
        for name in names:
            assert serial[name].fingerprint() == parallel[name].fingerprint()
            assert _fingerprint(serial[name]) == _fingerprint(parallel[name])

    def test_sweep_parallel_matches_serial(self):
        from repro.analysis.sweeps import sweep

        def scenario(size_mb: float):
            topo = _parity_topology()
            return topo, _parity_jobs(topo, size=size_mb * MB)

        serial = sweep("size", [32, 48, 64], scenario, seed=SEED)
        parallel = sweep("size", [32, 48, 64], scenario, seed=SEED, workers=4)
        assert serial.completion_times() == parallel.completion_times()
        assert [p.cycles for p in serial.points] == [
            p.cycles for p in parallel.points
        ]

    def test_run_many_parallel_matches_serial(self):
        from repro.analysis.parallel import RunSpec, run_many

        def scenario():
            topo = _parity_topology()
            return topo, _parity_jobs(topo)

        def specs():
            return [
                RunSpec(strategy=name, seed=SEED, scenario=scenario)
                for name in ("bds", "gingko", "bullet", "direct")
            ]

        serial = run_many(specs(), workers=1)
        parallel = run_many(specs(), workers=4)
        assert [o.result.fingerprint() for o in serial] == [
            o.result.fingerprint() for o in parallel
        ]

# ---------------------------------------------------------------------------
# Sharded control plane parity: shards=1 is bit-identical to the default
# controller; shards=k is deterministic on both engines
# ---------------------------------------------------------------------------


def _run_sharded(shards: int, event: bool, stride: int = 1) -> SimResult:
    from repro.core.config import BDSConfig
    from repro.core.controller import BDSController

    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
    )
    jobs = []
    for j in range(4):
        src = f"dc{j}"
        job = MulticastJob(
            job_id=f"golden{j}",
            src_dc=src,
            dst_dcs=tuple(f"dc{i}" for i in range(5) if f"dc{i}" != src),
            total_bytes=48 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        jobs.append(job)
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=BDSController(
            BDSConfig(shards=shards, shard_stride=stride)
        ),
        config=SimConfig(event_engine=event),
        seed=SEED,
    )
    return sim.run()


class TestShardedGoldenDeterminism:
    @pytest.mark.parametrize("event", [False, True])
    def test_single_shard_matches_default_controller(self, event):
        sharded_off = _run_sharded(1, event=event)
        # Same scenario through the default (config-less) controller:
        from repro.core.controller import BDSController

        topo = Topology.full_mesh(
            num_dcs=5,
            servers_per_dc=4,
            wan_capacity=500 * MBps,
            uplink=25 * MBps,
        )
        jobs = []
        for j in range(4):
            src = f"dc{j}"
            job = MulticastJob(
                job_id=f"golden{j}",
                src_dc=src,
                dst_dcs=tuple(f"dc{i}" for i in range(5) if f"dc{i}" != src),
                total_bytes=48 * MB,
                block_size=4 * MB,
            )
            job.bind(topo)
            jobs.append(job)
        baseline = Simulation(
            topology=topo,
            jobs=jobs,
            strategy=BDSController(),
            config=SimConfig(event_engine=event),
            seed=SEED,
        ).run()
        assert sharded_off.all_complete
        assert _fingerprint(sharded_off) == _fingerprint(baseline)

    @pytest.mark.parametrize("shards", [2, 4])
    @pytest.mark.parametrize("event", [False, True])
    def test_sharded_repeat_identical(self, shards, event):
        first = _run_sharded(shards, event=event)
        second = _run_sharded(shards, event=event)
        assert first.all_complete
        assert _fingerprint(first) == _fingerprint(second)

    def test_sharded_stride_engines_agree(self):
        tick = _run_sharded(4, event=False, stride=2)
        ev = _run_sharded(4, event=True, stride=2)
        assert tick.all_complete
        assert _fingerprint(tick) == _fingerprint(ev)

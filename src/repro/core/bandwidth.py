"""Dynamic bandwidth separation (§5.2, Figs. 6 & 10).

The Network Monitor measures the aggregated bandwidth of latency-sensitive
flows on every link; the controller then hands bulk transfers only the
*residual* below the safety threshold (80 % of link capacity by default)
and splits that budget across transfers. Compared to static priorities,
this adapts to online-traffic dynamics without wasting bandwidth.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.net.background import BackgroundTraffic
from repro.net.topology import ResourceKey, Topology
from repro.utils.validation import check_fraction, check_non_negative, check_positive


def residual_budget(
    capacity: float, online_usage: float, threshold: float = 0.8
) -> float:
    """Bandwidth available to bulk traffic on one link.

    ``max(0, threshold × capacity − online)``: bulk may use what remains
    under the safety threshold after latency-sensitive traffic is served.
    """
    check_positive("capacity", capacity)
    check_non_negative("online_usage", online_usage)
    check_fraction("threshold", threshold)
    return max(0.0, threshold * capacity - online_usage)


def residual_budgets(
    capacities: np.ndarray, online_usage: np.ndarray, threshold: float = 0.8
) -> np.ndarray:
    """Vectorized :func:`residual_budget` over parallel link arrays.

    One validation pass up front, then a single elementwise
    ``max(0, threshold × capacity − online)`` — the same two-operand IEEE
    operations per link as the scalar helper, so the values are
    bit-identical to calling it in a loop.
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    online_usage = np.asarray(online_usage, dtype=np.float64)
    check_fraction("threshold", threshold)
    if capacities.size and float(capacities.min()) <= 0:
        check_positive("capacity", float(capacities.min()))
    if online_usage.size and float(online_usage.min()) < 0:
        check_non_negative("online_usage", float(online_usage.min()))
    return np.maximum(0.0, threshold * capacities - online_usage)


class NetworkMonitor:
    """Per-link view of online traffic and bulk budgets (Fig. 8, step 3)."""

    def __init__(
        self,
        topology: Topology,
        background: Optional[BackgroundTraffic] = None,
        threshold: float = 0.8,
    ) -> None:
        check_fraction("threshold", threshold)
        self.topology = topology
        self.background = background
        self.threshold = threshold

    def online_usage(self, time_s: float) -> Dict[ResourceKey, float]:
        """Latency-sensitive bytes/second on every WAN link at ``time_s``."""
        usage: Dict[ResourceKey, float] = {}
        for key, link in self.topology.links.items():
            usage[key] = (
                self.background.usage(key, time_s, link.capacity)
                if self.background
                else 0.0
            )
        return usage

    def bulk_budgets(self, time_s: float) -> Dict[ResourceKey, float]:
        """Residual bulk budget for every WAN link at ``time_s``.

        Computed through the array form (:func:`residual_budgets`) — one
        vectorized pass instead of a per-link validate-and-max loop, with
        bit-identical values (``.tolist()`` hands back Python floats).
        """
        online = self.online_usage(time_s)
        keys = list(self.topology.links)
        caps = np.fromiter(
            (self.topology.links[k].capacity for k in keys),
            dtype=np.float64,
            count=len(keys),
        )
        used = np.fromiter(
            (online[k] for k in keys), dtype=np.float64, count=len(keys)
        )
        vals = residual_budgets(caps, used, self.threshold)
        return dict(zip(keys, vals.tolist()))


class BandwidthEnforcer:
    """Splits a link's bulk budget across transfers (the Fig. 10 mechanism).

    Each transfer declares a demand; the enforcer allocates max-min fair
    shares of the budget, so the *sum* of assigned sending rates never
    exceeds the budget — which is why BDS's measured usage stays under the
    cap in Fig. 10 while uncoordinated senders overshoot.
    """

    def __init__(self, budget: float) -> None:
        check_non_negative("budget", budget)
        self.budget = budget

    def allocate(self, demands: Mapping[Hashable, float]) -> Dict[Hashable, float]:
        """Max-min fair split of the budget across ``demands``."""
        remaining = self.budget
        pending: List[Tuple[Hashable, float]] = sorted(
            ((k, max(0.0, d)) for k, d in demands.items()), key=lambda kv: kv[1]
        )
        allocation: Dict[Hashable, float] = {}
        count = len(pending)
        for i, (key, demand) in enumerate(pending):
            fair = remaining / (count - i) if count > i else 0.0
            grant = min(demand, fair)
            allocation[key] = grant
            remaining -= grant
        return allocation

"""Table 3 — BDS vs Bullet vs Akamai in three trace-driven setups.

Paper (completion times): baseline — Bullet 28 m, Akamai 25 m, BDS 9.41 m
(~3x); large-scale — 82 m / 87 m / 20.33 m (>4x); rate-limited — 171 m /
138 m / 38.25 m (>4x). The reproduction scales data sizes and server
counts down (see EXPERIMENTS.md) and reproduces the ordering plus the
growing advantage at larger scale and tighter rate limits.
"""

from repro.analysis.experiments import exp_table3_overlay_comparison
from repro.analysis.reporting import format_table

PAPER_MINUTES = {
    "baseline": {"bullet": 28.0, "akamai": 25.0, "bds": 9.41},
    "large-scale": {"bullet": 82.0, "akamai": 87.0, "bds": 20.33},
    "rate-limited": {"bullet": 171.0, "akamai": 138.0, "bds": 38.25},
}


def test_table3_bds_vs_bullet_vs_akamai(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_table3_overlay_comparison(seed=11), rounds=1, iterations=1
    )
    rows = []
    for setup, measured in result.times.items():
        paper = PAPER_MINUTES[setup]
        speedup = min(measured["bullet"], measured["akamai"]) / measured["bds"]
        paper_speedup = min(paper["bullet"], paper["akamai"]) / paper["bds"]
        rows.append(
            [
                setup,
                f"{measured['bullet']:.0f}s",
                f"{measured['akamai']:.0f}s",
                f"{measured['bds']:.0f}s",
                f"{speedup:.1f}x",
                f"{paper_speedup:.1f}x",
            ]
        )
    from repro.analysis.plots import ascii_bars

    bars = "\n".join(
        f"-- {setup} --\n"
        + ascii_bars(
            {s: result.times[setup][s] for s in ("bullet", "akamai", "bds")},
            unit="s",
        )
        for setup in result.times
    )
    report(
        "\n[Table 3] Completion time by overlay scheme\n"
        + format_table(
            ["setup", "bullet", "akamai", "bds", "speedup", "paper speedup"],
            rows,
        )
        + "\n"
        + bars
    )
    for setup, measured in result.times.items():
        assert measured["bds"] < measured["bullet"]
        assert measured["bds"] < measured["akamai"]
        speedup = min(measured["bullet"], measured["akamai"]) / measured["bds"]
        assert speedup > 2.0  # paper: ~3x and above

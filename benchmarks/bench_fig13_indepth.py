"""Fig. 13 — in-depth analysis of the decoupled control logic.

Paper: (a) BDS's decoupled algorithm stays below 25 ms while the standard
joint LP climbs to seconds by 4000 blocks; (b) BDS's completion time
matches the standard LP at small scale (near-optimality); (c) for ~90 % of
servers, at most 20 % of blocks come from the origin DC — the overlay
carries over 80 % of the bytes.
"""

from repro.analysis.experiments import (
    exp_fig13a_runtime_comparison,
    exp_fig13b_near_optimality,
    exp_fig13c_origin_fraction,
)
from repro.analysis.metrics import cdf_at
from repro.analysis.reporting import format_cdf_rows, format_table


def test_fig13a_runtime_bds_vs_standard_lp(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig13a_runtime_comparison(
            block_counts=(200, 400, 800, 1600, 3200), seed=13
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, f"{b * 1000:.1f}ms", f"{s * 1000:.1f}ms", f"{s / max(b, 1e-9):.0f}x"]
        for n, b, s in zip(
            result.block_counts,
            result.bds_runtimes_s,
            result.standard_lp_runtimes_s,
        )
    ]
    report(
        "\n[Fig. 13a] Decision runtime: BDS (decoupled) vs standard LP\n"
        + format_table(["# blocks", "bds", "standard LP", "gap"], rows)
    )
    # The joint LP is consistently several times slower at every size, and
    # its absolute cost grows steeply with block count (the paper's point).
    for bds_t, lp_t in zip(result.bds_runtimes_s, result.standard_lp_runtimes_s):
        assert lp_t > bds_t * 2
    assert result.standard_lp_runtimes_s[-1] > result.bds_runtimes_s[-1] * 5
    lp_growth = (
        result.standard_lp_runtimes_s[-1] / result.standard_lp_runtimes_s[0]
    )
    assert lp_growth > 5


def test_fig13b_near_optimality(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig13b_near_optimality(block_counts=(50, 100, 200), seed=13),
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, f"{b:.0f}s", f"{s:.0f}s", f"{b / s:.2f}"]
        for n, b, s in zip(
            result.block_counts, result.bds_times_s, result.standard_lp_times_s
        )
    ]
    report(
        "\n[Fig. 13b] Completion time: BDS vs standard LP (2 DCs, 4 servers)\n"
        + format_table(["# blocks", "bds", "standard LP", "ratio"], rows)
        + "\n  paper: the two curves coincide (near-optimality)"
    )
    for b, s in zip(result.bds_times_s, result.standard_lp_times_s):
        assert b <= s * 1.5 + 3.0  # within a cycle or two of the LP plan


def test_fig13c_origin_fraction(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig13c_origin_fraction(seed=13), rounds=1, iterations=1
    )
    report(
        "\n[Fig. 13c] Per-server fraction of blocks fetched from the origin DC\n"
        + format_cdf_rows(result.origin_fractions)
        + f"\n  servers fetching <=20% from origin: "
        + f"{result.fraction_servers_below_20pct:.0%} (paper ~90%)"
    )
    assert result.fraction_servers_below_20pct > 0.5
    assert cdf_at(result.origin_fractions, 0.5) > 0.8

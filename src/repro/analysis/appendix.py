"""The paper's appendix: balanced replicas finish faster than imbalanced.

The appendix proves that, all else equal, a *balanced* distribution of
block replicas (every block has ``k`` copies) completes strictly faster
than an *imbalanced* one (half the blocks with ``k1 < k`` copies, half with
``k2 > k``, mean k) — the analytic justification for rarest-first
scheduling. The closed forms (paper Eq. 6):

    t_A = V / min(c, k·R_up/(m−k), k·R_down/(m−k))
    t_B = V / min(c, k1·R/(m−k1), k2·R/(m−k2), …)  →  (m−k1)·V' / (k1·R)

with ``V`` the untransmitted volume and ``R = min(R_up, R_down)``. Since
``(m−k)V/(kR)`` is monotonically decreasing in ``k`` (Eq. 7) and
``k1 < k``, ``t_A < t_B``.
"""

from __future__ import annotations

from typing import Optional

from repro.utils.validation import check_positive


def _check_common(num_blocks: int, m: int, rho: float, rate: float) -> None:
    check_positive("num_blocks", num_blocks)
    check_positive("m", m)
    check_positive("rho", rho)
    check_positive("rate", rate)


def balanced_completion_time(
    num_blocks: int,
    m: int,
    k: int,
    rho: float,
    rate: float,
    link_capacity: Optional[float] = None,
) -> float:
    """``t_A``: every one of ``num_blocks`` blocks has ``k`` replicas.

    ``m`` destination DCs, block size ``rho``, per-server rate ``R``
    (``min(R_up, R_down)``). ``link_capacity`` is the inter-DC capacity
    ``c(l)``; the paper notes it is orders of magnitude above server NICs
    in production, so ``None`` drops it from the bottleneck min.
    """
    _check_common(num_blocks, m, rho, rate)
    check_positive("k", k)
    if k >= m:
        raise ValueError("k must be < m, otherwise the multicast is complete")
    volume = num_blocks * (m - k) * rho
    serving_rate = k * rate / (m - k)
    if link_capacity is not None:
        serving_rate = min(serving_rate, link_capacity)
    return volume / serving_rate


def imbalanced_completion_time(
    num_blocks: int,
    m: int,
    k1: int,
    k2: int,
    rho: float,
    rate: float,
    link_capacity: Optional[float] = None,
) -> float:
    """``t_B``: half the blocks have ``k1`` replicas, half ``k2 > k1``.

    The completion time is dominated by the rarer half (the paper's
    ``(m − k1)V / (k1 R)`` after excluding ``c(l)``).
    """
    _check_common(num_blocks, m, rho, rate)
    check_positive("k1", k1)
    check_positive("k2", k2)
    if not k1 < k2:
        raise ValueError("the imbalanced case requires k1 < k2")
    if k2 >= m:
        raise ValueError("k2 must be < m")
    volume = (num_blocks / 2) * (m - k1) * rho + (num_blocks / 2) * (m - k2) * rho
    rates = [k1 * rate / (m - k1), k2 * rate / (m - k2)]
    serving_rate = min(rates)
    if link_capacity is not None:
        serving_rate = min(serving_rate, link_capacity)
    return volume / serving_rate


def theorem_holds(
    num_blocks: int,
    m: int,
    k1: int,
    k2: int,
    rho: float,
    rate: float,
) -> bool:
    """Check ``t_A < t_B`` for ``k = (k1 + k2) / 2`` (requires k integral).

    Returns True when the balanced distribution is strictly faster, which
    the appendix proves always holds for ``k1 < k2 < m``.
    """
    if (k1 + k2) % 2 != 0:
        raise ValueError("(k1 + k2) must be even so the balanced k is integral")
    k = (k1 + k2) // 2
    t_a = balanced_completion_time(num_blocks, m, k, rho, rate)
    t_b = imbalanced_completion_time(num_blocks, m, k1, k2, rho, rate)
    return t_a < t_b


def completion_time_derivative_sign(m: int, k: float) -> float:
    """Sign of d/dk [(m−k)²/(k)] — Eq. 7's monotonicity (always negative).

    Returns the value ``1 − m²/k²`` whose sign matches the derivative's
    for ``0 < k < m`` (the positive prefactor is dropped).
    """
    check_positive("m", m)
    check_positive("k", k)
    if k >= m:
        raise ValueError("k must be < m")
    return 1.0 - (m / k) ** 2

"""Agents and the Agent Monitor messaging layer."""

import pytest

from repro.net.latency import LatencyModel
from repro.net.topology import Server
from repro.overlay.agent import ServerAgent
from repro.overlay.monitor import AgentMonitor, FeedbackLoopSample


def make_agent(server_id="s0", dc="A") -> ServerAgent:
    return ServerAgent(Server(server_id=server_id, dc=dc, uplink=1, downlink=1))


class TestServerAgent:
    def test_starts_healthy(self):
        assert make_agent().healthy

    def test_fail_and_recover(self):
        agent = make_agent()
        agent.fail()
        assert not agent.healthy
        agent.recover()
        assert agent.healthy

    def test_snapshot_carries_state(self):
        agent = make_agent()
        snap = agent.snapshot({("j", 0)}, report_delay=0.01)
        assert snap.server_id == "s0"
        assert snap.dc == "A"
        assert snap.blocks == frozenset({("j", 0)})
        assert snap.healthy
        assert snap.report_delay == 0.01


class TestAgentMonitor:
    @pytest.fixture
    def monitor(self) -> AgentMonitor:
        return AgentMonitor(controller_dc="A", latency=LatencyModel(seed=0))

    def test_collect_skips_failed_agents(self, monitor):
        agents = [make_agent("s0", "A"), make_agent("s1", "B")]
        agents[1].fail()
        snapshots, delay = monitor.collect_status(agents, {})
        assert [s.server_id for s in snapshots] == ["s0"]
        assert delay > 0

    def test_collect_delay_is_worst_case(self, monitor):
        agents = [make_agent(f"s{i}", f"dc{i}") for i in range(5)]
        snapshots, delay = monitor.collect_status(agents, {})
        assert delay == max(s.report_delay for s in snapshots)

    def test_collect_passes_block_sets(self, monitor):
        agents = [make_agent("s0", "A")]
        snapshots, _delay = monitor.collect_status(agents, {"s0": {("j", 1)}})
        assert snapshots[0].blocks == frozenset({("j", 1)})

    def test_push_decisions_positive_delay(self, monitor):
        assert monitor.push_decisions(["B", "C"]) > 0

    def test_push_to_nobody_is_free(self, monitor):
        assert monitor.push_decisions([]) == 0.0

    def test_feedback_loop_total(self, monitor):
        agents = [make_agent(f"s{i}", f"dc{i}") for i in range(3)]
        _snaps, sample = monitor.feedback_loop(agents, {}, algorithm_runtime=0.1)
        assert isinstance(sample, FeedbackLoopSample)
        assert sample.algorithm_runtime == 0.1
        assert sample.total == pytest.approx(
            sample.collect_delay + 0.1 + sample.push_delay
        )

    def test_feedback_loop_reasonable_magnitude(self, monitor):
        # The Fig. 11c claim: mostly under 200 ms plus algorithm time.
        agents = [make_agent(f"s{i}", f"dc{i % 5}") for i in range(20)]
        totals = []
        for _ in range(50):
            _s, sample = monitor.feedback_loop(agents, {}, 0.02)
            totals.append(sample.total)
        assert sorted(totals)[int(0.8 * len(totals))] < 0.5

"""Appendix — balanced replica distributions beat imbalanced ones.

Paper: with m destination DCs and blocks carrying k replicas each
(balanced) vs half k1 / half k2 replicas (imbalanced, same mean), the
balanced case completes strictly faster: t_A < t_B. This is the analytic
justification for the generalized rarest-first scheduler. The benchmark
checks the closed forms across a parameter sweep and confirms the effect
end-to-end in simulation by pre-seeding the two replica layouts.
"""

from repro.analysis.appendix import (
    balanced_completion_time,
    imbalanced_completion_time,
)
from repro.analysis.reporting import format_table
from repro.core import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def _simulated_times(seed: int = 0):
    """Completion with balanced vs imbalanced pre-seeded replicas."""

    def run(layout: str) -> float:
        topo = Topology.full_mesh(
            num_dcs=6, servers_per_dc=2, wan_capacity=1 * GB, uplink=1 * MBps
        )
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=tuple(f"dc{i}" for i in range(1, 6)),
            total_bytes=80 * MB,
            block_size=2 * MB,
        )
        job.bind(topo)
        # Pre-seed copies on destination DCs: balanced = every block on 2
        # DCs; imbalanced = half the blocks on 1 DC, half on 3 (mean 2).
        seeded = {}
        for block in job.blocks:
            if layout == "balanced":
                replica_dcs = [1 + block.index % 5, 1 + (block.index + 1) % 5]
            elif block.index < len(job.blocks) // 2:
                replica_dcs = [1 + block.index % 5]
            else:
                replica_dcs = [
                    1 + block.index % 5,
                    1 + (block.index + 1) % 5,
                    1 + (block.index + 2) % 5,
                ]
            for d in replica_dcs:
                server = job.assigned_server(f"dc{d}", block.block_id)
                seeded.setdefault(server, []).append(block)
        result = Simulation(
            topo,
            [job],
            BDSController(seed=seed),
            SimConfig(max_cycles=5000),
            seed=seed,
            pre_seeded=seeded,
        ).run()
        return result.completion_time("j")

    return run("balanced"), run("imbalanced")


def test_appendix_balanced_beats_imbalanced(benchmark, report):
    balanced_s, imbalanced_s = benchmark.pedantic(
        _simulated_times, rounds=1, iterations=1
    )
    rows = []
    for m, k1, k2 in ((5, 1, 3), (10, 2, 6), (20, 4, 8)):
        k = (k1 + k2) // 2
        t_a = balanced_completion_time(1000, m, k, 2.0, 1.0)
        t_b = imbalanced_completion_time(1000, m, k1, k2, 2.0, 1.0)
        rows.append([f"m={m} k={k} vs ({k1},{k2})", f"{t_a:.0f}", f"{t_b:.0f}"])
    report(
        "\n[Appendix] Balanced vs imbalanced replica distributions\n"
        + format_table(["setting", "t_A (balanced)", "t_B (imbalanced)"], rows)
        + f"\n  simulated: balanced {balanced_s:.0f}s vs imbalanced "
        + f"{imbalanced_s:.0f}s"
    )
    for _setting, t_a, t_b in rows:
        assert float(t_a) < float(t_b)
    assert balanced_s <= imbalanced_s

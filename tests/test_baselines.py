"""Baseline overlay strategies: Gingko, Bullet, Akamai, chain, direct."""

import pytest

from repro.baselines import (
    AkamaiStrategy,
    BulletStrategy,
    ChainStrategy,
    DirectStrategy,
    GingkoStrategy,
)
from repro.core import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def build(num_dcs=3, servers=3, size=30 * MB, block=2 * MB, uplink=10 * MBps):
    topo = Topology.full_mesh(
        num_dcs=num_dcs, servers_per_dc=servers, wan_capacity=1 * GB, uplink=uplink
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, num_dcs)),
        total_bytes=size,
        block_size=block,
    )
    job.bind(topo)
    return topo, job


ALL_STRATEGIES = [
    ("gingko", lambda: GingkoStrategy(seed=0)),
    ("bullet", lambda: BulletStrategy(seed=0)),
    ("akamai", lambda: AkamaiStrategy()),
    ("chain", lambda: ChainStrategy()),
    ("direct", lambda: DirectStrategy()),
]


@pytest.mark.parametrize("name,factory", ALL_STRATEGIES)
class TestAllBaselines:
    def test_completes_multicast(self, name, factory):
        topo, job = build()
        result = Simulation(
            topo, [job], factory(), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete, f"{name} never finished"

    def test_no_rate_caps(self, name, factory):
        topo, job = build()
        strategy = factory()
        sim = Simulation(topo, [job], strategy, SimConfig())
        view = sim.snapshot_view()
        for directive in strategy.decide(view):
            assert directive.rate_cap is None

    def test_directives_reference_real_holders(self, name, factory):
        topo, job = build()
        strategy = factory()
        sim = Simulation(topo, [job], strategy, SimConfig())
        view = sim.snapshot_view()
        for directive in strategy.decide(view):
            for bid in directive.block_ids:
                assert view.store.has(directive.src_server, bid)

    def test_does_not_respect_threshold(self, name, factory):
        # Per the paper, only BDS coordinates rates under the threshold.
        assert not factory().respects_safety_threshold


class TestGingkoSpecifics:
    def test_limited_view_size(self):
        topo, job = build(servers=8)
        strategy = GingkoStrategy(view_size=3, seed=0)
        sim = Simulation(topo, [job], strategy, SimConfig())
        view = sim.snapshot_view()
        strategy.decide(view)
        for neighbors in strategy._neighbors.values():
            assert len(neighbors) <= 3

    def test_neighbors_refresh_on_epoch(self):
        topo, job = build(servers=8)
        strategy = GingkoStrategy(view_size=2, epoch_cycles=2, seed=0)
        sim = Simulation(topo, [job], strategy, SimConfig(max_cycles=8), seed=0)
        sim.run()
        assert strategy._last_epoch >= 1

    def test_fetch_parallelism_bounds_senders(self):
        topo, job = build(servers=8, size=64 * MB)
        strategy = GingkoStrategy(
            view_size=8, fetch_parallelism=2, seed=0
        )
        sim = Simulation(topo, [job], strategy, SimConfig())
        view = sim.snapshot_view()
        directives = strategy.decide(view)
        by_dst = {}
        for d in directives:
            by_dst.setdefault(d.dst_server, set()).add(d.src_server)
        for senders in by_dst.values():
            assert len(senders) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            GingkoStrategy(view_size=0)


class TestBulletSpecifics:
    def test_disjoint_blocks_across_peers(self):
        topo, job = build(servers=6, size=48 * MB)
        strategy = BulletStrategy(seed=0)
        sim = Simulation(topo, [job], strategy, SimConfig())
        view = sim.snapshot_view()
        directives = strategy.decide(view)
        by_dst = {}
        for d in directives:
            by_dst.setdefault(d.dst_server, []).extend(d.block_ids)
        for blocks in by_dst.values():
            assert len(blocks) == len(set(blocks)), "duplicate block requested"

    def test_peer_count_bounded(self):
        topo, job = build(servers=8)
        strategy = BulletStrategy(num_peers=3, seed=0)
        sim = Simulation(topo, [job], strategy, SimConfig())
        strategy.decide(sim.snapshot_view())
        for peers in strategy._peers.values():
            assert len(peers) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BulletStrategy(num_peers=0)


class TestAkamaiSpecifics:
    def test_three_layer_structure(self):
        """Edge servers receive only from their DC's reflector."""
        topo, job = build(servers=4)
        strategy = AkamaiStrategy(reflectors_per_dc=1)
        result = Simulation(
            topo, [job], strategy, SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete
        reflectors = {
            r for dc_refs in strategy._reflectors["j"].values() for r in dc_refs
        }
        for record in result.store.deliveries:
            dst_dc = result.store.dc_of(record.dst_server)
            if record.dst_server in reflectors:
                # Layer 1: reflectors fed from the source DC.
                assert result.store.dc_of(record.src_server) == "dc0"
            else:
                # Layer 2: edges fed from a reflector in their own DC.
                assert record.src_server in reflectors
                assert result.store.dc_of(record.src_server) == dst_dc

    def test_in_order_window(self):
        topo, job = build(servers=2, size=64 * MB)
        strategy = AkamaiStrategy(window=4)
        sim = Simulation(topo, [job], strategy, SimConfig())
        directives = strategy.decide(sim.snapshot_view())
        for d in directives:
            indices = [bid[1] for bid in d.block_ids]
            assert len(indices) <= 4
            assert indices == sorted(indices)

    def test_validation(self):
        with pytest.raises(ValueError):
            AkamaiStrategy(window=0)


class TestChainSpecifics:
    def test_chain_relays_forward_in_dc_order(self):
        topo, job = build(servers=2)
        strategy = ChainStrategy()
        result = Simulation(
            topo, [job], strategy, SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete
        chain = strategy._relays["j"]
        assert len(chain) == 2  # one relay per destination DC
        # The second relay must never receive directly from the source DC.
        second = chain[1]
        for record in result.store.deliveries:
            if record.dst_server == second:
                assert result.store.dc_of(record.src_server) == "dc1"

    def test_validation(self):
        with pytest.raises(ValueError):
            ChainStrategy(window=0)


class TestDirectSpecifics:
    def test_only_origin_sources_used(self):
        topo, job = build()
        result = Simulation(
            topo, [job], DirectStrategy(), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete
        for record in result.store.deliveries:
            assert result.store.dc_of(record.src_server) == "dc0"

    def test_overlay_beats_direct_on_thin_source(self):
        """With a thin source egress, any overlay reuse beats direct."""

        def scenario():
            topo = Topology.full_mesh(
                num_dcs=4,
                servers_per_dc=2,
                wan_capacity=100 * MBps,
                uplink=4 * MBps,
            )
            job = MulticastJob(
                job_id="j",
                src_dc="dc0",
                dst_dcs=("dc1", "dc2", "dc3"),
                total_bytes=48 * MB,
                block_size=4 * MB,
            )
            job.bind(topo)
            return topo, job

        topo, job = scenario()
        direct = Simulation(
            topo, [job], DirectStrategy(), SimConfig(max_cycles=3000), seed=0
        ).run()
        topo, job = scenario()
        bds = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert bds.completion_time("j") < direct.completion_time("j")

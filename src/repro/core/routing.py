"""The routing step: path selection and bandwidth allocation (§4.4, §5.1).

Given the scheduling step's block selections, the router:

1. picks up to ``max_sources_per_group`` candidate source servers per block
   (spread across DCs for Type I/II path diversity);
2. **merges blocks** sharing (destination server, candidate source set) into
   one commodity — the §5.1 blocks-merging optimization that collapses
   10^5 blocks into a few hundred subtasks;
3. solves the max-throughput multi-commodity flow (Eq. 5 objective under
   the Eq. 1–3 capacity/volume constraints) with one of three backends:

   * ``greedy``  — rarity-ordered water-filling (fastest; the default);
   * ``fptas``   — Garg–Könemann ε-approximation (the paper's choice);
   * ``lp``      — exact LP via scipy/HiGHS (slowest; optimality yardstick);

4. converts per-path rates into rate-capped single-hop
   :class:`~repro.net.simulator.TransferDirective`s, splitting each merged
   group's blocks across its sources in proportion to the allocated rates.
"""

from __future__ import annotations

import time as _time
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.decisions import ScheduledBlock, SelectionBatch
from repro.lp.fptas import max_multicommodity_flow
from repro.lp.incidence import PathIncidence
from repro.lp.mcf import Commodity, solve_lp_incidence
from repro.net.cycle_cache import RoutingWarmStore
from repro.net.simulator import ClusterView, TransferDirective
from repro.net.topology import ResourceKey
from repro.overlay.blocks import Block
from repro.utils.validation import check_positive

BlockId = Tuple[str, int]
GroupKey = Tuple[str, str, Tuple[str, ...]]  # (job, dst_server, sources)

#: (iterations, phases, warm_start) triple the solver backends report;
#: greedy/lp have no iteration structure so they report the zero triple.
SolverStats = Tuple[int, int, str]
_NO_SOLVER_STATS: SolverStats = (0, 0, "")


@dataclass
class RoutingDiagnostics:
    """Routing-step telemetry for the scalability figures (11a, 13a).

    ``iterations``/``phases``/``warm_start`` describe the FPTAS solve
    (zero/empty for the greedy and LP backends): flow-push count, Fleischer
    phase count, and how the solve started — ``"cold"``, ``"warm"``,
    ``"reuse"``, or ``"cold-fallback"`` (see
    :class:`repro.lp.fptas.FPTASResult`).

    ``reuse_horizon`` is the demand-independence certificate consumed by
    the event engine (see :attr:`repro.core.decisions.ControlDecision.
    reuse_horizon`): cycles past the decide this routing output stays
    bit-identical while demands drain, ``None`` = unbounded, ``0`` =
    never reuse.
    """

    backend: str
    num_selections: int
    num_commodities: int
    objective: float  # total allocated bytes/second
    runtime: float
    iterations: int = 0
    phases: int = 0
    warm_start: str = ""
    reuse_horizon: Optional[int] = 0


class BDSRouter:
    """Implements the routing half of BDS's decoupled control logic."""

    def __init__(
        self,
        backend: str = "greedy",
        epsilon: float = 0.1,
        max_sources_per_group: int = 3,
        merge_blocks: bool = True,
    ) -> None:
        if backend not in ("greedy", "fptas", "lp"):
            raise ValueError(f"unknown routing backend {backend!r}")
        check_positive("epsilon", epsilon)
        check_positive("max_sources_per_group", max_sources_per_group)
        self.backend = backend
        self.epsilon = epsilon
        self.max_sources_per_group = max_sources_per_group
        self.merge_blocks = merge_blocks
        # Cross-cycle FPTAS warm-start state. Owned by the router (not the
        # per-cycle CycleCache) so it survives speculation overlays, which
        # rebuild their caches every cycle.
        self._warm = RoutingWarmStore()

    # -- public API -------------------------------------------------------

    def route(
        self,
        view: ClusterView,
        selections: Sequence[ScheduledBlock],
        batch: Optional[SelectionBatch] = None,
    ) -> Tuple[List[TransferDirective], RoutingDiagnostics]:
        """Allocate paths and rates for the scheduled blocks.

        ``batch`` is the scheduler's integer companion of ``selections``
        (present when the vectorized kernel produced them): with it, the
        source-candidate picks and the §5.1 merge run on interned ids —
        int group keys, int path/source memos — and server names are only
        materialized once per final group. Groups, commodities, and
        directives are identical with or without it.
        """
        started = _time.perf_counter()
        if not selections:
            # Nothing scheduled: the (empty) output reads no draining
            # quantity, so it stays exact for as long as the validity key
            # holds — unbounded reuse horizon.
            return [], RoutingDiagnostics(
                backend=self.backend,
                num_selections=0,
                num_commodities=0,
                objective=0.0,
                runtime=_time.perf_counter() - started,
                reuse_horizon=None,
            )

        if (
            batch is not None
            and len(batch.gids) == len(selections)
            and getattr(view.store, "is_exact_matrix", False)
        ):
            groups = self._build_groups_batched(view, selections, batch)
        else:
            groups = self._build_groups(view, selections)
        commodities, group_blocks = self._build_commodities(view, groups)
        if not commodities:
            return [], RoutingDiagnostics(
                backend=self.backend,
                num_selections=len(selections),
                num_commodities=0,
                objective=0.0,
                runtime=_time.perf_counter() - started,
                reuse_horizon=None,
            )

        rates, solver = self._solve(view, commodities, view.bulk_capacities)
        directives = self._to_directives(view, commodities, group_blocks, rates)
        objective = sum(rates.values())
        return directives, RoutingDiagnostics(
            backend=self.backend,
            num_selections=len(selections),
            num_commodities=len(commodities),
            objective=objective,
            runtime=_time.perf_counter() - started,
            iterations=solver[0],
            phases=solver[1],
            warm_start=solver[2],
            reuse_horizon=self._certify_reuse_horizon(commodities, rates),
        )

    # -- step 1 & 2: source candidates and merging -------------------------------

    def _candidate_sources(
        self, view: ClusterView, entry: ScheduledBlock
    ) -> Tuple[str, ...]:
        """Up to ``max_sources_per_group`` diverse source servers.

        Preference order: a holder in the destination's own DC (cheap
        intra-DC copy), then holders spread across distinct DCs; rotation by
        block index spreads different blocks over different holders of the
        same DC, creating Type II path diversity.
        """
        holders = [
            s
            for s in view.eligible_sources(entry.block.block_id)
            if s != entry.dst_server
            # Failure-aware: a holder partitioned away from the destination
            # is not a usable source this cycle (§5.3).
            and view.flow_resources(s, entry.dst_server) is not None
        ]
        if not holders:
            return ()
        holders.sort()
        by_dc: Dict[str, List[str]] = {}
        for holder in holders:
            by_dc.setdefault(view.store.dc_of(holder), []).append(holder)

        picked: List[str] = []
        dst_dc = entry.dst_dc
        if dst_dc in by_dc:
            local = by_dc[dst_dc]
            picked.append(local[entry.block.index % len(local)])
        # Round-robin over the other DCs, starting at a block-dependent
        # offset so consecutive blocks favour different source DCs.
        other_dcs = sorted(dc for dc in by_dc if dc != dst_dc)
        if other_dcs:
            start = entry.block.index % len(other_dcs)
            ordered = other_dcs[start:] + other_dcs[:start]
            for dc in ordered:
                if len(picked) >= self.max_sources_per_group:
                    break
                servers = by_dc[dc]
                candidate = servers[entry.block.index % len(servers)]
                if candidate not in picked:
                    picked.append(candidate)
        return tuple(picked[: self.max_sources_per_group])

    def _build_groups(
        self, view: ClusterView, selections: Sequence[ScheduledBlock]
    ) -> Dict[GroupKey, List[ScheduledBlock]]:
        """Merge selections by (job, destination, source set) — §5.1.

        With merging disabled every block becomes its own group, which is
        the configuration the merging ablation benchmark exercises.
        """
        groups: Dict[GroupKey, List[ScheduledBlock]] = {}
        for i, entry in enumerate(selections):
            sources = self._candidate_sources(view, entry)
            if not sources:
                continue
            if self.merge_blocks:
                key = (entry.job_id, entry.dst_server, sources)
            else:
                key = (entry.job_id, f"{entry.dst_server}#{i}", sources)
            groups.setdefault(key, []).append(entry)
        return groups

    def _build_groups_batched(
        self,
        view: ClusterView,
        selections: Sequence[ScheduledBlock],
        batch: SelectionBatch,
    ) -> Dict[GroupKey, List[ScheduledBlock]]:
        """Interned-id twin of ``_build_groups`` + ``_candidate_sources``.

        Same pick logic, run on small ints and batched holder lookups:

        * Holder sets for every distinct selected block come from **one**
          gather against the possession matrix per cycle (a servers ×
          unique-blocks bit test), with failed agents masked out, instead
          of a per-selection column scan. Ascending server id *is* the
          lexicographic ``holders.sort()`` of the scalar path (server
          interning is in sorted-name order).
        * The actual source pick is memoized **content-addressed** in
          ``CycleCache.picks``: the key is the block's packed holder
          bitmask plus (destination id, block index), so the memo
          survives store-epoch bumps — possession churn simply addresses
          new entries — and steady-state cycles rebuild almost no picks.
          Path reachability is baked into stored picks, hence the memo's
          validity key is the *path* key (topology epoch, failed links).
        * On a memo miss, the per-(src, dst) path probe goes through an
          int-keyed memo (``CycleCache.paths_ids``) in front of
          ``view.flow_resources``; DC grouping uses the matrix's
          server→DC id table.

        Group keys are int tuples during the loop; the string
        :data:`GroupKey` is built once per group, in first-hit order, so
        the resulting dict iterates exactly like the scalar build's.
        """
        matrix = view.store.matrix
        names = matrix.server_names
        num_servers = matrix.num_servers
        dc_of_sid = matrix.server_dc_list
        cache = view._cache
        if cache is not None:
            cache.validate_paths(view.topology.epoch, view.failed_links)
            paths_ids = cache.paths_ids
            picks = cache.validate_picks(
                view.topology.epoch,
                view.failed_links,
                self.max_sources_per_group,
            )
        else:
            paths_ids = {}
            picks = {}
        failed_sids = sorted(
            matrix.server_ids[s]
            for s in view.failed_agents
            if s in matrix.server_ids
        )
        flow_resources = view.flow_resources
        max_sources = self.max_sources_per_group
        merge = self.merge_blocks
        jobs = batch.jobs
        job_ids = [job.job_id for job in jobs]

        # One batched possession gather for all distinct selected blocks:
        # present[s, u] == server s holds unique block u (failed masked).
        gids_arr = np.asarray(batch.gids, dtype=np.int64)
        uniq, inverse = np.unique(gids_arr, return_inverse=True)
        holder_masks = (np.uint64(1) << (uniq & 63).astype(np.uint64))
        present = (matrix.bits[:, uniq >> 6] & holder_masks) != 0
        if failed_sids:
            present[failed_sids, :] = False
        # Per-unique-block memo keys: the packed holder bitmask bytes.
        packed = np.ascontiguousarray(np.packbits(present, axis=0).T)
        sigs = [packed[u].tobytes() for u in range(len(uniq))]
        holder_lists: List[Optional[List[int]]] = [None] * len(uniq)
        inv = inverse.tolist()

        groups: Dict[GroupKey, List[ScheduledBlock]] = {}
        labels: Dict[Tuple, GroupKey] = {}
        members: Dict[Tuple, List[ScheduledBlock]] = {}
        b_idx = batch.indices
        b_dst = batch.dst_sids
        b_dc = batch.dc_gids
        b_slot = batch.job_slots
        picks_get = picks.get
        members_get = members.get
        for i, entry in enumerate(selections):
            dst_sid = b_dst[i]
            idx = b_idx[i]
            u = inv[i]
            pick_key = (sigs[u], dst_sid, idx)
            sources = picks_get(pick_key)
            if sources is None:
                holders = holder_lists[u]
                if holders is None:
                    holders = np.nonzero(present[:, u])[0].tolist()
                    holder_lists[u] = holders
                usable: List[int] = []
                for h in holders:
                    if h == dst_sid:
                        continue
                    pkey = h * num_servers + dst_sid
                    try:
                        path = paths_ids[pkey]
                    except KeyError:
                        path = flow_resources(names[h], names[dst_sid])
                        paths_ids[pkey] = path
                    if path is None:
                        continue
                    usable.append(h)
                by_dc: Dict[int, List[int]] = {}
                for h in usable:
                    by_dc.setdefault(dc_of_sid[h], []).append(h)
                picked: List[int] = []
                dst_dc_gid = b_dc[i]
                local = by_dc.get(dst_dc_gid)
                if local is not None:
                    picked.append(local[idx % len(local)])
                other_dcs = sorted(d for d in by_dc if d != dst_dc_gid)
                if other_dcs:
                    start = idx % len(other_dcs)
                    for d in other_dcs[start:] + other_dcs[:start]:
                        if len(picked) >= max_sources:
                            break
                        servers = by_dc[d]
                        candidate = servers[idx % len(servers)]
                        if candidate not in picked:
                            picked.append(candidate)
                sources = tuple(picked[:max_sources])
                picks[pick_key] = sources
            if not sources:
                continue
            if merge:
                ikey = (b_slot[i], dst_sid, sources)
            else:
                ikey = (i,)
            entries = members_get(ikey)
            if entries is None:
                name_sources = tuple(names[s] for s in sources)
                dst_label = (
                    names[dst_sid] if merge else f"{names[dst_sid]}#{i}"
                )
                labels[ikey] = (job_ids[b_slot[i]], dst_label, name_sources)
                entries = members[ikey] = []
            entries.append(entry)
        for ikey, entries in members.items():
            groups[labels[ikey]] = entries
        return groups

    # -- step 3: commodity construction and solving -------------------------------

    def _build_commodities(
        self,
        view: ClusterView,
        groups: Mapping[GroupKey, List[ScheduledBlock]],
    ) -> Tuple[List[Commodity], Dict[GroupKey, List[Block]]]:
        commodities: List[Commodity] = []
        group_blocks: Dict[GroupKey, List[Block]] = {}
        dt = view.cycle_seconds
        for key, entries in groups.items():
            _job, dst_label, sources = key
            dst_server = entries[0].dst_server
            blocks = [e.block for e in entries]
            remaining = sum(
                b.size - view.received_bytes(b.block_id, dst_server)
                for b in blocks
            )
            if remaining <= 0:
                continue
            # Candidate sources are pre-filtered for routability, so every
            # source has a failure-aware path here.
            paths = tuple(
                tuple(view.flow_resources(src, dst_server) or ())
                for src in sources
            )
            if any(not p for p in paths):
                continue  # a link failed between grouping and routing
            commodities.append(
                Commodity(name=key, paths=paths, demand=remaining / dt)
            )
            group_blocks[key] = blocks
        return commodities, group_blocks

    def _solve(
        self,
        view: ClusterView,
        commodities: List[Commodity],
        capacities: Mapping[ResourceKey, float],
    ) -> Tuple[Dict[Tuple[GroupKey, int], float], SolverStats]:
        """Dispatch to the configured backend; returns per-path rates.

        All three backends solve over one shared
        :class:`~repro.lp.incidence.PathIncidence` compiled here. Lenient
        mode reproduces the historical greedy semantics: a resource missing
        from the capacity map counts as zero capacity, which simply makes
        the paths crossing it unusable (e.g. a link that failed between
        grouping and routing).
        """
        incidence = PathIncidence.build(commodities, capacities, strict=False)
        if self.backend == "greedy":
            rates = self._solve_greedy(commodities, capacities, incidence=incidence)
            return rates, _NO_SOLVER_STATS
        if self.backend == "lp":
            result = solve_lp_incidence(incidence)
            return dict(result.path_flows), _NO_SOLVER_STATS
        # FPTAS with cross-cycle warm start: offer last cycle's solver
        # state while (topology epoch, failure set) is unchanged. The
        # solver re-verifies capacities/ε itself and certifies the warm
        # solve against its dual bound, so this can only help, never hurt.
        warm = self._warm.validate(view.topology.epoch, view.failed_links)
        result = max_multicommodity_flow(
            commodities,
            capacities,
            epsilon=self.epsilon,
            warm=warm,
            incidence=incidence,
        )
        if result.warm_state is not None:
            self._warm.store(
                view.topology.epoch, view.failed_links, result.warm_state
            )
        return dict(result.path_flows), (
            result.iterations,
            result.phases,
            result.warm_start,
        )

    def _certify_reuse_horizon(
        self,
        commodities: List[Commodity],
        rates: Mapping[Tuple[GroupKey, int], float],
    ) -> Optional[int]:
        """Demand-independence certificate for the greedy backend.

        The only routing input that changes while the validity key holds
        is each commodity's demand (``remaining / dt``), which drains by
        at most the pushed rate per cycle. The greedy water-fill's trace —
        and therefore its directives, byte-for-byte — is unchanged as
        long as every commodity's demand stays strictly above what was
        pushed for it, because every ``min(demand, room)`` step keeps
        resolving to the room term:

        * commodities with **zero pushed rate** do not drain, so they
          never constrain the horizon;
        * a **capacity-limited** commodity (pushed ``p`` < demand ``d``,
          slack ``d - p``) tolerates ``j`` reused cycles while
          ``d - j*p > p + margin``, i.e. ``j < (slack - margin) / p``,
          with ``margin = 1e-6*d + 1e-3`` absorbing the solver's own
          ``1e-9`` epsilons and float drift; the drain bound ``p`` per
          cycle is itself conservative (real drain is ``p * window`` /
          ``dt`` < ``p``);
        * a **demand-limited** commodity (slack ≈ 0) would push less the
          very next cycle, so it forces horizon 0.

        The FPTAS solver is ε-approximate with warm-start state that
        advances per solve, and the LP backend's vertex selection is not
        certified against demand perturbations — both report 0 (never
        reuse). ``None`` (unbounded) is returned when no commodity
        constrains the horizon.
        """
        if self.backend != "greedy":
            return 0
        pushed: Dict[int, float] = {}
        names = {c.name: i for i, c in enumerate(commodities)}
        for (name, _path), rate in rates.items():
            i = names[name]
            pushed[i] = pushed.get(i, 0.0) + rate
        horizon: Optional[int] = None
        for i, commodity in enumerate(commodities):
            p = pushed.get(i, 0.0)
            if p <= 0.0:
                continue
            demand = commodity.demand
            if demand is None:
                continue
            margin = 1e-6 * demand + 1e-3
            slack = demand - p
            if slack <= margin:
                return 0
            h = int((slack - margin) / p) - 1
            if h <= 0:
                return 0
            if horizon is None or h < horizon:
                horizon = h
        return horizon

    @staticmethod
    def _solve_greedy(
        commodities: List[Commodity],
        capacities: Mapping[ResourceKey, float],
        fair_rounds: int = 3,
        incidence: Optional[PathIncidence] = None,
    ) -> Dict[Tuple[GroupKey, int], float]:
        """Round-robin water-filling in commodity order (rarity order).

        Pure first-come-first-served greedy lets the first commodity drain
        a shared uplink and starves every destination behind it, so the
        allocation happens in two phases:

        1. ``fair_rounds`` round-robin passes where each commodity pushes at
           most ``room / remaining_commodities`` on its best residual path —
           an approximation of max-min sharing;
        2. a final pass in rarity order that hands out whatever is left.

        The per-path residual room (a min over the path's resources) is
        the inner-loop cost. It is precomputed from the shared incidence
        arrays into per-commodity *(original path index, resource index
        list)* pairs over a dense residual vector — unusable paths are
        pre-dropped, only touched resources are materialized (no full
        capacity-map copy per solve), and the min runs over plain integer
        indices. Router commodities have at most ``max_sources_per_group``
        short paths, so these tiny reductions stay in pure Python — a
        vectorized ``reduceat`` per commodity measures ~2× *slower* at
        this shape (per-call overhead dominates 9-element segments). The
        result is bit-identical to the historical dict-walking loop: min
        is exact over the same floats, ties break on the first maximum
        (lowest path index), and residual updates subtract once per
        resource *occurrence*.
        """
        inc = incidence
        if inc is None:
            inc = PathIncidence.build(commodities, capacities, strict=False)
        residual: List[float] = inc.caps.tolist()
        rates: Dict[Tuple[GroupKey, int], float] = {}
        remaining: Dict[int, float] = {
            i: (c.demand if c.demand is not None else float("inf"))
            for i, c in enumerate(commodities)
        }

        # Per-commodity usable paths as (orig path index, resource index
        # list) pairs, unpacked from the incidence arrays once.
        starts = inc.path_starts.tolist()
        lens = inc.path_lens.tolist()
        flat = inc.flat_res.tolist()
        orig = inc.path_orig_index.tolist()
        paths_of: List[List[Tuple[int, List[int]]]] = []
        for ci in range(inc.num_commodities):
            lo, hi = inc.commodity_path_range[ci]
            paths_of.append(
                [
                    (orig[p], flat[starts[p] : starts[p] + lens[p]])
                    for p in range(lo, hi)
                ]
            )

        def push_flow(index: int, limit_fraction: float) -> None:
            plist = paths_of[index]
            if not plist:
                return
            demand = remaining[index]
            while demand > 1e-9:
                best_pi, best_room, best_idxs = -1, 0.0, None
                for pi, idxs in plist:
                    room = min(residual[i] for i in idxs)
                    if room > best_room:
                        best_room = room
                        best_pi = pi
                        best_idxs = idxs
                if best_pi < 0 or best_room <= 1e-9:
                    break
                push = min(demand, best_room * limit_fraction)
                if push <= 1e-9:
                    break
                key = (commodities[index].name, best_pi)
                rates[key] = rates.get(key, 0.0) + push
                for i in best_idxs:
                    residual[i] -= push
                demand -= push
                if limit_fraction < 1.0:
                    break  # one quantum per fair-round visit
            remaining[index] = demand

        active = [i for i, d in remaining.items() if d > 1e-9]
        for _round in range(fair_rounds):
            if not active:
                break
            share = 1.0 / max(len(active), 1)
            for i in active:
                push_flow(i, share)
            active = [i for i in active if remaining[i] > 1e-9]
        for i in range(len(commodities)):
            if remaining[i] > 1e-9:
                push_flow(i, 1.0)
        return rates

    # -- step 4: rates -> directives ----------------------------------------------

    @staticmethod
    def _to_directives(
        view: ClusterView,
        commodities: List[Commodity],
        group_blocks: Mapping[GroupKey, List[Block]],
        rates: Mapping[Tuple[GroupKey, int], float],
    ) -> List[TransferDirective]:
        """Split each merged group's blocks across its allocated sources.

        Blocks are dealt to sources in proportion to each source's share of
        the group's total rate, preserving rarity order within the group.
        """
        directives: List[TransferDirective] = []
        for commodity in commodities:
            key: GroupKey = commodity.name  # type: ignore[assignment]
            job_id, _dst_label, sources = key
            blocks = group_blocks[key]
            # Stagger block order per destination (Fig. 1's circled send
            # order): different destinations start at different offsets, so
            # they accumulate *disjoint* prefixes and can then serve each
            # other over bottleneck-disjoint paths. Without this, every
            # destination receives the same blocks in the same order and
            # the overlay has nothing to exchange.
            dst_for_offset = commodity.paths[0][-1][1]
            offset = zlib.crc32(dst_for_offset.encode()) % len(blocks)
            rotated = blocks[offset:] + blocks[:offset]
            # Half-received blocks go first so their buffered bytes are not
            # stranded by the rotation. Membership is tested on block ids
            # (a set), not Block equality over a list — the latter made
            # this loop quadratic in group size.
            partial = [
                b
                for b in rotated
                if view.received_bytes(b.block_id, dst_for_offset) > 0
            ]
            if partial:
                partial_ids = {b.block_id for b in partial}
                rest = [b for b in rotated if b.block_id not in partial_ids]
                blocks = partial + rest
            else:
                blocks = rotated
            dst_server = None
            per_source: List[Tuple[str, float]] = []
            for pi, src in enumerate(sources):
                rate = rates.get((key, pi), 0.0)
                if rate > 1e-9:
                    per_source.append((src, rate))
            if not per_source:
                continue
            # The destination is encoded in the path's last resource
            # ("down", server); recover it from any path.
            last = commodity.paths[0][-1]
            dst_server = last[1]
            total_rate = sum(rate for _s, rate in per_source)
            total_bytes = sum(b.size for b in blocks)
            # Deal blocks to sources by descending byte deficit.
            budgets = {
                src: rate / total_rate * total_bytes for src, rate in per_source
            }
            assigned: Dict[str, List[Block]] = {src: [] for src, _r in per_source}
            for block in blocks:
                src = max(budgets, key=lambda s: budgets[s])
                assigned[src].append(block)
                budgets[src] -= block.size
            # A group with fewer blocks than flowing paths leaves some
            # sources empty; hand their rate to the sources that did get
            # blocks, or small block remainders drain geometrically and
            # never finish. The simulator re-clips to capacity, so the
            # reshuffled rate cannot oversubscribe any link.
            used_rate = sum(r for s, r in per_source if assigned[s])
            spare = total_rate - used_rate
            for src, rate in per_source:
                if not assigned[src]:
                    continue
                share = rate + (spare * rate / used_rate if used_rate > 0 else 0.0)
                directives.append(
                    TransferDirective(
                        job_id=job_id,
                        block_ids=tuple(b.block_id for b in assigned[src]),
                        src_server=src,
                        dst_server=dst_server,
                        rate_cap=share,
                    )
                )
        return directives

"""Unit handling: parsing, formatting, constants."""


import pytest

from repro.utils.units import (
    GB,
    KB,
    MB,
    TB,
    GBps,
    Gbps,
    MBps,
    Mbps,
    format_bytes,
    format_duration,
    format_rate,
    parse_rate,
    parse_size,
)


class TestConstants:
    def test_byte_hierarchy(self):
        assert KB == 1024
        assert MB == 1024 * KB
        assert GB == 1024 * MB
        assert TB == 1024 * GB

    def test_bit_rates_are_decimal(self):
        # 20 Mbps = 2.5 decimal megabytes per second.
        assert Mbps * 20 == pytest.approx(2.5e6)
        assert Gbps == 1000 * Mbps

    def test_byte_rates_are_binary(self):
        assert MBps == MB
        assert GBps == GB


class TestParseSize:
    def test_simple(self):
        assert parse_size("2MB") == 2 * MB

    def test_fractional_with_space(self):
        assert parse_size("1.5 TB") == 1.5 * TB

    def test_case_insensitive(self):
        assert parse_size("3gb") == 3 * GB

    def test_plain_bytes(self):
        assert parse_size("512B") == 512

    @pytest.mark.parametrize("bad", ["", "MB", "12", "1.2.3MB", "5PB"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)


class TestParseRate:
    def test_bit_rate(self):
        assert parse_rate("20Mbps") == pytest.approx(2.5e6)

    def test_byte_rate(self):
        assert parse_rate("3 MB/s") == 3 * MBps

    def test_gigabit(self):
        assert parse_rate("1Gbps") == pytest.approx(1.25e8)

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            parse_rate("5 furlongs")


class TestFormatting:
    def test_format_bytes_picks_unit(self):
        assert format_bytes(3 * GB) == "3.00GB"
        assert format_bytes(1536) == "1.50KB"
        assert format_bytes(10) == "10B"

    def test_format_rate(self):
        assert format_rate(2 * MBps) == "2.00MB/s"

    def test_format_duration_seconds(self):
        assert format_duration(5.0) == "5.0s"

    def test_format_duration_minutes(self):
        assert format_duration(90) == "1.5m"

    def test_format_duration_hours(self):
        assert format_duration(7200) == "2.00h"

    def test_roundtrip_parse_format(self):
        assert parse_size(format_bytes(7 * GB)) == 7 * GB

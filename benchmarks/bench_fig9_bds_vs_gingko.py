"""Fig. 9 — BDS vs Gingko, the pilot-deployment headline result.

Paper: (a) median per-server completion 35 min for BDS vs ~190 min for
Gingko (~5x); (b) BDS wins across large/medium/small applications with
lower variance, with larger gains on larger transfers; (c) a consistent
~4x gap across days. The reproduction scales the 70 TB / 10-DC transfer
down (see EXPERIMENTS.md) and reproduces the ordering and multi-x gap.
"""


from repro.analysis.experiments import exp_fig9_bds_vs_gingko
from repro.analysis.plots import ascii_cdf
from repro.analysis.reporting import format_cdf_rows, format_table


def test_fig9_bds_vs_gingko(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig9_bds_vs_gingko(seed=9), rounds=1, iterations=1
    )
    lines = [
        "\n[Fig. 9a] Per-server completion time CDF (seconds)",
        "-- Gingko --",
        format_cdf_rows(result.gingko_server_times, unit="s"),
        "-- BDS --",
        format_cdf_rows(result.bds_server_times, unit="s"),
        f"  median speedup: {result.median_speedup:.1f}x (paper ~5x)",
        ascii_cdf(
            {
                "gingko": result.gingko_server_times,
                "bds": result.bds_server_times,
            },
            x_label="completion (s)",
        ),
        "\n[Fig. 9b] Mean completion by application size (seconds)",
    ]
    rows = []
    for app in ("large", "medium", "small"):
        gm, gs = result.by_app[app]["gingko"]
        bm, bs = result.by_app[app]["bds"]
        rows.append(
            [app, f"{gm:.0f} ± {gs:.0f}", f"{bm:.0f} ± {bs:.0f}", f"{gm / bm:.1f}x"]
        )
    lines.append(format_table(["app", "gingko", "bds", "speedup"], rows))
    lines.append("\n[Fig. 9c] Completion time per day (seconds)")
    day_rows = [
        [day, f"{g:.0f}", f"{b:.0f}", f"{g / b:.1f}x"]
        for day, (g, b) in enumerate(
            zip(result.timeseries["gingko"], result.timeseries["bds"])
        )
    ]
    lines.append(format_table(["day", "gingko", "bds", "speedup"], day_rows))
    report("\n".join(lines))

    assert result.median_speedup > 1.5
    for app in ("large", "medium"):
        assert result.by_app[app]["bds"][0] < result.by_app[app]["gingko"][0]
    for g, b in zip(result.timeseries["gingko"], result.timeseries["bds"]):
        assert b < g

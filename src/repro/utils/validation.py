"""Small argument-validation helpers shared across the library.

These raise early with a message naming the offending parameter, which is
far more useful inside a long simulation run than a late ``ZeroDivisionError``.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0`` and return it."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1`` and return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_type(
    name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]
) -> Any:
    """Require ``isinstance(value, expected)`` and return the value."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else "/".join(t.__name__ for t in expected)
        )
        raise TypeError(
            f"{name} must be {expected_names}, got {type(value).__name__}"
        )
    return value

"""Exporting simulation results to JSON for external analysis.

:class:`~repro.net.simulator.SimResult` holds live objects (the possession
index, cycle stats); this module flattens the analysis-relevant parts into
plain JSON so results can be archived, diffed across runs, or loaded into
other tools. Resource keys are rendered as ``kind:part:part`` strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.net.simulator import SimResult

PathLike = Union[str, Path]

EXPORT_FORMAT_VERSION = 2


def _resource_to_str(key) -> str:
    return ":".join(str(part) for part in key)


def result_to_dict(result: SimResult, include_cycles: bool = True) -> Dict[str, Any]:
    """Flatten a :class:`SimResult` into JSON-serializable primitives."""
    payload: Dict[str, Any] = {
        "format_version": EXPORT_FORMAT_VERSION,
        "cycles_run": result.cycles_run,
        "sim_time": result.sim_time,
        "wall_time": result.wall_time,
        "all_complete": result.all_complete,
        "job_completion": dict(result.job_completion),
        "dc_completion": {
            f"{job}/{dc}": t for (job, dc), t in result.dc_completion.items()
        },
        "server_completion": {
            f"{job}/{server}": t
            for (job, server), t in result.server_completion.items()
        },
        "origin_fraction_by_server": result.store.origin_fraction_by_server(),
        "total_bytes_transferred": result.total_bytes_transferred(),
    }
    if include_cycles:
        payload["cycles"] = [
            {
                "cycle": s.cycle,
                "time": s.time,
                "blocks_delivered": s.blocks_delivered,
                "bytes_transferred": s.bytes_transferred,
                "active_flows": s.active_flows,
                "controller_available": s.controller_available,
                "link_bulk_usage": {
                    _resource_to_str(k): v for k, v in s.link_bulk_usage.items()
                },
                "link_online_usage": {
                    _resource_to_str(k): v
                    for k, v in s.link_online_usage.items()
                },
                "max_delay_inflation": s.max_delay_inflation,
                "stage_times": {
                    "view_build": s.time_view_build,
                    "decide": s.time_decide,
                    "schedule": s.time_schedule,
                    "route": s.time_route,
                    "rate_resolve": s.time_rate_resolve,
                    "deliver": s.time_deliver,
                },
            }
            for s in result.cycle_stats
        ]
    return payload


def save_result(
    result: SimResult, path: PathLike, include_cycles: bool = True
) -> None:
    """Write a result export to ``path`` as pretty-printed JSON."""
    payload = result_to_dict(result, include_cycles=include_cycles)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result_dict(path: PathLike) -> Dict[str, Any]:
    """Read a result export back as a dictionary (not a live SimResult)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version != EXPORT_FORMAT_VERSION:
        raise ValueError(
            f"unsupported export format version {version!r} "
            f"(expected {EXPORT_FORMAT_VERSION})"
        )
    return payload

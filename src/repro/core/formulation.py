"""The paper's §4.1 joint formulation — the "standard LP" baseline.

BDS's contribution is *decoupling* scheduling from routing. To quantify
what that buys (Fig. 13a running time, Fig. 13b near-optimality), this
module implements the non-decoupled alternative two ways:

* :class:`StandardLPRouter` — a drop-in replacement for
  :class:`~repro.core.routing.BDSRouter` that solves one *joint* LP per
  cycle with per-block variables ``w_{b,s}`` (relaxed to [0,1]) and
  ``f_{b,p}``, no block merging, exactly the Eq. 1–5 constraint structure.
  Its running time grows quickly with the number of blocks, which is the
  paper's point.
* :class:`JointFormulation` — the full multi-cycle problem: find the
  minimum number of cycles ``N`` for which a feasible transfer plan exists
  (the §4.1 objective). Solved by a linear search over ``N`` with one LP
  feasibility check each; tractable only at toy scale, as the paper notes.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.decisions import ScheduledBlock
from repro.core.routing import RoutingDiagnostics
from repro.lp.model import LinearProgram, LPError
from repro.net.simulator import ClusterView, TransferDirective
from repro.net.topology import ResourceKey
from repro.utils.validation import check_positive

BlockId = Tuple[str, int]


class StandardLPRouter:
    """Per-cycle joint ⟨w, f⟩ LP with no decoupling and no merging.

    Interface-compatible with :class:`~repro.core.routing.BDSRouter` so a
    :class:`~repro.core.controller.BDSController` can be built with either;
    the scheduler's selections are treated as the *candidate* set and the
    LP itself decides which of them to serve this cycle (the relaxed
    ``w_{b,s}``).
    """

    backend = "standard-lp"

    def __init__(self, max_sources_per_block: int = 3) -> None:
        check_positive("max_sources_per_block", max_sources_per_block)
        self.max_sources_per_block = max_sources_per_block

    def route(
        self,
        view: ClusterView,
        selections: Sequence[ScheduledBlock],
        batch=None,
    ) -> Tuple[List[TransferDirective], RoutingDiagnostics]:
        # ``batch`` (the scheduler's interned-id selection companion) is
        # accepted for router-API compatibility but unused: the standard
        # formulation is the optimality yardstick, not a hot path.
        started = _time.perf_counter()
        if not selections:
            return [], RoutingDiagnostics(
                backend=self.backend,
                num_selections=0,
                num_commodities=0,
                objective=0.0,
                runtime=_time.perf_counter() - started,
            )
        dt = view.cycle_seconds
        lp = LinearProgram(maximize=True)

        # Per-selection variables and bookkeeping.
        flow_vars: Dict[Tuple[int, int], str] = {}  # (sel idx, path idx) -> var
        w_vars: Dict[int, str] = {}
        sources_per_sel: Dict[int, List[str]] = {}
        usable: List[int] = []
        for i, entry in enumerate(selections):
            sources = [
                s
                for s in view.eligible_sources(entry.block.block_id)
                if s != entry.dst_server
            ]
            sources.sort()
            sources = sources[: self.max_sources_per_block]
            if not sources:
                continue
            usable.append(i)
            sources_per_sel[i] = sources
            w_vars[i] = lp.add_variable(f"w_{i}", lower=0.0, upper=1.0)
            for pi in range(len(sources)):
                flow_vars[(i, pi)] = lp.add_variable(
                    f"f_{i}_{pi}", lower=0.0, objective=1.0
                )
        if not usable:
            return [], RoutingDiagnostics(
                backend=self.backend,
                num_selections=len(selections),
                num_commodities=0,
                objective=0.0,
                runtime=_time.perf_counter() - started,
            )

        # Eq. 1: path flow <= w * Rdown(dst); flow <= min link capacity
        # along the path is implied by the Eq. 2 resource constraints.
        for i in usable:
            entry = selections[i]
            rdown = view.topology.servers[entry.dst_server].downlink
            for pi in range(len(sources_per_sel[i])):
                lp.add_constraint(
                    {flow_vars[(i, pi)]: 1.0, w_vars[i]: -rdown}, "<=", 0.0
                )

        # Eq. 2: per-resource capacity over all paths.
        by_resource: Dict[ResourceKey, Dict[str, float]] = {}
        for i in usable:
            entry = selections[i]
            for pi, src in enumerate(sources_per_sel[i]):
                path = view.flow_resources(src, entry.dst_server)
                if path is None:
                    # Partitioned source: pin its flow variable to zero.
                    lp.add_constraint({flow_vars[(i, pi)]: 1.0}, "<=", 0.0)
                    continue
                for res in set(path):
                    by_resource.setdefault(res, {})[flow_vars[(i, pi)]] = 1.0
        for res, coeffs in by_resource.items():
            cap = view.bulk_capacities.get(res, 0.0)
            lp.add_constraint(coeffs, "<=", cap)

        # Eq. 3: a selected block must complete within the cycle:
        # w * rho(b) <= sum_p f * dt.
        for i in usable:
            entry = selections[i]
            remaining = entry.block.size - view.received_bytes(
                entry.block.block_id, entry.dst_server
            )
            coeffs: Dict[str, float] = {w_vars[i]: remaining}
            for pi in range(len(sources_per_sel[i])):
                coeffs[flow_vars[(i, pi)]] = -dt
            lp.add_constraint(coeffs, "<=", 0.0)
            # A block cannot absorb more than its remaining bytes per cycle.
            lp.add_constraint(
                {
                    flow_vars[(i, pi)]: dt
                    for pi in range(len(sources_per_sel[i]))
                },
                "<=",
                remaining,
            )

        solution = lp.solve()

        directives: List[TransferDirective] = []
        for i in usable:
            entry = selections[i]
            for pi, src in enumerate(sources_per_sel[i]):
                rate = solution.values[flow_vars[(i, pi)]]
                if rate <= 1e-9:
                    continue
                directives.append(
                    TransferDirective(
                        job_id=entry.job_id,
                        block_ids=(entry.block.block_id,),
                        src_server=src,
                        dst_server=entry.dst_server,
                        rate_cap=rate,
                    )
                )
        return directives, RoutingDiagnostics(
            backend=self.backend,
            num_selections=len(selections),
            num_commodities=len(usable),
            objective=solution.objective,
            runtime=_time.perf_counter() - started,
        )


@dataclass
class JointPlan:
    """Result of the multi-cycle joint formulation."""

    num_cycles: int
    # (cycle, block index, path index) -> bytes/second.
    flows: Dict[Tuple[int, int, int], float]
    feasible: bool


class JointFormulation:
    """Minimum-cycle transfer planning, the intractable §4.1 original.

    ``blocks`` are byte sizes; ``paths_per_block`` lists, per block, the
    candidate paths (tuples of resource keys); ``capacities`` bound each
    resource per cycle. The plan must ship every block's full size within
    ``N`` cycles of ``dt`` seconds; the solver searches the smallest such N.
    """

    def __init__(
        self,
        blocks: Sequence[float],
        paths_per_block: Sequence[Sequence[Tuple[ResourceKey, ...]]],
        capacities: Mapping[ResourceKey, float],
        dt: float = 3.0,
    ) -> None:
        if len(blocks) != len(paths_per_block):
            raise ValueError("blocks and paths_per_block must align")
        if not blocks:
            raise ValueError("need at least one block")
        check_positive("dt", dt)
        self.blocks = [float(b) for b in blocks]
        self.paths = [list(p) for p in paths_per_block]
        self.capacities = dict(capacities)
        self.dt = dt

    def feasible_in(self, num_cycles: int) -> Optional[JointPlan]:
        """LP feasibility: can everything ship within ``num_cycles``?"""
        check_positive("num_cycles", num_cycles)
        lp = LinearProgram(maximize=False)
        flow_vars: Dict[Tuple[int, int, int], str] = {}
        for k in range(num_cycles):
            for bi, paths in enumerate(self.paths):
                for pi in range(len(paths)):
                    flow_vars[(k, bi, pi)] = lp.add_variable(
                        f"f_{k}_{bi}_{pi}", lower=0.0, objective=1.0
                    )
        # Per cycle per resource capacity.
        for k in range(num_cycles):
            by_resource: Dict[ResourceKey, Dict[str, float]] = {}
            for bi, paths in enumerate(self.paths):
                for pi, path in enumerate(paths):
                    for res in set(path):
                        by_resource.setdefault(res, {})[
                            flow_vars[(k, bi, pi)]
                        ] = 1.0
            for res, coeffs in by_resource.items():
                if res not in self.capacities:
                    raise KeyError(f"unknown resource {res!r}")
                lp.add_constraint(coeffs, "<=", self.capacities[res])
        # Eq. 4: full delivery of every block across all cycles.
        for bi, size in enumerate(self.blocks):
            coeffs = {
                flow_vars[(k, bi, pi)]: self.dt
                for k in range(num_cycles)
                for pi in range(len(self.paths[bi]))
            }
            if not coeffs:
                return None  # a block with no path can never ship
            lp.add_constraint(coeffs, ">=", size)
        try:
            solution = lp.solve()
        except LPError:
            return None
        flows = {
            key: solution.values[name]
            for key, name in flow_vars.items()
            if solution.values[name] > 1e-9
        }
        return JointPlan(num_cycles=num_cycles, flows=flows, feasible=True)

    def solve_min_cycles(self, max_cycles: int = 64) -> JointPlan:
        """Linear search for the minimum feasible N (the paper's objective).

        The search is linear rather than binary because infeasibility at N
        implies nothing cheap about N+1 bounds in general LP solvers, and
        N is small in every instance this class is meant for.
        """
        check_positive("max_cycles", max_cycles)
        for n in range(1, max_cycles + 1):
            plan = self.feasible_in(n)
            if plan is not None:
                return plan
        return JointPlan(num_cycles=max_cycles, flows={}, feasible=False)

"""Command-line interface for the BDS reproduction.

Four subcommands cover the workflows a user of the library needs without
writing Python:

* ``simulate``  — run one multicast over a synthetic mesh with any strategy;
* ``workload``  — generate a synthetic Baidu-like trace to a JSONL file;
* ``replay``    — replay a saved trace through the simulator;
* ``experiment``— run one of the paper's experiments by figure/table id;
* ``cache``     — inspect or purge the content-addressed run cache.

Multi-run experiments ride the parallel engine: ``--workers N`` fans the
runs out over a process pool and results are cached on disk by input
fingerprint (``--no-cache`` to bypass, ``cache purge`` to wipe).

Examples::

    python -m repro simulate --strategy bds --num-dcs 5 --size 200MB
    python -m repro workload --count 100 --out trace.jsonl
    python -m repro replay trace.jsonl --strategy bds --scale 1e-5
    python -m repro experiment fig3 --workers 4
    python -m repro cache stats
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import experiments as exps
from repro.analysis.metrics import summarize
from repro.analysis.reporting import format_cdf_rows, format_series, format_table
from repro.analysis.runner import STRATEGY_NAMES, run_simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import format_duration, parse_rate, parse_size
from repro.workload.generator import WorkloadGenerator
from repro.workload.traces import replay_as_jobs, save_trace


def _stride_arg(text: str) -> "int | str":
    """Parse ``--shard-stride``: a positive int or the literal ``auto``."""
    if text == "auto":
        return text
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("stride must be >= 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BDS (EuroSys'18) reproduction: inter-DC multicast overlay",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run one multicast over a mesh")
    sim.add_argument("--strategy", choices=STRATEGY_NAMES, default="bds")
    sim.add_argument("--num-dcs", type=int, default=4)
    sim.add_argument("--servers-per-dc", type=int, default=4)
    sim.add_argument("--wan", default="1GB/s", help="WAN link capacity")
    sim.add_argument("--nic", default="50MB/s", help="server NIC rate")
    sim.add_argument("--size", default="200MB", help="data size")
    sim.add_argument("--block-size", default="2MB")
    sim.add_argument("--cycle", type=float, default=3.0, help="cycle seconds")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-cycles", type=int, default=100_000)
    sim.add_argument(
        "--tick-engine",
        action="store_true",
        help="run the legacy fixed-tick loop (execute every cycle) instead "
        "of the event-driven core; results are bit-identical",
    )
    sim.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="number of concurrent multicast jobs (sources rotate across "
        "DCs); sharding partitions by job, so >1 makes --shards meaningful",
    )
    sim.add_argument(
        "--shards",
        type=int,
        default=1,
        help="controller shards: partition jobs across this many "
        "schedule+route pipelines with WAN-capacity reconciliation "
        "(1 = single controller, bit-identical to before the knob)",
    )
    sim.add_argument(
        "--shard-stride",
        type=_stride_arg,
        default=1,
        help="shard decide cadence: shard s re-decides only on cycles "
        "with cycle %% stride == s %% stride, replaying its cached "
        "directives in between (1 = every shard every cycle; 'auto' "
        "widens/narrows adaptively from measured per-shard walls)",
    )
    sim.add_argument(
        "--shard-partition",
        choices=("hash", "affinity"),
        default="hash",
        help="job-to-shard partition policy: seeded stable hash, or "
        "greedy source-DC affinity (co-locates jobs sharing a source, "
        "balanced by pair-count weight)",
    )
    sim.add_argument(
        "--json", default=None, help="write a JSON result export to this path"
    )

    wl = sub.add_parser("workload", help="generate a synthetic trace")
    wl.add_argument("--num-dcs", type=int, default=30)
    wl.add_argument("--count", type=int, default=100)
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--out", required=True, help="output JSONL path")

    rp = sub.add_parser("replay", help="replay a saved trace")
    rp.add_argument("trace", help="JSONL trace path")
    rp.add_argument("--strategy", choices=STRATEGY_NAMES, default="bds")
    rp.add_argument("--num-dcs", type=int, default=10)
    rp.add_argument("--servers-per-dc", type=int, default=4)
    rp.add_argument("--wan", default="500MB/s")
    rp.add_argument("--nic", default="25MB/s")
    rp.add_argument("--block-size", default="4MB")
    rp.add_argument("--scale", type=float, default=1e-5, help="size scale factor")
    rp.add_argument("--seed", type=int, default=0)

    ex = sub.add_parser("experiment", help="run a paper experiment")
    ex.add_argument(
        "name",
        choices=sorted(EXPERIMENTS),
        help="experiment id (paper figure/table)",
    )
    ex.add_argument("--seed", type=int, default=None)
    ex.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for multi-run experiments (1 = in-process)",
    )
    ex.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk run cache (always execute)",
    )
    ex.add_argument(
        "--cache-dir",
        default=None,
        help="run-cache directory (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    ex.add_argument(
        "--progress",
        action="store_true",
        help="stream `k/n done, ETA` progress lines to stderr",
    )

    ca = sub.add_parser("cache", help="inspect or purge the run cache")
    ca.add_argument("action", choices=("stats", "purge"))
    ca.add_argument(
        "--cache-dir",
        default=None,
        help="run-cache directory (default: .repro-cache or $REPRO_CACHE_DIR)",
    )
    return parser


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_simulate(args: argparse.Namespace) -> int:
    topo = Topology.full_mesh(
        num_dcs=args.num_dcs,
        servers_per_dc=args.servers_per_dc,
        wan_capacity=parse_rate(args.wan),
        uplink=parse_rate(args.nic),
    )
    jobs = []
    for j in range(max(1, args.jobs)):
        src = f"dc{j % args.num_dcs}"
        job = MulticastJob(
            job_id="cli" if args.jobs <= 1 else f"cli{j}",
            src_dc=src,
            dst_dcs=tuple(
                f"dc{i}" for i in range(args.num_dcs) if f"dc{i}" != src
            ),
            total_bytes=parse_size(args.size),
            block_size=parse_size(args.block_size),
        )
        job.bind(topo)
        jobs.append(job)
    result = run_simulation(
        topo,
        jobs,
        args.strategy,
        cycle_seconds=args.cycle,
        max_cycles=args.max_cycles,
        seed=args.seed,
        event_engine=not args.tick_engine,
        shards=args.shards,
        shard_stride=args.shard_stride,
        shard_partition=args.shard_partition,
    )
    if args.json:
        from repro.analysis.export import save_result

        save_result(result, args.json)
        print(f"result export written to {args.json}")
    if not result.all_complete:
        print(f"jobs did not complete within {args.max_cycles} cycles")
        return 1
    times = [
        t
        for job in jobs
        for t in result.server_completion_times(job.job_id)
    ]
    stats = summarize(times)
    completion = max(result.completion_time(job.job_id) for job in jobs)
    print(f"strategy          : {args.strategy}")
    print(f"completion        : {format_duration(completion)}")
    print(f"cycles            : {result.cycles_run}")
    if args.shards > 1:
        print(f"controller shards : {args.shards} (stride {args.shard_stride})")
    if result.cycles_decision_reused or result.cycles_fast_forwarded:
        print(
            "event engine      : "
            f"{result.cycles_decision_reused} cycles reused the decision, "
            f"{result.cycles_fast_forwarded} fast-forwarded"
        )
    print(
        "per-server times  : "
        f"median {stats.median:.1f}s  p90 {stats.p90:.1f}s  max {stats.maximum:.1f}s"
    )
    fractions = result.store.origin_fraction_by_server()
    if fractions:
        overlay = 1 - sum(fractions.values()) / len(fractions)
        print(f"via overlay paths : {overlay:.0%} of deliveries")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    generator = WorkloadGenerator(
        [f"dc{i}" for i in range(args.num_dcs)], seed=args.seed
    )
    requests = generator.generate(count=args.count)
    save_trace(requests, args.out)
    multicasts = sum(r.is_multicast for r in requests)
    print(
        f"wrote {len(requests)} requests ({multicasts} multicasts) to {args.out}"
    )
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    topo = Topology.full_mesh(
        num_dcs=args.num_dcs,
        servers_per_dc=args.servers_per_dc,
        wan_capacity=parse_rate(args.wan),
        uplink=parse_rate(args.nic),
    )
    jobs = replay_as_jobs(
        args.trace,
        topo,
        block_size=parse_size(args.block_size),
        size_scale=args.scale,
    )
    if not jobs:
        print("trace contains no multicasts that fit the topology")
        return 1
    result = run_simulation(topo, jobs, args.strategy, seed=args.seed)
    print(f"jobs completed : {len(result.job_completion)}/{len(jobs)}")
    if result.job_completion:
        durations = [
            result.job_completion[j.job_id] - j.arrival_time
            for j in jobs
            if j.job_id in result.job_completion
        ]
        stats = summarize(durations)
        print(
            "durations      : "
            f"median {format_duration(stats.median)}, "
            f"p90 {format_duration(stats.p90)}"
        )
    return 0 if result.all_complete else 1


def _run_fig3(seed: Optional[int], **run_opts) -> None:
    result = exps.exp_fig3_illustrative(
        seed=seed if seed is not None else 3, **run_opts
    )
    print(
        format_table(
            ["strategy", "time"],
            [
                ["direct", f"{result.direct_s:.0f}s"],
                ["chain", f"{result.chain_s:.0f}s"],
                ["bds", f"{result.bds_s:.0f}s"],
            ],
        )
    )


def _run_fig4(seed: Optional[int], **_run_opts) -> None:
    # Single-run experiment: the parallel engine has nothing to fan out.
    result = exps.exp_fig4_disjointness(seed=seed if seed is not None else 4)
    print(format_cdf_rows(result.ratios))
    print(f"bottleneck-disjoint pairs: {result.fraction_disjoint:.1%}")


def _run_fig5(seed: Optional[int], **_run_opts) -> None:
    result = exps.exp_fig5_gingko_vs_ideal(seed=seed if seed is not None else 5)
    print(format_cdf_rows(result.gingko_times, unit="s"))
    print(f"median gingko/ideal ratio: {result.median_ratio:.2f}x")


def _run_fig12c(seed: Optional[int], **run_opts) -> None:
    result = exps.exp_fig12c_cycle_length(
        seed=seed if seed is not None else 12, **run_opts
    )
    print(
        format_series(
            result.cycle_lengths_s,
            [round(t, 1) for t in result.completion_times_s],
            "cycle (s)",
            "completion (s)",
        )
    )


def _run_table3(seed: Optional[int], **run_opts) -> None:
    result = exps.exp_table3_overlay_comparison(
        seed=seed if seed is not None else 11, **run_opts
    )
    rows = [
        [setup] + [f"{times[s]:.0f}s" for s in ("bullet", "akamai", "bds")]
        for setup, times in result.times.items()
    ]
    print(format_table(["setup", "bullet", "akamai", "bds"], rows))


EXPERIMENTS = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig12c": _run_fig12c,
    "table3": _run_table3,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    cache = None
    if not args.no_cache:
        from repro.analysis.runcache import RunCache

        cache = RunCache(root=args.cache_dir)
    EXPERIMENTS[args.name](
        args.seed, workers=args.workers, cache=cache, progress=args.progress
    )
    if cache is not None:
        stats = cache.stats
        if stats.hits or stats.misses or stats.stores:
            print(
                f"cache: {stats.hits} hits, {stats.misses} misses, "
                f"{stats.stores} stored, {stats.invalid} invalid"
            )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.analysis.runcache import RunCache

    cache = RunCache(root=args.cache_dir)
    if args.action == "stats":
        print(f"cache dir : {cache.root}")
        print(f"entries   : {cache.entry_count()}")
        print(f"size      : {cache.size_bytes()} bytes")
        return 0
    removed = cache.purge()
    print(f"purged {removed} entries from {cache.root}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "cache":
        return _cmd_cache(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

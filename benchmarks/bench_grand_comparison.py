"""Grand comparison — every overlay strategy on the pilot-scale preset.

Not a single paper figure, but the evaluation's overall claim in one
table: on a realistic 10-DC topology (the pilot deployment's scale, three
metro clusters with tiered link capacities), BDS beats every baseline the
paper discusses — the decentralized receiver-driven overlay (Gingko), the
mesh overlay (Bullet), the 3-layer overlay (Akamai), chain replication,
and direct replication — while staying within a small factor of the
analytic ideal bound.
"""

from repro.analysis.reporting import format_table
from repro.analysis.runner import run_simulation
from repro.baselines.ideal import ideal_completion_time
from repro.net.presets import baidu_like
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB

STRATEGIES = ("direct", "chain", "akamai", "bullet", "gingko", "bds")


def _scenario():
    topo = baidu_like(servers_per_dc=4)
    job = MulticastJob(
        job_id="pilot",
        src_dc="bj1",
        dst_dcs=("bj2", "bj3", "bj4", "sh1", "sh2", "sh3", "gz1", "gz2", "gz3"),
        total_bytes=1 * GB,
        block_size=4 * MB,
    )
    job.bind(topo)
    return topo, job


def _run_all():
    times = {}
    for strategy in STRATEGIES:
        topo, job = _scenario()
        result = run_simulation(
            topo, [job], strategy, seed=42, max_cycles=20_000
        )
        times[strategy] = result.completion_time("pilot")
    topo, job = _scenario()
    times["ideal bound"] = ideal_completion_time(topo, job)
    return times


def test_grand_comparison(benchmark, report):
    times = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    bds = times["bds"]
    rows = [
        [name, f"{t:.0f}s", f"{t / bds:.1f}x"]
        for name, t in sorted(times.items(), key=lambda kv: kv[1])
    ]
    report(
        "\n[Grand comparison] 1 GB from bj1 to 9 DCs (pilot-scale preset)\n"
        + format_table(["strategy", "completion", "vs bds"], rows)
    )
    # BDS beats every baseline and stays within ~8 cycles of the bound.
    for name in STRATEGIES[:-1]:
        assert bds < times[name], f"bds should beat {name}"
    assert bds <= times["ideal bound"] * 10 + 24.0

"""Deterministic job→shard partitioning for the sharded control plane.

BDS's decision problem decomposes by job: blocks belong to exactly one
job, so possession state, scheduling and routing partition cleanly once
the job set is split — only WAN link budgets are shared across shards
(reconciled per cycle, see :mod:`repro.core.controller`). This module
owns the split itself.

The assignment must be

* **platform-stable** — the same ``(job_id, shards, seed)`` maps to the
  same shard on every interpreter, OS, and run. Python's builtin
  ``hash()`` is per-process salted (``PYTHONHASHSEED``) and therefore
  banned here; we hash the UTF-8 job id through BLAKE2b instead;
* **seeded** — ``seed`` keys the hash, so a pathological workload whose
  ids collide into one shard can be re-spread without renaming jobs;
* **independent of shard count history** — ``stable_shard`` is a pure
  function of its arguments, so adding jobs never moves existing ones
  (for a *shard-count* change, :func:`rebalance_moves` reports exactly
  which jobs migrate).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

JobLike = TypeVar("JobLike")

_DIGEST_SIZE = 8  # 64 bits of hash is plenty for a shard index


def _hash64(job_id: str, seed: int) -> int:
    """Seeded 64-bit BLAKE2b digest of a job id (platform-stable)."""
    key = int(seed).to_bytes(8, "little", signed=True)
    digest = hashlib.blake2b(
        job_id.encode("utf-8"), digest_size=_DIGEST_SIZE, key=key
    ).digest()
    return int.from_bytes(digest, "little")


def stable_shard(job_id: str, shards: int, seed: int = 0) -> int:
    """Shard index of ``job_id`` under ``shards`` shards.

    A pure function of its arguments: no process state, no iteration
    order, no ``hash()`` salt. The unit tests pin golden values so a
    platform or library change that silently moved jobs would fail loud.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return 0
    return _hash64(job_id, seed) % shards


def partition_jobs(
    jobs: Sequence[JobLike], shards: int, seed: int = 0
) -> List[List[JobLike]]:
    """Split ``jobs`` into ``shards`` lists by :func:`stable_shard`.

    Objects must expose ``job_id``. Relative order within each shard
    preserves the input order — the scheduler's job-iteration order is
    part of the deterministic contract, so a shard sees its jobs exactly
    as the single controller would have.
    """
    buckets: List[List[JobLike]] = [[] for _ in range(shards)]
    for job in jobs:
        buckets[stable_shard(job.job_id, shards, seed)].append(job)
    return buckets


def partition_indices(
    job_ids: Iterable[str], shards: int, seed: int = 0
) -> Dict[str, int]:
    """Mapping of each job id to its shard index."""
    return {jid: stable_shard(jid, shards, seed) for jid in job_ids}


def rebalance_moves(
    job_ids: Iterable[str],
    old_shards: int,
    new_shards: int,
    seed: int = 0,
) -> Dict[str, Tuple[int, int]]:
    """Jobs that change shards when resizing ``old_shards`` → ``new_shards``.

    Returns ``{job_id: (old_shard, new_shard)}`` for exactly the jobs
    that move. An operator resizing a sharded controller hands the moved
    jobs' possession state to the new owner and leaves the rest alone;
    the companion test asserts unmoved jobs keep their assignment.
    """
    moves: Dict[str, Tuple[int, int]] = {}
    for jid in job_ids:
        old = stable_shard(jid, old_shards, seed)
        new = stable_shard(jid, new_shards, seed)
        if old != new:
            moves[jid] = (old, new)
    return moves


def assignment_moves(
    old_assignment: Dict[str, int],
    new_assignment: Dict[str, int],
) -> Dict[str, Tuple[int, int]]:
    """Jobs that change shards between two explicit assignments.

    The policy-agnostic counterpart of :func:`rebalance_moves` for
    partitioners that are not pure functions of ``(job_id, shards,
    seed)`` — resizing an affinity-partitioned controller compares the
    old and re-derived assignments through this. Jobs present in only
    one of the assignments are ignored (they have nothing to hand over).
    """
    moves: Dict[str, Tuple[int, int]] = {}
    for jid, old in old_assignment.items():
        new = new_assignment.get(jid)
        if new is not None and new != old:
            moves[jid] = (old, new)
    return moves


def job_weight(job: JobLike) -> int:
    """Balance weight of one job: its (block, destination DC) pair count.

    Pairs are what the per-shard schedule/route work and possession
    state actually scale with, so the affinity assigner balances on them
    rather than on job counts. Never returns 0 (a pathological empty job
    still occupies a slot).
    """
    blocks = len(getattr(job, "blocks", ()) or ())
    dsts = len(getattr(job, "dst_dcs", ()) or ())
    return max(1, blocks * dsts)


class AffinityAssigner:
    """Greedy source-affinity job→shard assignment (incremental).

    Jobs sharing a source DC co-locate on that DC's *home shard*: their
    transfers leave the WAN over the same origin links, so deciding them
    together lets one shard see the contention the outer max-min
    reconciliation would otherwise have to resolve across shards —
    affinity partitioning measurably lowers the reconciliation clip
    count versus the hash partitioner (asserted by the shard-scaling
    benchmark and the CI smoke job).

    Balance: a job follows its home shard only while that shard's
    *current* load (sum of :func:`job_weight`, checked before the add so
    a perfectly balanced fleet keeps co-locating) stays within
    ``(1 + slack)`` of the post-assignment mean; otherwise it spills to
    the least-loaded shard, preferring the job's :func:`stable_shard`
    when that is among the minima (the documented hash fallback for
    ties) and the lowest shard index otherwise. The resulting bound —
    max shard weight ≤ ``(1 + slack) · mean + max job weight`` (the
    trailing term is the indivisible-job slack) — is asserted by the
    unit tests.

    Determinism: assignment depends only on the order jobs are first
    seen, their ``(src_dc, job_weight)``, and the seed — no wall clock,
    no ``hash()`` salt, no float accumulation (loads are ints). Feeding
    the same job sequence reproduces the same assignment on every
    platform. Assignments are sticky: once placed, a job never moves
    (possession state lives where the job lives), mirroring
    ``stable_shard``'s add-only stability.
    """

    def __init__(self, shards: int, seed: int = 0, slack: float = 0.25) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if slack < 0:
            raise ValueError("slack must be >= 0")
        self.shards = shards
        self.seed = seed
        self.slack = slack
        self.loads: List[int] = [0] * shards
        self.total: int = 0
        self.dc_home: Dict[str, int] = {}
        self.assignment: Dict[str, int] = {}

    def assign(self, job: JobLike) -> int:
        """Shard of ``job``, assigning it on first sight (sticky after)."""
        job_id = job.job_id
        shard = self.assignment.get(job_id)
        if shard is not None:
            return shard
        weight = job_weight(job)
        if self.shards == 1:
            shard = 0
        else:
            src_dc = getattr(job, "src_dc", "")
            home = self.dc_home.get(src_dc)
            cap = (1.0 + self.slack) * (self.total + weight) / self.shards
            if home is not None and self.loads[home] <= cap:
                shard = home
            else:
                lo = min(self.loads)
                hashed = stable_shard(job_id, self.shards, self.seed)
                if self.loads[hashed] == lo:
                    shard = hashed
                else:
                    shard = self.loads.index(lo)
                if home is None:
                    self.dc_home[src_dc] = shard
        self.loads[shard] += weight
        self.total += weight
        self.assignment[job_id] = shard
        return shard


def affinity_partition(
    jobs: Sequence[JobLike], shards: int, seed: int = 0, slack: float = 0.25
) -> Dict[str, int]:
    """One-shot :class:`AffinityAssigner` over ``jobs`` in order."""
    assigner = AffinityAssigner(shards, seed=seed, slack=slack)
    return {job.job_id: assigner.assign(job) for job in jobs}

"""Fig. 3 — the illustrative 36 GB example: direct vs chain vs BDS.

Paper: direct replication 18 s, simple chain replication 13 s, intelligent
multicast overlay 9 s (1 : 0.72 : 0.5). The reproduction's asymmetric
triangle reproduces the ordering and similar ratios.
"""

from repro.analysis.experiments import exp_fig3_illustrative
from repro.analysis.reporting import format_table


def test_fig3_direct_vs_chain_vs_bds(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig3_illustrative(seed=3), rounds=1, iterations=1
    )
    rows = [
        ["direct (no overlay)", f"{result.direct_s:.0f}s", "18s"],
        ["simple chain", f"{result.chain_s:.0f}s", "13s"],
        ["BDS (intelligent overlay)", f"{result.bds_s:.0f}s", "9s"],
    ]
    report(
        "\n[Fig. 3] 36 GB from A to {B, C}\n"
        + format_table(["strategy", "measured", "paper"], rows)
        + f"\n  direct/BDS speedup: {result.direct_s / result.bds_s:.1f}x (paper 2.0x)"
    )
    assert result.bds_s < result.chain_s < result.direct_s

"""Analysis metrics and text reporting."""

import pytest

from repro.analysis.metrics import (
    cdf_at,
    empirical_cdf,
    fraction_above,
    percentile,
    speedup,
    summarize,
)
from repro.analysis.reporting import (
    format_cdf_rows,
    format_series,
    format_table,
    sparkline,
)


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == pytest.approx(3.0)
        assert stats.minimum == 1
        assert stats.maximum == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_p90(self):
        stats = summarize(list(range(101)))
        assert stats.p90 == pytest.approx(90.0)


class TestCdfHelpers:
    def test_empirical_cdf(self):
        xs, ps = empirical_cdf([3, 1, 2])
        assert xs == [1, 2, 3]
        assert ps == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)

    def test_fraction_above(self):
        assert fraction_above([1, 2, 3, 4], 3) == pytest.approx(0.25)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            cdf_at([], 0)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10, 2) == pytest.approx(5.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestReporting:
    def test_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_table_float_formatting(self):
        text = format_table(["v"], [[1234567.0], [0.0001]])
        assert "1.23e+06" in text
        assert "0.0001" in text

    def test_cdf_rows(self):
        text = format_cdf_rows([1.0] * 10, quantiles=(50, 90), unit="s")
        assert "p50" in text
        assert "1.000s" in text

    def test_series_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1.0])

    def test_series_renders_rows(self):
        text = format_series([1, 2], [0.5, 0.7], "cycle", "util")
        assert "cycle" in text and "util" in text
        assert len(text.splitlines()) == 4

    def test_sparkline_monotonic(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "█"

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_constant_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "   "

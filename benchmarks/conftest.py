"""Benchmark harness conventions.

Every benchmark regenerates one of the paper's tables or figures on the
simulated substrate and prints the same rows/series the paper reports
(bypassing pytest's capture so the output is visible in a plain
``pytest benchmarks/ --benchmark-only`` run). Absolute numbers differ from
the paper — the substrate is a simulator, not Baidu's WAN — but the shape
(who wins, by what factor, where the knees are) is the reproduction target.
See EXPERIMENTS.md for the paper-vs-measured record.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment output past pytest's capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print(text)

    return _report

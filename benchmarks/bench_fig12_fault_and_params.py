"""Fig. 12 — fault tolerance (a), block-size (b) and cycle-length (c) sweeps.

Paper: (a) an agent failure at cycle 10 dents throughput for one cycle; a
controller outage during cycles 20–30 degrades gracefully to the
decentralized fallback and recovers immediately; (b) 2 MB blocks finish
1.5–2x faster than 64 MB blocks; (c) completion time improves as the
update cycle shrinks, with diminishing returns below ~3 s (overhead grows).
"""

import statistics

from repro.analysis.experiments import (
    exp_fig12a_fault_tolerance,
    exp_fig12b_block_size,
    exp_fig12c_cycle_length,
)
from repro.analysis.reporting import format_series, format_table, sparkline


def test_fig12a_fault_tolerance(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig12a_fault_tolerance(seed=12), rounds=1, iterations=1
    )
    series = result.blocks_per_cycle
    normal = statistics.mean(series[3:10])
    fallback = statistics.mean(series[21:29])
    rows = [
        ["normal blocks/cycle (3-9)", f"{normal:.1f}"],
        ["agent-failure cycle 10", f"{series[10]}"],
        ["fallback blocks/cycle (21-29)", f"{fallback:.1f}"],
        ["post-recovery cycle 31", f"{series[31] if len(series) > 31 else 0}"],
    ]
    report(
        "\n[Fig. 12a] Downloaded blocks per cycle under failures\n"
        + format_table(["phase", "blocks"], rows)
        + "\n  series: "
        + sparkline([float(v) for v in series])
        + f"\n  (agent fails @10, controller down @20-30; {len(series)} cycles)"
    )
    assert fallback > 0  # graceful degradation, not a stall
    assert normal > fallback  # centralized control beats the fallback


def test_fig12b_block_size(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig12b_block_size(seed=12), rounds=1, iterations=1
    )
    small = result.per_dc_times["2M/blk"]
    large = result.per_dc_times["64M/blk"]
    rows = [
        [f"dc{i + 1}", f"{s:.0f}s", f"{lg:.0f}s", f"{lg / s:.2f}x"]
        for i, (s, lg) in enumerate(zip(small, large))
    ]
    report(
        "\n[Fig. 12b] Completion time per destination DC by block size\n"
        + format_table(["DC", "2M/blk", "64M/blk", "ratio"], rows)
        + "\n  paper: 2 MB blocks are 1.5-2x faster"
    )
    assert statistics.mean(large) > statistics.mean(small)


def test_fig12c_cycle_length(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig12c_cycle_length(seed=12), rounds=1, iterations=1
    )
    from repro.analysis.plots import ascii_xy

    report(
        "\n[Fig. 12c] Completion time vs update-cycle length\n"
        + format_series(
            result.cycle_lengths_s,
            [round(t, 1) for t in result.completion_times_s],
            "cycle (s)",
            "completion (s)",
        )
        + "\n"
        + ascii_xy(
            result.cycle_lengths_s,
            result.completion_times_s,
            x_label="cycle length (s)",
            y_label="completion (s)",
        )
        + "\n  paper: knee around 3 s; very long cycles hurt"
    )
    by_len = dict(zip(result.cycle_lengths_s, result.completion_times_s))
    # Long cycles are clearly worse than the 3 s default.
    assert by_len[95] > by_len[3]

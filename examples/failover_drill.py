#!/usr/bin/env python3
"""Scenario: a fault-tolerance drill during a large replication.

Reproduces the paper's §5.3/§6.3.2 story end to end: mid-transfer, one
agent crashes; later the whole controller replica group is partitioned
away and the fleet falls back to the decentralized overlay protocol;
finally the controller recovers. The drill prints per-cycle delivery
throughput so the dip / degradation / recovery phases are visible, and
demonstrates the replica-set failover logic alongside.

Run:  python examples/failover_drill.py
"""

from repro import (
    BDSController,
    ControllerReplicaSet,
    FailureEvent,
    FailureSchedule,
    MulticastJob,
    SimConfig,
    Simulation,
    Topology,
)
from repro.utils.units import MB, MBps, format_duration


def replica_set_demo() -> None:
    """Leader election at a glance: 3 replicas, 2 failures, recovery."""
    print("controller replica group:")
    replicas = ControllerReplicaSet()
    print(f"  leader: {replicas.leader}")
    replicas.fail("controller-0")
    replicas.tick()
    print(f"  after leader crash  -> new leader: {replicas.leader}")
    replicas.fail_all()
    replicas.tick()
    print(f"  after full partition -> leader: {replicas.leader} (fallback mode)")
    replicas.recover_all()
    replicas.tick()
    print(f"  after recovery      -> leader: {replicas.leader}\n")


def main() -> None:
    replica_set_demo()

    topology = Topology.full_mesh(
        num_dcs=3,
        servers_per_dc=6,
        wan_capacity=200 * MBps,
        uplink=1.5 * MBps,
    )
    job = MulticastJob(
        job_id="drill",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=600 * MB,
        block_size=2 * MB,
    )
    job.bind(topology)

    schedule = FailureSchedule(
        [
            FailureEvent(cycle=10, kind="agent_fail", target="dc1-s0"),
            FailureEvent(cycle=11, kind="agent_recover", target="dc1-s0"),
            FailureEvent(cycle=20, kind="controller_fail"),
            FailureEvent(cycle=30, kind="controller_recover"),
        ]
    )
    controller = BDSController(seed=1)
    result = Simulation(
        topology=topology,
        jobs=[job],
        strategy=controller,
        config=SimConfig(cycle_seconds=3.0, max_cycles=200),
        failures=schedule,
        seed=1,
    ).run()

    print("cycle | blocks delivered | phase")
    for stats in result.cycle_stats:
        if stats.cycle == 10:
            phase = "<- agent dc1-s0 fails"
        elif stats.cycle == 20:
            phase = "<- controller down: decentralized fallback"
        elif stats.cycle == 30:
            phase = "<- controller recovered"
        elif not stats.controller_available:
            phase = "   (fallback)"
        else:
            phase = ""
        print(f"{stats.cycle:5d} | {stats.blocks_delivered:16d} | {phase}")

    if result.all_complete:
        print(f"\ntransfer completed in {format_duration(result.completion_time('drill'))}"
              f" despite both failures")
    else:
        print("\ntransfer did not complete within the drill window")


if __name__ == "__main__":
    main()

"""Parameter sweeps: completion time as a function of one scenario knob.

The paper's evaluation sweeps block size and cycle length (Fig. 12b/12c);
downstream users additionally want capacity planning: *how much WAN/NIC
bandwidth or how many servers does a replication deadline require?* This
module provides a small declarative sweep harness reused by the Fig. 12
experiments, the ablations, and the capacity-planning example.

Sweep points are independent runs, so the harness rides the parallel
experiment engine (:mod:`repro.analysis.parallel`): pass ``workers=N``
to fan the points out over a process pool (results bit-identical to the
serial default) and ``cache=RunCache()`` to skip points whose inputs are
already cached on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.simulator import SimResult
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike


@dataclass
class SweepPoint:
    """One sweep sample: the knob value and the resulting metrics."""

    value: float
    completion_time: float
    cycles: int
    all_complete: bool


@dataclass
class SweepResult:
    """All samples of one sweep, in the order they were run."""

    knob: str
    strategy: str
    points: List[SweepPoint] = field(default_factory=list)

    def values(self) -> List[float]:
        return [p.value for p in self.points]

    def completion_times(self) -> List[float]:
        return [p.completion_time for p in self.points]

    def cheapest_meeting_deadline(self, deadline_s: float) -> Optional[SweepPoint]:
        """The smallest knob value whose run met the deadline.

        Assumes the sweep was run in ascending knob order and that larger
        values don't hurt (monotone capacity knobs); returns ``None`` when
        no sampled value meets the deadline.
        """
        for point in self.points:
            if point.all_complete and point.completion_time <= deadline_s:
                return point
        return None


ScenarioFactory = Callable[[float], Tuple[Topology, List[MulticastJob]]]


def _sweep_specs(
    knob: str,
    values: Sequence[float],
    scenario: ScenarioFactory,
    strategy: str,
    cycle_seconds: float,
    max_cycles: int,
    seed: SeedLike,
) -> List:
    """One :class:`RunSpec` per knob value, factory-fresh per execution."""
    from repro.analysis.parallel import RunSpec

    def make_scenario(value: float):
        def _scenario() -> Tuple[Topology, List[MulticastJob]]:
            topo, jobs = scenario(float(value))
            if not jobs:
                raise ValueError(
                    f"scenario produced no jobs for {knob}={value}"
                )
            return topo, jobs

        return _scenario

    return [
        RunSpec(
            strategy=strategy,
            seed=seed,
            scenario=make_scenario(value),
            label=f"{strategy}:{knob}={value}",
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
        )
        for value in values
    ]


def _point_from_result(value: float, run: SimResult) -> SweepPoint:
    completion = (
        max(run.job_completion.values()) if run.all_complete else float("inf")
    )
    return SweepPoint(
        value=float(value),
        completion_time=completion,
        cycles=run.cycles_run,
        all_complete=run.all_complete,
    )


def sweep(
    knob: str,
    values: Sequence[float],
    scenario: ScenarioFactory,
    strategy: str = "bds",
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = 0,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> SweepResult:
    """Run ``scenario(value)`` for every knob value and collect metrics.

    ``scenario`` builds a *fresh* topology and bound job list per value —
    sharing state between runs is the classic sweep bug, so the factory
    contract makes it impossible. Points are merged in value order
    regardless of ``workers``.
    """
    from repro.analysis.parallel import run_many

    if not values:
        raise ValueError("sweep needs at least one value")
    specs = _sweep_specs(
        knob, values, scenario, strategy, cycle_seconds, max_cycles, seed
    )
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    result = SweepResult(knob=knob, strategy=strategy)
    for value, outcome in zip(values, outcomes):
        if not outcome.ok:
            raise RuntimeError(
                f"sweep point {knob}={value} failed: {outcome.error}"
            )
        result.points.append(_point_from_result(value, outcome.result))
    return result


def compare_sweeps(
    knob: str,
    values: Sequence[float],
    scenario: ScenarioFactory,
    strategies: Sequence[str],
    seed: SeedLike = 0,
    cycle_seconds: float = 3.0,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Dict[str, SweepResult]:
    """The same sweep under several strategies (for crossover hunting).

    The full strategy × value matrix is submitted as *one* batch, so
    ``workers=N`` parallelizes across strategies as well as values.
    """
    from repro.analysis.parallel import run_many

    if not values:
        raise ValueError("sweep needs at least one value")
    all_specs = []
    for strategy in strategies:
        all_specs.extend(
            _sweep_specs(
                knob, values, scenario, strategy, cycle_seconds, 100_000, seed
            )
        )
    outcomes = run_many(all_specs, workers=workers, cache=cache, progress=progress)
    results: Dict[str, SweepResult] = {}
    for s_index, strategy in enumerate(strategies):
        result = SweepResult(knob=knob, strategy=strategy)
        for v_index, value in enumerate(values):
            outcome = outcomes[s_index * len(values) + v_index]
            if not outcome.ok:
                raise RuntimeError(
                    f"sweep point {strategy}/{knob}={value} failed: "
                    f"{outcome.error}"
                )
            result.points.append(_point_from_result(value, outcome.result))
        results[strategy] = result
    return results

"""Simple chain replication through relay servers (the Fig. 3c strategy).

Data flows along a fixed chain: source DC → destination DC 1 → destination
DC 2 → …, with one designated relay server per DC storing and forwarding
blocks in index order. This is the "naive use of application-level overlay
paths" the paper contrasts with BDS's intelligent multicast overlay: better
than direct unicast (it reuses the relay's bandwidth) but unable to use
multiple bottleneck-disjoint paths at once.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob
from repro.utils.validation import check_positive


class ChainStrategy(OverlayStrategy):
    """Store-and-forward down a fixed DC chain via one relay per DC."""

    uses_controller_rates = False
    respects_safety_threshold = False
    # Deterministic chain construction from sorted ids; reusable under
    # the event engine's validity key.
    decisions_reusable = True

    def __init__(self, window: int = 16) -> None:
        """``window``: in-flight block window per hop (in index order)."""
        check_positive("window", window)
        self.window = window
        self._relays: Dict[str, List[str]] = {}  # job_id -> relay chain

    def _chain_for(self, view: ClusterView, job: MulticastJob) -> List[str]:
        """Relay servers: source stripe stays put; one relay per dest DC."""
        if job.job_id not in self._relays:
            chain: List[str] = []
            for dc in job.dst_dcs:
                servers = view.topology.servers_in(dc)
                chain.append(servers[0].server_id)
            self._relays[job.job_id] = chain
        return self._relays[job.job_id]

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        directives: List[TransferDirective] = []
        for job in view.jobs:
            chain = self._chain_for(view, job)
            directives.extend(self._feed_chain(view, job, chain))
            directives.extend(self._fan_out_inside_dcs(view, job, chain))
        return directives

    def _feed_chain(
        self, view: ClusterView, job: MulticastJob, chain: List[str]
    ) -> List[TransferDirective]:
        """Move blocks hop by hop along the relay chain, in order."""
        directives: List[TransferDirective] = []
        for hop, relay in enumerate(chain):
            if not view.agent_is_up(relay):
                continue
            missing = [
                b for b in job.blocks if not view.store.has(relay, b.block_id)
            ][: self.window]
            partition: Dict[str, List[Block]] = {}
            for block in missing:
                src = self._upstream_holder(view, job, chain, hop, block, relay)
                if src is None:
                    continue
                partition.setdefault(src, []).append(block)
            directives.extend(self.directives_for_partition(job, relay, partition))
        return directives

    def _fan_out_inside_dcs(
        self, view: ClusterView, job: MulticastJob, chain: List[str]
    ) -> List[TransferDirective]:
        """Each destination server pulls its shard from its DC's relay."""
        directives: List[TransferDirective] = []
        by_server = self.missing_blocks_by_server(view, job)
        relay_by_dc = {view.store.dc_of(r): r for r in chain}
        for dst_server, missing in by_server.items():
            relay = relay_by_dc.get(view.store.dc_of(dst_server))
            if relay is None or relay == dst_server:
                continue
            blocks = [
                b
                for b in sorted(missing)
                if view.store.has(relay, b.block_id)
            ][: self.window]
            if not blocks:
                continue
            directives.extend(
                self.directives_for_partition(job, dst_server, {relay: blocks})
            )
        return directives

    @staticmethod
    def _upstream_holder(
        view: ClusterView,
        job: MulticastJob,
        chain: List[str],
        hop: int,
        block: Block,
        exclude: str,
    ) -> Optional[str]:
        """The upstream sender for a relay: previous relay, or the origin."""
        if hop > 0:
            upstream = chain[hop - 1]
            if view.agent_is_up(upstream) and view.store.has(
                upstream, block.block_id
            ):
                return upstream
            return None
        for server in view.eligible_sources(block.block_id):
            if view.store.dc_of(server) == job.src_dc and server != exclude:
                return server
        return None

"""Exporting simulation results to JSON for external analysis.

:class:`~repro.net.simulator.SimResult` holds live objects (the possession
index, cycle stats); this module flattens the analysis-relevant parts into
plain JSON so results can be archived, diffed across runs, or loaded into
other tools. Resource keys are rendered as ``kind:part:part`` strings.

Since format version 3 the export is also a *round-trip* format:
:func:`result_from_dict` rebuilds a :class:`SimResult` whose completion
metrics, cycle stats, and per-server origin fractions match the original
bit-for-bit. The content-addressed run cache
(:mod:`repro.analysis.runcache`) stores exactly these payloads, so a cache
hit hands back a result interchangeable with a live run for every
analysis consumer. Only the live possession internals (per-block holder
sets, delivery records) and feedback samples are not carried across.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.net.simulator import CycleStats, SimResult

PathLike = Union[str, Path]

EXPORT_FORMAT_VERSION = 8

#: Versions :func:`result_from_dict` can restore. v3 payloads predate the
#: routing-solver telemetry (iterations/phases/warm_start), v4 payloads
#: predate the data-plane fields (stage ``deliver_apply``, per-cycle
#: ``rate_stalemates``), v5 payloads predate the event-engine
#: accounting (per-cycle ``decision_reused``/``fast_forwarded``, top-level
#: ``cycles_decision_reused``/``cycles_fast_forwarded``), v6 payloads
#: predate the sharded control-plane telemetry (per-cycle ``sharding``
#: subdict: shard count, per-shard walls, reconciliation wall), and v7
#: payloads predate the shard-local state telemetry (``sharding`` gains
#: the effective ``stride`` and per-shard ``state_bytes`` /
#: ``candidate_bytes`` / ``payload_bytes``); all simply restore to the
#: zero/false defaults.
_READABLE_VERSIONS = (3, 4, 5, 6, 7, 8)


def _resource_to_str(key) -> str:
    return ":".join(str(part) for part in key)


def _resource_from_str(text: str) -> Tuple[str, ...]:
    return tuple(text.split(":"))


def result_to_dict(result: SimResult, include_cycles: bool = True) -> Dict[str, Any]:
    """Flatten a :class:`SimResult` into JSON-serializable primitives."""
    payload: Dict[str, Any] = {
        "format_version": EXPORT_FORMAT_VERSION,
        "cycles_run": result.cycles_run,
        "sim_time": result.sim_time,
        "wall_time": result.wall_time,
        "all_complete": result.all_complete,
        "job_completion": dict(result.job_completion),
        "dc_completion": {
            f"{job}/{dc}": t for (job, dc), t in result.dc_completion.items()
        },
        "server_completion": {
            f"{job}/{server}": t
            for (job, server), t in result.server_completion.items()
        },
        # Unambiguous key lists for the round-trip ("/" in a job id would
        # corrupt the flattened keys above).
        "dc_completion_items": [
            [job, dc, t] for (job, dc), t in result.dc_completion.items()
        ],
        "server_completion_items": [
            [job, server, t]
            for (job, server), t in result.server_completion.items()
        ],
        "origin_fraction_by_server": result.store.origin_fraction_by_server(),
        "total_bytes_transferred": result.total_bytes_transferred(),
        "cycles_decision_reused": result.cycles_decision_reused,
        "cycles_fast_forwarded": result.cycles_fast_forwarded,
    }
    if include_cycles:
        payload["cycles"] = [
            {
                "cycle": s.cycle,
                "time": s.time,
                "blocks_delivered": s.blocks_delivered,
                "bytes_transferred": s.bytes_transferred,
                "active_flows": s.active_flows,
                "controller_available": s.controller_available,
                "link_bulk_usage": {
                    _resource_to_str(k): v for k, v in s.link_bulk_usage.items()
                },
                "link_online_usage": {
                    _resource_to_str(k): v
                    for k, v in s.link_online_usage.items()
                },
                "max_delay_inflation": s.max_delay_inflation,
                "stage_times": {
                    "view_build": s.time_view_build,
                    "decide": s.time_decide,
                    "schedule": s.time_schedule,
                    "route": s.time_route,
                    "rate_resolve": s.time_rate_resolve,
                    "deliver": s.time_deliver,
                    "deliver_apply": s.time_deliver_apply,
                },
                "rate_stalemates": s.rate_stalemates,
                "routing_solver": {
                    "iterations": s.routing_iterations,
                    "phases": s.routing_phases,
                    "warm_start": s.routing_warm_start,
                },
                "decision_reused": s.decision_reused,
                "fast_forwarded": s.fast_forwarded,
                "sharding": {
                    "shard_count": s.shard_count,
                    "shard_max": s.time_shard_max,
                    "shard_mean": s.time_shard_mean,
                    "reconcile": s.time_reconcile,
                    "stride": s.shard_stride,
                    "state_bytes": s.shard_state_bytes,
                    "candidate_bytes": s.shard_candidate_bytes,
                    "payload_bytes": s.shard_payload_bytes,
                },
            }
            for s in result.cycle_stats
        ]
    return payload


class RestoredPossession:
    """Read-only stand-in for a :class:`PossessionIndex` in restored results.

    Exports keep the evaluation-facing aggregate (the Fig. 13c per-server
    origin fractions) but not the live holder sets, so a restored result
    supports ``store.origin_fraction_by_server()`` and nothing else.
    """

    def __init__(self, origin_fractions: Dict[str, float]) -> None:
        self._origin_fractions = dict(origin_fractions)

    def origin_fraction_by_server(self) -> Dict[str, float]:
        return dict(self._origin_fractions)


def result_from_dict(payload: Dict[str, Any]) -> SimResult:
    """Rebuild a :class:`SimResult` from a format-v3..v8 export payload.

    The inverse of :func:`result_to_dict` for everything the analysis
    layer consumes: completion dicts (bit-identical — JSON round-trips
    floats exactly), cycle stats with stage timings and link usage, and a
    :class:`RestoredPossession` carrying the origin fractions.
    """
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported export format version {version!r} "
            f"(expected one of {_READABLE_VERSIONS})"
        )
    cycle_stats: List[CycleStats] = []
    for entry in payload.get("cycles", []):
        stage = entry.get("stage_times", {})
        solver = entry.get("routing_solver", {})
        sharding = entry.get("sharding", {})
        cycle_stats.append(
            CycleStats(
                cycle=entry["cycle"],
                time=entry["time"],
                blocks_delivered=entry["blocks_delivered"],
                bytes_transferred=entry["bytes_transferred"],
                active_flows=entry["active_flows"],
                controller_available=entry["controller_available"],
                link_bulk_usage={
                    _resource_from_str(k): v
                    for k, v in entry.get("link_bulk_usage", {}).items()
                },
                link_online_usage={
                    _resource_from_str(k): v
                    for k, v in entry.get("link_online_usage", {}).items()
                },
                max_delay_inflation=entry.get("max_delay_inflation", 1.0),
                time_view_build=stage.get("view_build", 0.0),
                time_decide=stage.get("decide", 0.0),
                time_schedule=stage.get("schedule", 0.0),
                time_route=stage.get("route", 0.0),
                time_rate_resolve=stage.get("rate_resolve", 0.0),
                time_deliver=stage.get("deliver", 0.0),
                time_deliver_apply=stage.get("deliver_apply", 0.0),
                rate_stalemates=entry.get("rate_stalemates", 0),
                routing_iterations=solver.get("iterations", 0),
                routing_phases=solver.get("phases", 0),
                routing_warm_start=solver.get("warm_start", ""),
                decision_reused=entry.get("decision_reused", False),
                fast_forwarded=entry.get("fast_forwarded", False),
                shard_count=sharding.get("shard_count", 0),
                time_shard_max=sharding.get("shard_max", 0.0),
                time_shard_mean=sharding.get("shard_mean", 0.0),
                time_reconcile=sharding.get("reconcile", 0.0),
                shard_stride=sharding.get("stride", 0),
                shard_state_bytes=sharding.get("state_bytes", 0),
                shard_candidate_bytes=sharding.get("candidate_bytes", 0),
                shard_payload_bytes=sharding.get("payload_bytes", 0),
            )
        )
    return SimResult(
        cycles_run=payload["cycles_run"],
        sim_time=payload["sim_time"],
        wall_time=payload["wall_time"],
        job_completion=dict(payload["job_completion"]),
        dc_completion={
            (job, dc): t for job, dc, t in payload["dc_completion_items"]
        },
        server_completion={
            (job, server): t
            for job, server, t in payload["server_completion_items"]
        },
        cycle_stats=cycle_stats,
        store=RestoredPossession(payload.get("origin_fraction_by_server", {})),
        all_complete=payload["all_complete"],
        cycles_decision_reused=payload.get("cycles_decision_reused", 0),
        cycles_fast_forwarded=payload.get("cycles_fast_forwarded", 0),
    )


def save_result(
    result: SimResult, path: PathLike, include_cycles: bool = True
) -> None:
    """Write a result export to ``path`` as pretty-printed JSON."""
    payload = result_to_dict(result, include_cycles=include_cycles)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result_dict(path: PathLike) -> Dict[str, Any]:
    """Read a result export back as a dictionary (not a live SimResult)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported export format version {version!r} "
            f"(expected one of {_READABLE_VERSIONS})"
        )
    return payload


def load_result(path: PathLike) -> SimResult:
    """Read a result export back as a restored :class:`SimResult`."""
    return result_from_dict(load_result_dict(path))

"""Direct replication: no overlay at all (the Fig. 3b strategy).

The source DC unicasts the data separately to every destination DC over the
network-layer WAN path. Destination servers pull their shard blocks straight
from the origin holders; copies that already arrived elsewhere are never
reused. This is the baseline every overlay improves on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob
from repro.utils.validation import check_positive


class DirectStrategy(OverlayStrategy):
    """Source-DC-only senders; one unicast stream per destination server."""

    uses_controller_rates = False
    respects_safety_threshold = False
    # Pure function of possession/failures/active jobs — no RNG, no
    # cycle-keyed behavior — so the event engine may replay decisions.
    decisions_reusable = True

    def __init__(self, window: int = 32) -> None:
        """``window``: maximum blocks requested per receiver per cycle."""
        check_positive("window", window)
        self.window = window

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        directives: List[TransferDirective] = []
        for job in view.jobs:
            by_server = self.missing_blocks_by_server(view, job)
            for dst_server, missing in by_server.items():
                partition: Dict[str, List[Block]] = {}
                for block in sorted(missing)[: self.window]:
                    src = self._origin_holder(view, job, block)
                    if src is None or src == dst_server:
                        continue
                    partition.setdefault(src, []).append(block)
                directives.extend(
                    self.directives_for_partition(job, dst_server, partition)
                )
        return directives

    @staticmethod
    def _origin_holder(
        view: ClusterView, job: MulticastJob, block: Block
    ) -> Optional[str]:
        """Only origin-DC holders count: direct replication reuses nothing."""
        for server in view.eligible_sources(block.block_id):
            if view.store.dc_of(server) == job.src_dc:
                return server
        return None

"""Job priorities: urgent replications beat background syncs."""


from repro.core import BDSController
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def contended_setup(priority_a=0, priority_b=0):
    """Two equal jobs sharing the same source DC uplinks."""
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=4 * MBps
    )
    a = MulticastJob(
        job_id="a", src_dc="dc0", dst_dcs=("dc1", "dc2"),
        total_bytes=48 * MB, block_size=4 * MB, priority=priority_a,
    )
    b = MulticastJob(
        job_id="b", src_dc="dc0", dst_dcs=("dc1", "dc2"),
        total_bytes=48 * MB, block_size=4 * MB, priority=priority_b,
    )
    a.bind(topo)
    b.bind(topo)
    return topo, [a, b]


class TestPriorityScheduling:
    def test_default_priority_is_zero(self):
        _topo, jobs = contended_setup()
        assert jobs[0].priority == 0

    def test_high_priority_selections_sort_first(self):
        topo, jobs = contended_setup(priority_a=0, priority_b=5)
        sim = Simulation(topo, jobs, BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        job_order = [s.job_id for s in selections]
        first_a = job_order.index("a")
        last_b = len(job_order) - 1 - job_order[::-1].index("b")
        assert last_b < first_a

    def test_high_priority_job_finishes_first(self):
        topo, jobs = contended_setup(priority_a=0, priority_b=5)
        result = Simulation(
            topo, jobs, BDSController(seed=0), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete
        assert result.completion_time("b") < result.completion_time("a")

    def test_equal_priority_ties_on_rarity(self):
        topo, jobs = contended_setup()
        sim = Simulation(topo, jobs, BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        selections = RarestFirstScheduler().select(view)
        duplicates = [s.duplicates for s in selections]
        assert duplicates == sorted(duplicates)

    def test_priority_does_not_break_completion(self):
        topo, jobs = contended_setup(priority_a=3, priority_b=1)
        result = Simulation(
            topo, jobs, BDSController(seed=0), SimConfig(max_cycles=3000), seed=0
        ).run()
        assert result.all_complete
        assert result.completion_time("a") <= result.completion_time("b")

"""Dynamic bandwidth separation: monitor, budgets, enforcer."""

import pytest

from repro.core.bandwidth import BandwidthEnforcer, NetworkMonitor, residual_budget
from repro.net.background import BackgroundTraffic
from repro.net.topology import Topology, wan_key
from repro.utils.units import MBps


class TestResidualBudget:
    def test_basic(self):
        assert residual_budget(100, 30, threshold=0.8) == pytest.approx(50)

    def test_clamped_at_zero(self):
        assert residual_budget(100, 95, threshold=0.8) == 0.0

    def test_zero_online(self):
        assert residual_budget(100, 0, threshold=0.8) == pytest.approx(80)

    def test_validation(self):
        with pytest.raises(ValueError):
            residual_budget(0, 0)
        with pytest.raises(ValueError):
            residual_budget(100, -1)
        with pytest.raises(ValueError):
            residual_budget(100, 10, threshold=1.2)


class TestNetworkMonitor:
    @pytest.fixture
    def topo(self):
        return Topology.full_mesh(
            num_dcs=2, servers_per_dc=1, wan_capacity=100 * MBps, uplink=10 * MBps
        )

    def test_no_background_means_full_threshold(self, topo):
        monitor = NetworkMonitor(topo)
        budgets = monitor.bulk_budgets(0.0)
        assert budgets[wan_key("dc0", "dc1")] == pytest.approx(80 * MBps)

    def test_online_usage_reported(self, topo):
        bg = BackgroundTraffic(
            base_fraction=0.5, diurnal_fraction=0.0, noise_fraction=0.0, seed=0
        )
        monitor = NetworkMonitor(topo, background=bg)
        online = monitor.online_usage(0.0)
        assert online[wan_key("dc0", "dc1")] == pytest.approx(50 * MBps)

    def test_budget_subtracts_online(self, topo):
        bg = BackgroundTraffic(
            base_fraction=0.5, diurnal_fraction=0.0, noise_fraction=0.0, seed=0
        )
        monitor = NetworkMonitor(topo, background=bg, threshold=0.8)
        budgets = monitor.bulk_budgets(0.0)
        assert budgets[wan_key("dc0", "dc1")] == pytest.approx(30 * MBps)

    def test_budgets_never_negative(self, topo):
        bg = BackgroundTraffic(
            base_fraction=0.9, diurnal_fraction=0.1, noise_fraction=0.0, seed=0
        )
        monitor = NetworkMonitor(topo, background=bg)
        for t in range(0, 24 * 3600, 3600):
            for budget in monitor.bulk_budgets(float(t)).values():
                assert budget >= 0.0


class TestBandwidthEnforcer:
    def test_allocations_never_exceed_budget(self):
        enforcer = BandwidthEnforcer(budget=10.0)
        allocation = enforcer.allocate({"a": 8, "b": 7, "c": 4})
        assert sum(allocation.values()) <= 10.0 + 1e-9

    def test_small_demands_fully_served(self):
        enforcer = BandwidthEnforcer(budget=10.0)
        allocation = enforcer.allocate({"a": 2, "b": 3})
        assert allocation == {"a": 2, "b": 3}

    def test_max_min_fair_split(self):
        enforcer = BandwidthEnforcer(budget=9.0)
        allocation = enforcer.allocate({"a": 1, "b": 100, "c": 100})
        assert allocation["a"] == pytest.approx(1)
        assert allocation["b"] == pytest.approx(4)
        assert allocation["c"] == pytest.approx(4)

    def test_zero_budget(self):
        allocation = BandwidthEnforcer(budget=0.0).allocate({"a": 5})
        assert allocation["a"] == 0.0

    def test_negative_demands_treated_as_zero(self):
        allocation = BandwidthEnforcer(budget=5.0).allocate({"a": -3, "b": 4})
        assert allocation["a"] == 0.0
        assert allocation["b"] == pytest.approx(4)

    def test_empty_demands(self):
        assert BandwidthEnforcer(budget=5.0).allocate({}) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BandwidthEnforcer(budget=-1)


class TestLinkBudgetsInterning:
    """Array-backed budgets with per-topology-epoch key interning."""

    @pytest.fixture
    def topo(self):
        return Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=100 * MBps, uplink=10 * MBps
        )

    def test_mapping_protocol(self, topo):
        budgets = NetworkMonitor(topo).bulk_budgets(0.0)
        key = wan_key("dc0", "dc1")
        assert key in budgets
        assert len(budgets) == len(topo.links)
        assert set(budgets) == set(topo.links)
        assert budgets[key] == pytest.approx(80 * MBps)
        assert isinstance(budgets[key], float)
        assert dict(budgets)[key] == budgets[key]

    def test_array_backs_values(self, topo):
        budgets = NetworkMonitor(topo).bulk_budgets(0.0)
        assert budgets.array.shape == (len(topo.links),)
        for i, key in enumerate(budgets.keys_list):
            assert budgets[key] == budgets.array[i]
            assert budgets.index[key] == i

    def test_keys_cached_across_cycles(self, topo):
        monitor = NetworkMonitor(topo)
        first = monitor.bulk_budgets(0.0)
        second = monitor.bulk_budgets(3.0)
        # Same interned key list object while the topology is unchanged.
        assert first.keys_list is second.keys_list
        assert first.index is second.index

    def test_epoch_change_rebuilds_keys(self, topo):
        monitor = NetworkMonitor(topo)
        first = monitor.bulk_budgets(0.0)
        topo.epoch += 1
        second = monitor.bulk_budgets(0.0)
        assert first.keys_list is not second.keys_list
        assert list(first.keys_list) == list(second.keys_list)

    def test_values_match_scalar_helper(self, topo):
        # noise_fraction=0 so repeated queries at one time agree exactly
        # (continuous-mode noise draws from a sequential RNG stream).
        background = BackgroundTraffic(
            base_fraction=0.3, diurnal_fraction=0.2, noise_fraction=0.0, seed=4
        )
        monitor = NetworkMonitor(topo, background=background)
        budgets = monitor.bulk_budgets(123.0)
        online = monitor.online_usage(123.0)
        for key, link in topo.links.items():
            assert budgets[key] == residual_budget(
                link.capacity, online[key], threshold=monitor.threshold
            )

"""End-to-end integration tests across the full stack."""


from repro.analysis.runner import run_simulation
from repro.baselines.ideal import ideal_completion_time
from repro.core import BDSConfig, BDSController, ControllerReplicaSet
from repro.net.background import BackgroundTraffic
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology, wan_key
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps
from repro.workload.generator import WorkloadGenerator, to_jobs


def mesh(num_dcs=4, servers=3, wan=200 * MBps, uplink=10 * MBps):
    return Topology.full_mesh(
        num_dcs=num_dcs, servers_per_dc=servers, wan_capacity=wan, uplink=uplink
    )


def multicast(topo, size=60 * MB, block=4 * MB, job_id="j", arrival=0.0):
    dsts = tuple(d for d in topo.dc_names() if d != "dc0")
    job = MulticastJob(
        job_id=job_id,
        src_dc="dc0",
        dst_dcs=dsts,
        total_bytes=size,
        block_size=block,
        arrival_time=arrival,
    )
    job.bind(topo)
    return job


class TestFullPipeline:
    def test_bds_end_to_end_all_blocks_everywhere(self):
        topo = mesh()
        job = multicast(topo)
        result = Simulation(
            topo, [job], BDSController(seed=1), SimConfig(), seed=1
        ).run()
        assert result.all_complete
        # Every destination DC holds every block.
        for dc in job.dst_dcs:
            for block in job.blocks:
                assert result.store.dc_has_block(dc, block.block_id)

    def test_multiple_jobs_with_staggered_arrivals(self):
        topo = mesh()
        jobs = [
            multicast(topo, size=24 * MB, job_id="j0", arrival=0.0),
            multicast(topo, size=24 * MB, job_id="j1", arrival=9.0),
        ]
        result = Simulation(
            topo, jobs, BDSController(seed=2), SimConfig(), seed=2
        ).run()
        assert result.all_complete
        assert result.completion_time("j1") >= 9.0
        assert result.completion_time("j0") < result.completion_time("j1")

    def test_different_sources(self):
        topo = mesh()
        a = MulticastJob(
            job_id="a", src_dc="dc0", dst_dcs=("dc1", "dc2"),
            total_bytes=20 * MB, block_size=4 * MB,
        )
        b = MulticastJob(
            job_id="b", src_dc="dc3", dst_dcs=("dc1", "dc0"),
            total_bytes=20 * MB, block_size=4 * MB,
        )
        a.bind(topo)
        b.bind(topo)
        result = Simulation(
            topo, [a, b], BDSController(seed=3), SimConfig(), seed=3
        ).run()
        assert result.all_complete

    def test_workload_generator_to_simulation(self):
        topo = mesh(num_dcs=5)
        generator = WorkloadGenerator(topo.dc_names(), seed=4)
        requests = generator.generate(count=4)
        jobs = to_jobs(requests, topo, block_size=4 * MB, size_scale=1e-5)
        result = run_simulation(topo, jobs, "bds", seed=4, max_cycles=5000)
        assert result.all_complete

    def test_completion_time_respects_ideal_bound(self):
        topo = mesh()
        job = multicast(topo)
        bound = ideal_completion_time(topo, job)
        for name in ("bds", "gingko", "direct"):
            topo2 = mesh()
            job2 = multicast(topo2)
            result = run_simulation(topo2, [job2], name, seed=5, max_cycles=5000)
            assert result.completion_time("j") >= bound * 0.999


class TestFaultToleranceIntegration:
    def test_agent_failure_mid_transfer(self):
        topo = mesh(uplink=2 * MBps)
        job = multicast(topo, size=60 * MB)
        failures = FailureSchedule(
            [
                FailureEvent(cycle=3, kind="agent_fail", target="dc1-s0"),
                FailureEvent(cycle=6, kind="agent_recover", target="dc1-s0"),
            ]
        )
        result = Simulation(
            topo,
            [job],
            BDSController(seed=6),
            SimConfig(max_cycles=5000),
            failures=failures,
            seed=6,
        ).run()
        assert result.all_complete

    def test_controller_outage_and_recovery(self):
        topo = mesh(uplink=2 * MBps)
        job = multicast(topo, size=40 * MB)
        failures = FailureSchedule(
            [
                FailureEvent(cycle=2, kind="controller_fail"),
                FailureEvent(cycle=8, kind="controller_recover"),
            ]
        )
        controller = BDSController(seed=7)
        result = Simulation(
            topo,
            [job],
            controller,
            SimConfig(max_cycles=5000),
            failures=failures,
            seed=7,
        ).run()
        assert result.all_complete
        cycles = [d.cycle for d in controller.decisions]
        assert all(c < 2 or c >= 8 for c in cycles)

    def test_replica_set_drives_controller_availability(self):
        """Wire ControllerReplicaSet into a failure schedule by hand."""
        replicas = ControllerReplicaSet()
        replicas.fail("controller-0")
        replicas.tick()
        assert replicas.has_leader()  # failover within one cycle
        replicas.fail_all()
        replicas.tick()
        assert not replicas.has_leader()  # now agents would fall back

    def test_link_failure_forces_detour_or_wait(self):
        topo = Topology.line(["X", "Y", "Z"], 2, 100 * MBps, 10 * MBps)
        job = MulticastJob(
            job_id="j", src_dc="X", dst_dcs=("Z",),
            total_bytes=20 * MB, block_size=4 * MB,
        )
        job.bind(topo)
        failures = FailureSchedule(
            [
                FailureEvent(cycle=0, kind="link_fail", target=("Y", "Z")),
                FailureEvent(cycle=5, kind="link_recover", target=("Y", "Z")),
            ]
        )
        result = Simulation(
            topo,
            [job],
            BDSController(seed=8),
            SimConfig(max_cycles=1000),
            failures=failures,
            seed=8,
        ).run()
        assert result.all_complete
        assert result.completion_time("j") >= 5 * 3.0


class TestBandwidthSeparationIntegration:
    def test_bds_stays_under_threshold_with_background(self):
        topo = mesh(num_dcs=2, wan=50 * MBps, uplink=40 * MBps)
        job = multicast(topo, size=100 * MB)
        bg = BackgroundTraffic(
            base_fraction=0.3, diurnal_fraction=0.1, noise_fraction=0.0, seed=9
        )
        sim = Simulation(
            topo,
            [job],
            BDSController(seed=9),
            SimConfig(max_cycles=5000, record_link_stats=True),
            background=bg,
            seed=9,
        )
        result = sim.run()
        assert result.all_complete
        link = wan_key("dc0", "dc1")
        cap = topo.links[link].capacity
        for stats in result.cycle_stats:
            total = stats.link_bulk_usage.get(link, 0.0) + stats.link_online_usage.get(
                link, 0.0
            )
            assert total <= 0.8 * cap * 1.001

    def test_backend_consistency(self):
        """All three routing backends deliver the same job correctly."""
        times = {}
        for backend in ("greedy", "lp"):
            topo = mesh()
            job = multicast(topo, size=40 * MB)
            config = BDSConfig(routing_backend=backend)
            result = Simulation(
                topo, [job], BDSController(config=config, seed=10),
                SimConfig(max_cycles=2000), seed=10,
            ).run()
            assert result.all_complete
            times[backend] = result.completion_time("j")
        # The exact LP should not be slower than greedy by more than 2x
        # in delivered completion time (they solve the same problem).
        assert times["lp"] <= times["greedy"] * 2 + 6.0

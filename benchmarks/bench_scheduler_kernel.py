"""Scheduler-kernel A/B — array-native control plane vs the scalar path.

Times the same steady-state simulation twice, once with
``SimConfig.vectorized_store`` off (the dict-of-sets possession index and
the per-candidate Python loops, kept in-tree as the baseline) and once
with it on (the packed bitset possession matrix, the candidate-array
rarest-first kernel, and the batched interned-id router build), at the
largest Fig. 11a scale (~10^5 (block, destination) pairs of controller
state). Both arms run the incremental cycle-state engine; the comparison
isolates the array-native plane. Selections must be bit-identical in
content *and order*, so the two runs must produce identical completion
metrics, per-cycle delivery counts, and run fingerprints.

The full-scale run also demonstrates the ΔT budget: one cold controller
decision over ~10^6 pending (block, destination) pairs with the Eq. 3
per-cycle selection cap must fit the paper's 3 s update interval.

Run as a script to emit ``BENCH_scheduler.json``::

    PYTHONPATH=src python benchmarks/bench_scheduler_kernel.py [--quick]

or through pytest like the other benchmarks (quick scale).
"""

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.experiments import SchedulerKernelResult, exp_scheduler_kernel
from repro.analysis.reporting import format_table

FULL_BLOCKS = 33_334  # x3 destination DCs ~= the 10^5 Fig. 11a point
QUICK_BLOCKS = 3_334
BUDGET_BLOCKS = 333_334  # x3 destination DCs ~= 10^6 pending pairs
QUICK_BUDGET_BLOCKS = 10_000
BUDGET_CAP = 20_000  # Eq. 3-style per-cycle selection cap

RESULT_FORMAT_VERSION = 1

SCHEDULE_SPEEDUP_FLOOR = 5.0
DECIDE_SPEEDUP_FLOOR = 2.0
BUDGET_DT_SECONDS = 3.0


def result_payload(result: SchedulerKernelResult, quick: bool) -> dict:
    """Flatten a :class:`SchedulerKernelResult` for ``BENCH_scheduler.json``."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "state_pairs": result.state_pairs,
        "cycles": result.cycles,
        "steady_state_run": {
            "scalar_wall_s": result.run_scalar_s,
            "vectorized_wall_s": result.run_vectorized_s,
            "speedup": result.run_speedup,
            "scalar_stage_totals_s": result.scalar_stage_totals,
            "vectorized_stage_totals_s": result.vectorized_stage_totals,
        },
        "schedule_stage": {
            "scalar_s": result.schedule_scalar_s,
            "vectorized_s": result.schedule_vectorized_s,
            "speedup": result.schedule_speedup,
        },
        "decide_stage": {
            "scalar_s": result.decide_scalar_s,
            "vectorized_s": result.decide_vectorized_s,
            "speedup": result.decide_speedup,
        },
        "cold_decide": {
            "scalar_s": result.cold_decide_scalar_s,
            "vectorized_s": result.cold_decide_vectorized_s,
            "speedup": result.cold_decide_speedup,
        },
        "dt_budget": {
            "pending_pairs": result.budget_pairs,
            "selection_cap": result.budget_cap,
            "decide_s": result.budget_decide_s,
            "directives": result.budget_directives,
            "within_3s_dt": result.budget_within_dt,
        },
        "identical_results": result.identical_results,
    }


def format_report(result: SchedulerKernelResult) -> str:
    stages = sorted(result.scalar_stage_totals)
    rows = [
        [
            stage,
            f"{result.scalar_stage_totals[stage]:.3f}",
            f"{result.vectorized_stage_totals[stage]:.3f}",
        ]
        for stage in stages
    ]
    return (
        f"[scheduler kernel] state={result.state_pairs} (block, destination) "
        f"pairs, {result.cycles} cycles\n"
        f"schedule stage: scalar {result.schedule_scalar_s:.3f}s vs "
        f"vectorized {result.schedule_vectorized_s:.3f}s "
        f"-> {result.schedule_speedup:.2f}x\n"
        f"decide stage:   scalar {result.decide_scalar_s:.3f}s vs "
        f"vectorized {result.decide_vectorized_s:.3f}s "
        f"-> {result.decide_speedup:.2f}x\n"
        f"cold decide:    scalar {result.cold_decide_scalar_s:.3f}s vs "
        f"vectorized {result.cold_decide_vectorized_s:.3f}s "
        f"-> {result.cold_decide_speedup:.2f}x\n"
        f"dt budget: {result.budget_pairs} pending pairs, cap "
        f"{result.budget_cap} -> decide {result.budget_decide_s:.3f}s "
        f"({result.budget_directives} directives, "
        f"within 3s dt: {result.budget_within_dt})\n"
        f"identical results: {result.identical_results}\n"
        + format_table(["stage", "scalar (s)", "vectorized (s)"], rows)
    )


def test_scheduler_kernel(benchmark, report):
    """Pytest entry: quick-scale A/B; selections must be bit-identical."""
    result = benchmark.pedantic(
        lambda: exp_scheduler_kernel(
            num_blocks=QUICK_BLOCKS,
            seed=0,
            budget_blocks=QUICK_BUDGET_BLOCKS,
            budget_cap=5_000,
        ),
        rounds=1,
        iterations=1,
    )
    report("\n" + format_report(result))
    assert result.identical_results
    # The headline floors (>=5x schedule stage, >=2x decide, 10^6-pair
    # decision within the 3 s dt) are asserted at full scale by the
    # script / recorded in BENCH_scheduler.json; quick scale only checks
    # bit-identical A/B and that the budget demo completes.
    assert result.budget_within_dt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small state for CI smoke runs (no speedup floors asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_scheduler.json",
        help="where to write the JSON result (default: ./BENCH_scheduler.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_blocks = QUICK_BLOCKS if args.quick else FULL_BLOCKS
    budget_blocks = QUICK_BUDGET_BLOCKS if args.quick else BUDGET_BLOCKS
    result = exp_scheduler_kernel(
        num_blocks=num_blocks,
        seed=args.seed,
        budget_blocks=budget_blocks,
        budget_cap=5_000 if args.quick else BUDGET_CAP,
    )
    print(format_report(result))

    payload = result_payload(result, quick=args.quick)
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if not result.identical_results:
        print("FAIL: scalar and vectorized runs diverged", file=sys.stderr)
        return 1
    if args.quick:
        return 0
    failed = False
    if result.schedule_speedup < SCHEDULE_SPEEDUP_FLOOR:
        print(
            f"FAIL: schedule-stage speedup {result.schedule_speedup:.2f}x "
            f"below the {SCHEDULE_SPEEDUP_FLOOR:.0f}x target",
            file=sys.stderr,
        )
        failed = True
    if result.decide_speedup < DECIDE_SPEEDUP_FLOOR:
        print(
            f"FAIL: decide-stage speedup {result.decide_speedup:.2f}x "
            f"below the {DECIDE_SPEEDUP_FLOOR:.0f}x target",
            file=sys.stderr,
        )
        failed = True
    if not result.budget_within_dt:
        print(
            f"FAIL: 10^6-pair decision took {result.budget_decide_s:.2f}s, "
            f"over the {BUDGET_DT_SECONDS:.0f}s dt budget",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

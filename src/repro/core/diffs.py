"""Decision diffs: what the controller actually pushes to agents (§5.1).

Fig. 8's step 4: the controller "sends the difference between the new
decision and the previous one to the per-server local Agent". Pushing
diffs instead of full decisions keeps the control messages small — most
cycles only re-rate a few flows and start/stop a handful.

:func:`diff_decisions` computes the typed difference between two directive
sets; :class:`DiffStats` quantifies the savings (the metric behind keeping
the feedback loop under 200 ms at scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.net.simulator import TransferDirective

BlockId = Tuple[str, int]
# A transfer's identity from the agent's perspective: one TCP connection
# per (job, source, destination). Ongoing transmissions are kept alive
# across decisions (§5.1 non-blocking update), so a changed block list or
# rate is an *update* to an existing connection, not a teardown.
DirectiveKey = Tuple[str, str, str]


def _key(directive: TransferDirective) -> DirectiveKey:
    return (directive.job_id, directive.src_server, directive.dst_server)


@dataclass
class DecisionDiff:
    """The delta between two consecutive control decisions."""

    added: List[TransferDirective] = field(default_factory=list)
    removed: List[TransferDirective] = field(default_factory=list)
    # Same connection, different block list and/or rate: (old, new).
    updated: List[Tuple[TransferDirective, TransferDirective]] = field(
        default_factory=list
    )
    unchanged: int = 0

    @property
    def num_messages(self) -> int:
        """Control messages needed to apply this diff."""
        return len(self.added) + len(self.removed) + len(self.updated)

    def is_empty(self) -> bool:
        return self.num_messages == 0


def diff_decisions(
    previous: Sequence[TransferDirective],
    current: Sequence[TransferDirective],
    rate_tolerance: float = 0.01,
) -> DecisionDiff:
    """Compute the agent-facing diff between two decisions.

    Directives match on their connection key (job, source, destination).
    A matched pair is *unchanged* — no message — when the block list is
    identical up to already-transferred prefixes (the new list must be a
    suffix-compatible subset of the old one) and the rate moved by at most
    ``rate_tolerance`` (relative); otherwise it is one update message.
    """
    if rate_tolerance < 0:
        raise ValueError("rate_tolerance must be >= 0")
    prev_by_key: Dict[DirectiveKey, TransferDirective] = {
        _key(d): d for d in previous
    }
    diff = DecisionDiff()
    seen = set()
    for directive in current:
        key = _key(directive)
        seen.add(key)
        old = prev_by_key.get(key)
        if old is None:
            diff.added.append(directive)
            continue
        old_rate = old.rate_cap or 0.0
        new_rate = directive.rate_cap or 0.0
        scale = max(abs(old_rate), abs(new_rate), 1e-12)
        rate_changed = abs(new_rate - old_rate) / scale > rate_tolerance
        # A shrinking block list is just the transfer progressing; only
        # genuinely new blocks (or reordering of the remainder) need a
        # message.
        old_blocks = set(old.block_ids)
        blocks_changed = any(b not in old_blocks for b in directive.block_ids)
        if rate_changed or blocks_changed:
            diff.updated.append((old, directive))
        else:
            diff.unchanged += 1
    for key, directive in prev_by_key.items():
        if key not in seen:
            diff.removed.append(directive)
    return diff


@dataclass
class DiffStats:
    """Aggregate diff sizes across a run (vs pushing full decisions)."""

    cycles: int = 0
    total_directives: int = 0
    total_messages: int = 0

    def record(self, decision_size: int, diff: DecisionDiff) -> None:
        self.cycles += 1
        self.total_directives += decision_size
        self.total_messages += diff.num_messages

    @property
    def savings(self) -> float:
        """Fraction of control messages avoided by pushing diffs."""
        if self.total_directives == 0:
            return 0.0
        return 1.0 - self.total_messages / self.total_directives


def diff_stats_over_run(
    decisions: Sequence[Sequence[TransferDirective]],
    rate_tolerance: float = 0.01,
) -> DiffStats:
    """Fold :func:`diff_decisions` over a whole run's decision history."""
    stats = DiffStats()
    previous: Sequence[TransferDirective] = []
    for current in decisions:
        diff = diff_decisions(previous, current, rate_tolerance)
        stats.record(len(current), diff)
        previous = current
    return stats

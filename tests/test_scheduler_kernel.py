"""Equivalence suite for the array-native control plane.

The vectorized rarest-first kernel, the batched router build, and the
bitset possession matrix must each be *bit-identical* to the scalar
implementations they replace: same selections in the same order, same
directives, same answer to every store query, same epoch trajectory.
These tests pin that contract over randomized topologies, jobs with
priorities and relays, failures, and selection caps.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.runner import make_strategy
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.core.speculation import DeliverySpeculator, SpeculatedView
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.overlay.store import PossessionIndex
from repro.utils.units import MB, MBps


def _random_scenario(seed: int):
    """A randomized (topology, jobs, failures) triple.

    Varies DC/server counts, destination sets, priorities, and relay DCs;
    every other seed adds mid-run agent and link failures.
    """
    rng = random.Random(seed)
    num_dcs = rng.randint(3, 5)
    # Slow links relative to job sizes so that several cycles into a run
    # there is still plenty of pending work: equivalence tests on an
    # *empty* mid-run selection would be vacuous.
    topo = Topology.full_mesh(
        num_dcs=num_dcs,
        servers_per_dc=rng.randint(2, 4),
        wan_capacity=40 * MBps,
        uplink=5 * MBps,
    )
    dcs = [f"dc{i}" for i in range(num_dcs)]
    jobs = []
    for j in range(rng.randint(1, 3)):
        src = rng.choice(dcs)
        others = [d for d in dcs if d != src]
        rng.shuffle(others)
        num_dsts = rng.randint(1, len(others))
        dsts = tuple(sorted(others[:num_dsts]))
        leftovers = others[num_dsts:]
        relays = tuple(leftovers[:1]) if leftovers and rng.random() < 0.5 else ()
        job = MulticastJob(
            job_id=f"job{j}",
            src_dc=src,
            dst_dcs=dsts,
            relay_dcs=relays,
            total_bytes=rng.choice([48, 64, 96]) * MB,
            block_size=4 * MB,
            priority=rng.randint(0, 2),
        )
        job.bind(topo)
        jobs.append(job)
    failures = None
    if seed % 2:
        events = [
            FailureEvent(cycle=1, kind="agent_fail", target=f"{dcs[1]}-s0"),
            FailureEvent(cycle=2, kind="link_fail", target=(dcs[0], dcs[1])),
        ]
        failures = FailureSchedule(events)
    return topo, jobs, failures


def _midrun_view(seed: int, cycles: int = 2):
    """A cluster view a few cycles into a vectorized-store simulation."""
    topo, jobs, failures = _random_scenario(seed)
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=make_strategy("bds", seed=seed),
        config=SimConfig(
            max_cycles=cycles,
            stop_when_complete=False,
            incremental_engine=True,
            vectorized_store=True,
        ),
        failures=failures,
        seed=seed,
    )
    sim.run()
    return sim.snapshot_view()


class TestVectorizedSelectionEquivalence:
    """vectorized ≡ cached-scalar ≡ legacy: content AND order."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("cap", [0, 7])
    def test_three_paths_identical(self, seed, cap):
        view = _midrun_view(seed)
        scheduler = RarestFirstScheduler(max_blocks_per_cycle=cap)

        vectorized = scheduler.select(view)
        # The kernel must actually have run (its integer companion is the
        # witness); otherwise this test silently compares scalar to scalar.
        assert scheduler.last_batch is not None
        assert len(scheduler.last_batch.gids) == len(vectorized)

        view._candidates = None  # hide the table -> cached scalar path
        cached = scheduler.select(view)
        assert scheduler.last_batch is None

        view._cache = None  # hide the cycle cache -> legacy path
        legacy = scheduler.select(view)

        assert vectorized == cached  # list equality: content AND order
        assert vectorized == legacy

    @pytest.mark.parametrize("seed", range(4))
    def test_no_relays_mode_identical(self, seed):
        view = _midrun_view(seed)
        scheduler = RarestFirstScheduler(use_relays=False)
        vectorized = scheduler.select(view)
        assert scheduler.last_batch is not None
        view._candidates = None
        assert vectorized == scheduler.select(view)

    def test_repeated_select_is_stable(self):
        # The kernel caches ScheduledBlocks and compacts candidate rows;
        # neither may change what a repeated select on the same view says.
        view = _midrun_view(2)
        scheduler = RarestFirstScheduler()
        first = scheduler.select(view)
        second = scheduler.select(view)
        assert first == second


class TestBatchedRouterEquivalence:
    """Batched (interned-id) group build ≡ the scalar build."""

    @pytest.mark.parametrize("seed", range(8))
    def test_directives_identical(self, seed):
        view = _midrun_view(seed)
        scheduler = RarestFirstScheduler()
        selections = scheduler.select(view)
        batch = scheduler.last_batch
        assert batch is not None

        router = BDSRouter()
        batched, _ = router.route(view, selections, batch=batch)
        scalar, _ = BDSRouter().route(view, selections, batch=None)
        assert batched == scalar

    @pytest.mark.parametrize("merge", [True, False])
    def test_merge_ablation_identical(self, merge):
        view = _midrun_view(4)
        scheduler = RarestFirstScheduler()
        selections = scheduler.select(view)
        batch = scheduler.last_batch
        router = BDSRouter(merge_blocks=merge)
        batched, _ = router.route(view, selections, batch=batch)
        scalar, _ = BDSRouter(merge_blocks=merge).route(
            view, selections, batch=None
        )
        assert batched == scalar


def _twin_indices(topo: Topology):
    server_dc = {s.server_id: s.dc for s in topo.servers.values()}
    return (
        PossessionIndex(server_dc, vectorized=True),
        PossessionIndex(server_dc, vectorized=False),
    )


def _assert_indices_agree(matrix_idx, dict_idx, jobs, servers):
    assert matrix_idx.epoch == dict_idx.epoch
    for job in jobs:
        for block in job.blocks:
            bid = block.block_id
            assert set(matrix_idx.holders(bid)) == set(dict_idx.holders(bid))
            assert matrix_idx.duplicate_count(bid) == dict_idx.duplicate_count(
                bid
            )
            for dc in {dc for dc in (s.split("-")[0] for s in servers)}:
                assert matrix_idx.dc_has_block(dc, bid) == dict_idx.dc_has_block(
                    dc, bid
                )
                assert matrix_idx.dc_copy_count(
                    dc, bid
                ) == dict_idx.dc_copy_count(dc, bid)
    for server in servers:
        assert set(matrix_idx.blocks_on(server)) == set(
            dict_idx.blocks_on(server)
        )
        for job in jobs:
            for block in job.blocks:
                assert matrix_idx.has(server, block.block_id) == dict_idx.has(
                    server, block.block_id
                )
    assert (
        matrix_idx.origin_fraction_by_server()
        == dict_idx.origin_fraction_by_server()
    )


class TestPossessionIndexEquivalence:
    """Matrix backend ≡ dict backend for every query, every step."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_mutation_sequences(self, seed):
        rng = random.Random(1000 + seed)
        topo, jobs, _failures = _random_scenario(seed)
        matrix_idx, dict_idx = _twin_indices(topo)
        servers = sorted(topo.servers)
        blocks = [b for job in jobs for b in job.blocks]

        # Initial seeding: every job's blocks onto its source DC servers.
        for job in jobs:
            src_servers = [
                s for s in servers if topo.servers[s].dc == job.src_dc
            ]
            for i, block in enumerate(job.blocks):
                holder = src_servers[i % len(src_servers)]
                matrix_idx.seed(holder, [block])
                dict_idx.seed(holder, [block])
        _assert_indices_agree(matrix_idx, dict_idx, jobs, servers)

        for step in range(30):
            op = rng.random()
            if op < 0.8:
                block = rng.choice(blocks)
                dst = rng.choice(servers)
                src_candidates = sorted(matrix_idx.holders(block.block_id))
                if not src_candidates:
                    continue
                src = rng.choice(src_candidates)
                origin = matrix_idx.dc_of(src)
                r1 = matrix_idx.record_delivery(
                    block, src, dst, float(step), origin
                )
                r2 = dict_idx.record_delivery(
                    block, src, dst, float(step), origin
                )
                assert (r1 is None) == (r2 is None)
            else:
                victim = rng.choice(servers)
                matrix_idx.drop_server(victim)
                dict_idx.drop_server(victim)
            _assert_indices_agree(matrix_idx, dict_idx, jobs, servers)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_unknown_names_behave(self, vectorized):
        topo, jobs, _ = _random_scenario(0)
        server_dc = {s.server_id: s.dc for s in topo.servers.values()}
        idx = PossessionIndex(server_dc, vectorized=vectorized)
        assert idx.holders(("nope", 0)) == frozenset()
        assert idx.blocks_on("no-such-server") == frozenset()
        assert idx.duplicate_count(("nope", 0)) == 0
        idx.drop_server("no-such-server")  # no-op, no epoch bump
        assert idx.epoch == 0
        with pytest.raises(KeyError):
            idx.seed("no-such-server", jobs[0].blocks[:1])


class TestEpochSemantics:
    """Epoch: +1 per new copy; one bump per effective drop_server call."""

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_seed_and_delivery_bump_per_copy(self, vectorized):
        topo, jobs, _ = _random_scenario(0)
        server_dc = {s.server_id: s.dc for s in topo.servers.values()}
        idx = PossessionIndex(server_dc, vectorized=vectorized)
        job = jobs[0]
        src = sorted(
            s for s in server_dc if server_dc[s] == job.src_dc
        )[0]
        dst = sorted(s for s in server_dc if server_dc[s] != job.src_dc)[0]

        idx.seed(src, job.blocks)
        assert idx.epoch == len(job.blocks)
        idx.seed(src, job.blocks)  # all duplicates: no bump
        assert idx.epoch == len(job.blocks)

        block = job.blocks[0]
        idx.record_delivery(block, src, dst, 0.0, job.src_dc)
        assert idx.epoch == len(job.blocks) + 1
        idx.record_delivery(block, src, dst, 1.0, job.src_dc)  # duplicate
        assert idx.epoch == len(job.blocks) + 1

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_drop_server_single_bump(self, vectorized):
        topo, jobs, _ = _random_scenario(0)
        server_dc = {s.server_id: s.dc for s in topo.servers.values()}
        idx = PossessionIndex(server_dc, vectorized=vectorized)
        job = jobs[0]
        src = sorted(
            s for s in server_dc if server_dc[s] == job.src_dc
        )[0]
        idx.seed(src, job.blocks)  # several blocks on one server
        before = idx.epoch
        idx.drop_server(src)
        assert idx.epoch == before + 1  # one event, not one per block
        idx.drop_server(src)  # nothing left: no bump
        assert idx.epoch == before + 1
        assert idx.blocks_on(src) == frozenset()


class TestSpeculationFallback:
    """Speculation overlays must opt out of the vectorized fast paths."""

    def test_speculated_store_is_not_exact(self):
        view = _midrun_view(0)
        sizes = {
            b.block_id: b.size for job in view.jobs for b in job.blocks
        }
        speculator = DeliverySpeculator(horizon_seconds=3.0)
        scheduler = RarestFirstScheduler()
        selections = scheduler.select(view)
        batch = scheduler.last_batch
        assert batch is not None
        directives, _ = BDSRouter().route(view, selections, batch=batch)
        speculated = speculator.speculate(view, directives, sizes)
        if not speculated:
            pytest.skip("no speculatable directives in this scenario")
        overlay = SpeculatedView(view, speculated)
        # The overlay's store shadows the matrix with phantom copies: it
        # must advertise inexactness and drop the candidate table, so the
        # scheduler takes the scalar path (whose store queries see the
        # phantoms) instead of reading the un-speculated matrix.
        assert overlay.store.is_exact_matrix is False
        assert overlay._candidates is None
        scheduler.select(overlay)
        assert scheduler.last_batch is None

"""Fig. 11 — scalability of the centralized control plane.

Paper: (a) the controller updates decisions for 10^6 blocks within 800 ms
(3x10^5 — Baidu's peak — within 300 ms); (b) 90 % of inter-DC control
delays are below 50 ms, mean ~25 ms; (c) over 80 % of feedback loops
complete within 200 ms. The controller here is pure Python, so absolute
runtimes are larger; the *flat-vs-block-count shape* and the delay CDFs
are the reproduction targets.
"""

import statistics

from repro.analysis.experiments import (
    exp_fig11a_controller_runtime,
    exp_fig11bc_delays,
)
from repro.analysis.metrics import cdf_at, percentile
from repro.analysis.reporting import format_series, format_table


def test_fig11a_controller_runtime(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig11a_controller_runtime(
            block_counts=(1000, 5000, 10_000, 50_000, 100_000), seed=0
        ),
        rounds=1,
        iterations=1,
    )
    from repro.analysis.plots import ascii_xy

    report(
        "\n[Fig. 11a] Controller running time vs outstanding blocks\n"
        + format_series(
            result.block_counts,
            [round(t * 1000, 1) for t in result.runtimes_s],
            "# blocks",
            "runtime (ms)",
        )
        + "\n"
        + ascii_xy(
            [float(c) for c in result.block_counts],
            [t * 1000 for t in result.runtimes_s],
            x_label="# blocks",
            y_label="runtime (ms)",
            log_x=True,
        )
    )
    # Near-linear growth (the paper's curve is ~linear in block count):
    # 100x blocks may cost ~100x time plus a log factor, never ~100^2.
    ratio = result.runtimes_s[-1] / max(result.runtimes_s[0], 1e-9)
    scale = result.block_counts[-1] / result.block_counts[0]
    assert ratio < scale * 3


def test_fig11bc_control_plane_delays(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig11bc_delays(num_requests=5000, seed=0),
        rounds=1,
        iterations=1,
    )
    net = result.network_delays_s
    loop = result.feedback_delays_s
    rows = [
        ["network delay mean", f"{statistics.mean(net) * 1000:.1f}ms", "~25ms"],
        ["network delay < 50ms", f"{cdf_at(net, 0.050):.0%}", "90%"],
        ["feedback loop p80", f"{percentile(loop, 80) * 1000:.0f}ms", "<200ms"],
    ]
    report(
        "\n[Fig. 11b/11c] Control-plane delay CDFs\n"
        + format_table(["metric", "measured", "paper"], rows)
    )
    assert cdf_at(net, 0.050) > 0.75
    assert percentile(loop, 80) < 0.3

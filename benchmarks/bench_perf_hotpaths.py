"""Hot-path A/B — incremental cycle-state engine vs the legacy scans.

Times the same simulation twice, once with ``SimConfig.incremental_engine``
off (the original O(total state) per-cycle scans, kept in-tree as the
baseline) and once with it on, at the largest Fig. 11a scale (~10^5
(block, destination) pairs of controller state). The multi-cycle run uses
the steady-state regime the engine targets: the controller ticks every
ΔT over a mostly-replicated state, so per-cycle cost should track the
remaining work, not the state size. Both modes must produce bit-identical
completion metrics and per-cycle delivery counts.

Run as a script to emit ``BENCH_hotpaths.json``::

    PYTHONPATH=src python benchmarks/bench_perf_hotpaths.py [--quick]

or through pytest like the other benchmarks (quick scale).
"""

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.experiments import PerfHotpathsResult, exp_perf_hotpaths
from repro.analysis.reporting import format_table

FULL_BLOCKS = 33_334  # x3 destination DCs ~= the 10^5 Fig. 11a point
QUICK_BLOCKS = 3_334

RESULT_FORMAT_VERSION = 1


def result_payload(result: PerfHotpathsResult, quick: bool) -> dict:
    """Flatten a :class:`PerfHotpathsResult` for ``BENCH_hotpaths.json``."""
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "state_pairs": result.state_pairs,
        "cycles": result.cycles,
        "steady_state_run": {
            "legacy_wall_s": result.run_legacy_s,
            "incremental_wall_s": result.run_incremental_s,
            "speedup": result.run_speedup,
            "legacy_stage_totals_s": result.legacy_stage_totals,
            "incremental_stage_totals_s": result.incremental_stage_totals,
        },
        "cold_decide": {
            "legacy_s": result.decide_legacy_s,
            "incremental_s": result.decide_incremental_s,
            "speedup": result.decide_speedup,
        },
        "cycle_cache": result.cache_stats,
        "identical_results": result.identical_results,
    }


def format_report(result: PerfHotpathsResult) -> str:
    stages = sorted(result.legacy_stage_totals)
    rows = [
        [
            stage,
            f"{result.legacy_stage_totals[stage]:.3f}",
            f"{result.incremental_stage_totals[stage]:.3f}",
        ]
        for stage in stages
    ]
    return (
        f"[hot paths] state={result.state_pairs} (block, destination) "
        f"pairs, {result.cycles} cycles\n"
        f"steady-state run: legacy {result.run_legacy_s:.2f}s vs "
        f"incremental {result.run_incremental_s:.2f}s "
        f"-> {result.run_speedup:.2f}x\n"
        f"cold decide:      legacy {result.decide_legacy_s:.2f}s vs "
        f"incremental {result.decide_incremental_s:.2f}s "
        f"-> {result.decide_speedup:.2f}x\n"
        f"identical results: {result.identical_results}   "
        f"cycle cache: {result.cache_stats}\n"
        + format_table(
            ["stage", "legacy (s)", "incremental (s)"], rows
        )
    )


def test_perf_hotpaths(benchmark, report):
    """Pytest entry: quick-scale A/B; results must be identical."""
    result = benchmark.pedantic(
        lambda: exp_perf_hotpaths(num_blocks=QUICK_BLOCKS, seed=0),
        rounds=1,
        iterations=1,
    )
    report("\n" + format_report(result))
    assert result.identical_results
    # The incremental engine must never lose to the legacy scans on its
    # target regime (the headline >=3x is asserted at full scale by the
    # script / recorded in BENCH_hotpaths.json; quick scale leaves noise
    # margin).
    assert result.run_speedup > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small state for CI smoke runs (no speedup floor asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_hotpaths.json",
        help="where to write the JSON result (default: ./BENCH_hotpaths.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_blocks = QUICK_BLOCKS if args.quick else FULL_BLOCKS
    result = exp_perf_hotpaths(num_blocks=num_blocks, seed=args.seed)
    print(format_report(result))

    payload = result_payload(result, quick=args.quick)
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if not result.identical_results:
        print("FAIL: legacy and incremental runs diverged", file=sys.stderr)
        return 1
    if not args.quick and result.run_speedup < 3.0:
        print(
            f"FAIL: steady-state speedup {result.run_speedup:.2f}x "
            "below the 3x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Byte, rate, and time unit constants plus parsing/formatting helpers.

Everything inside the simulator is expressed in *bytes* and *bytes per
second*; these helpers keep workload and experiment configuration readable
(the paper mixes MB, GB, TB, Mbps, MB/s and GB/s freely).
"""

from __future__ import annotations

import re

# Byte sizes (binary, matching the paper's 2MB-block arithmetic).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# Rates, in bytes per second.
MBps = MB
GBps = GB
# Network rates quoted in bits per second.
Mbps = 1000 * 1000 / 8.0
Gbps = 1000 * Mbps

_SIZE_UNITS = {
    "b": 1,
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
}

_RATE_UNITS = {
    "bps": 1 / 8.0,
    "kbps": 1000 / 8.0,
    "mbps": Mbps,
    "gbps": Gbps,
    "b/s": 1,
    "kb/s": KB,
    "mb/s": MBps,
    "gb/s": GBps,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]+)\s*$")


def parse_size(text: str) -> float:
    """Parse a human-readable size like ``"2MB"`` or ``"1.5 TB"`` into bytes.

    >>> parse_size("2MB")
    2097152.0
    """
    match = _QUANTITY_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = match.groups()
    unit = unit.lower()
    if unit not in _SIZE_UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    return float(value) * _SIZE_UNITS[unit]


def parse_rate(text: str) -> float:
    """Parse a rate like ``"20Mbps"`` or ``"3 MB/s"`` into bytes/second.

    Bit-based units (``Mbps``) use decimal prefixes as networks do;
    byte-based units (``MB/s``) use binary prefixes to stay consistent with
    :func:`parse_size`.
    """
    match = _QUANTITY_RE.match(text)
    if not match:
        raise ValueError(f"unparseable rate: {text!r}")
    value, unit = match.groups()
    unit = unit.lower()
    if unit not in _RATE_UNITS:
        raise ValueError(f"unknown rate unit {unit!r} in {text!r}")
    return float(value) * _RATE_UNITS[unit]


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the largest sensible unit.

    >>> format_bytes(3 * GB)
    '3.00GB'
    """
    magnitude = abs(num_bytes)
    for unit, factor in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if magnitude >= factor:
            return f"{num_bytes / factor:.2f}{unit}"
    return f"{num_bytes:.0f}B"


def format_rate(bytes_per_second: float) -> str:
    """Render a rate in the most readable byte-based unit."""
    return format_bytes(bytes_per_second) + "/s"


def format_duration(seconds: float) -> str:
    """Render a duration as seconds, minutes, or hours.

    >>> format_duration(90)
    '1.5m'
    """
    if seconds < 60:
        return f"{seconds:.1f}s"
    if seconds < 3600:
        return f"{seconds / 60:.1f}m"
    return f"{seconds / 3600:.2f}h"

"""Blocks: splitting, identity, merging."""

import pytest

from repro.overlay.blocks import (
    Block,
    DEFAULT_BLOCK_SIZE,
    group_by_pair,
    split_into_blocks,
    total_size,
)
from repro.utils.units import MB


class TestBlock:
    def test_identity(self):
        block = Block(job_id="j", index=3, size=2 * MB)
        assert block.block_id == ("j", 3)

    def test_ordering_by_job_then_index(self):
        blocks = [Block("b", 0, 1), Block("a", 1, 1), Block("a", 0, 1)]
        assert sorted(blocks) == [
            Block("a", 0, 1),
            Block("a", 1, 1),
            Block("b", 0, 1),
        ]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            Block("j", 0, 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Block("j", -1, 1)

    def test_hashable(self):
        assert len({Block("j", 0, 1), Block("j", 0, 1)}) == 1


class TestSplit:
    def test_default_block_size_is_2mb(self):
        assert DEFAULT_BLOCK_SIZE == 2 * MB

    def test_even_split(self):
        blocks = split_into_blocks("j", 8 * MB, 2 * MB)
        assert len(blocks) == 4
        assert all(b.size == 2 * MB for b in blocks)

    def test_tail_block_smaller(self):
        blocks = split_into_blocks("j", 5 * MB, 2 * MB)
        assert [b.size for b in blocks] == [2 * MB, 2 * MB, 1 * MB]

    def test_single_small_file(self):
        blocks = split_into_blocks("j", 100.0, 2 * MB)
        assert len(blocks) == 1
        assert blocks[0].size == 100.0

    def test_indices_sequential(self):
        blocks = split_into_blocks("j", 10 * MB, 2 * MB)
        assert [b.index for b in blocks] == list(range(5))

    def test_sizes_sum_to_total(self):
        blocks = split_into_blocks("j", 7.3 * MB, 2 * MB)
        assert total_size(blocks) == pytest.approx(7.3 * MB)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_into_blocks("j", 0)
        with pytest.raises(ValueError):
            split_into_blocks("j", 1 * MB, 0)


class TestGrouping:
    def test_merges_same_pair(self):
        blocks = {b.block_id: b for b in split_into_blocks("j", 8 * MB, 2 * MB)}
        assignments = {
            ("j", 0): ("s1", "s2"),
            ("j", 1): ("s1", "s2"),
            ("j", 2): ("s1", "s3"),
            ("j", 3): ("s4", "s2"),
        }
        groups = group_by_pair(assignments, blocks)
        assert len(groups) == 3
        assert [b.index for b in groups[("s1", "s2")]] == [0, 1]

    def test_groups_sorted_by_block(self):
        blocks = {b.block_id: b for b in split_into_blocks("j", 6 * MB, 2 * MB)}
        assignments = {("j", 2): ("a", "b"), ("j", 0): ("a", "b")}
        groups = group_by_pair(assignments, blocks)
        assert [b.index for b in groups[("a", "b")]] == [0, 2]

    def test_empty(self):
        assert group_by_pair({}, {}) == {}

"""Synthetic workload generation mirroring the Baidu trace (§2.1).

Each generated :class:`TransferRequest` samples:

* an application type by traffic weight (Table 1);
* whether the transfer is a multicast or a unicast, by that application's
  multicast share (Table 1) — unicast requests matter for reproducing the
  traffic-share table itself;
* a source DC uniformly, and a destination set whose *size* follows the
  Fig. 2a fraction-of-DCs CDF;
* a size following the Fig. 2b CDF;
* a Poisson arrival process over a configurable duration.

``to_jobs`` converts multicast requests into simulator jobs, optionally
scaling sizes down so full-stack simulations stay laptop-sized (documented
in EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.net.topology import Topology
from repro.overlay.blocks import DEFAULT_BLOCK_SIZE
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive
from repro.workload.distributions import (
    APP_PROFILES,
    destination_fraction_cdf,
    transfer_size_cdf,
)


@dataclass(frozen=True)
class TransferRequest:
    """One inter-DC transfer in a workload trace."""

    request_id: str
    app: str
    src_dc: str
    dst_dcs: Tuple[str, ...]
    size_bytes: float
    arrival_time: float
    is_multicast: bool

    def __post_init__(self) -> None:
        check_positive("size_bytes", self.size_bytes)
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.is_multicast and len(self.dst_dcs) < 2:
            # One destination is unicast by definition; the paper counts
            # replication to >= 2 DCs as multicast.
            raise ValueError("a multicast request needs at least 2 destinations")
        if not self.dst_dcs:
            raise ValueError("need at least one destination DC")
        if self.src_dc in self.dst_dcs:
            raise ValueError("source DC cannot be a destination")


class WorkloadGenerator:
    """Samples :class:`TransferRequest` streams over a set of DC names."""

    def __init__(
        self,
        dc_names: Sequence[str],
        seed: SeedLike = None,
        mean_interarrival_s: float = 480.0,
    ) -> None:
        """``mean_interarrival_s`` defaults to ~1265 transfers per 7 days,
        the paper's trace density."""
        if len(dc_names) < 3:
            raise ValueError("need at least 3 DCs for meaningful multicasts")
        check_positive("mean_interarrival_s", mean_interarrival_s)
        self.dc_names = list(dc_names)
        self.mean_interarrival_s = mean_interarrival_s
        self._rng = make_rng(seed)
        self._dest_cdf = destination_fraction_cdf()
        self._size_cdf = transfer_size_cdf()
        self._counter = 0

    # -- sampling pieces ---------------------------------------------------

    def _sample_app(self) -> str:
        names = sorted(APP_PROFILES)
        weights = [APP_PROFILES[n]["traffic_weight"] for n in names]
        total = sum(weights)
        roll = float(self._rng.uniform(0, total))
        acc = 0.0
        for name, weight in zip(names, weights):
            acc += weight
            if roll <= acc:
                return name
        return names[-1]

    def _sample_destinations(self, src_dc: str, multicast: bool) -> Tuple[str, ...]:
        others = [d for d in self.dc_names if d != src_dc]
        if not multicast:
            pick = int(self._rng.integers(len(others)))
            return (others[pick],)
        fraction = self._dest_cdf.quantile(float(self._rng.uniform(0, 1)))
        count = max(2, min(len(others), round(fraction * len(self.dc_names))))
        idx = self._rng.choice(len(others), size=count, replace=False)
        return tuple(sorted(others[int(i)] for i in idx))

    def sample_request(self, arrival_time: float) -> TransferRequest:
        """Sample one request at the given arrival time."""
        app = self._sample_app()
        share = APP_PROFILES[app]["multicast_share"]
        multicast = bool(self._rng.uniform(0, 1) < share)
        src_dc = self.dc_names[int(self._rng.integers(len(self.dc_names)))]
        dst_dcs = self._sample_destinations(src_dc, multicast)
        size = self._size_cdf.quantile(float(self._rng.uniform(0, 1)))
        self._counter += 1
        return TransferRequest(
            request_id=f"req-{self._counter:05d}",
            app=app,
            src_dc=src_dc,
            dst_dcs=dst_dcs,
            size_bytes=size,
            arrival_time=arrival_time,
            is_multicast=multicast,
        )

    def generate(
        self, count: int = 0, duration_s: float = 0.0
    ) -> List[TransferRequest]:
        """Generate a trace, bounded by ``count`` and/or ``duration_s``.

        At least one bound must be given. Arrivals follow a Poisson
        process with the configured mean interarrival time.
        """
        if count <= 0 and duration_s <= 0:
            raise ValueError("give count > 0 and/or duration_s > 0")
        requests: List[TransferRequest] = []
        now = 0.0
        while True:
            now += float(self._rng.exponential(self.mean_interarrival_s))
            if duration_s > 0 and now > duration_s:
                break
            requests.append(self.sample_request(now))
            if count > 0 and len(requests) >= count:
                break
        return requests

    def generate_diurnal(
        self,
        duration_s: float,
        diurnal_amplitude: float = 0.6,
        flash_crowd_at: float = -1.0,
        flash_crowd_size: int = 8,
    ) -> List[TransferRequest]:
        """Generate a day-scale trace with a diurnal arrival rate.

        Arrivals follow a non-homogeneous Poisson process — rate
        ``λ(t) = λ₀ · (1 + amplitude · sin(2πt / 24h))`` — sampled by
        thinning: candidates are drawn at the peak rate
        ``λ₀ · (1 + amplitude)`` and kept with probability
        ``λ(t) / λ_peak``, the standard exact construction. This is the
        workload shape the event-driven simulator core is built for: long
        quiet valleys fast-forward in one pass, busy peaks execute
        normally.

        ``flash_crowd_at`` ∈ [0, 1] additionally injects a *flash crowd* —
        ``flash_crowd_size`` near-simultaneous multicast requests (one
        second apart, mirroring a coordinated content push) at that
        fraction of the duration. Negative disables it. All sampling
        comes off the generator's seeded stream, so traces are
        reproducible.
        """
        check_positive("duration_s", duration_s)
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if flash_crowd_at > 1.0:
            raise ValueError("flash_crowd_at must be <= 1 (fraction) or < 0")
        day = 24 * 3600.0
        peak_rate = (1.0 + diurnal_amplitude) / self.mean_interarrival_s
        requests: List[TransferRequest] = []
        now = 0.0
        while True:
            now += float(self._rng.exponential(1.0 / peak_rate))
            if now > duration_s:
                break
            rate = (
                1.0 + diurnal_amplitude * math.sin(2.0 * math.pi * now / day)
            ) / self.mean_interarrival_s
            if float(self._rng.uniform(0, 1)) < rate / peak_rate:
                requests.append(self.sample_request(now))
        if flash_crowd_at >= 0.0:
            check_positive("flash_crowd_size", flash_crowd_size)
            burst_t = flash_crowd_at * duration_s
            for i in range(flash_crowd_size):
                request = self.sample_request(burst_t + float(i))
                if not request.is_multicast:
                    # A flash crowd is a replication event by definition:
                    # re-draw the destination set as a multicast.
                    dsts = self._sample_destinations(request.src_dc, True)
                    request = TransferRequest(
                        request_id=request.request_id,
                        app=request.app,
                        src_dc=request.src_dc,
                        dst_dcs=dsts,
                        size_bytes=request.size_bytes,
                        arrival_time=request.arrival_time,
                        is_multicast=True,
                    )
                requests.append(request)
            requests.sort(key=lambda r: r.arrival_time)
        return requests


def to_jobs(
    requests: Sequence[TransferRequest],
    topology: Topology,
    block_size: float = DEFAULT_BLOCK_SIZE,
    size_scale: float = 1.0,
    relative_arrivals: bool = True,
) -> List[MulticastJob]:
    """Convert multicast requests to bound simulator jobs.

    ``size_scale`` shrinks transfer sizes (e.g. ``1e-3``) so that full
    simulations finish quickly while preserving relative job sizes;
    ``relative_arrivals`` shifts the first arrival to t=0.
    """
    check_positive("size_scale", size_scale)
    multicasts = [r for r in requests if r.is_multicast]
    offset = min((r.arrival_time for r in multicasts), default=0.0)
    if not relative_arrivals:
        offset = 0.0
    jobs: List[MulticastJob] = []
    known_dcs = set(topology.dc_names())
    for request in multicasts:
        if request.src_dc not in known_dcs:
            raise ValueError(f"request source {request.src_dc!r} not in topology")
        dsts = tuple(d for d in request.dst_dcs if d in known_dcs)
        if len(dsts) < 1:
            continue
        job = MulticastJob(
            job_id=request.request_id,
            src_dc=request.src_dc,
            dst_dcs=dsts,
            total_bytes=max(block_size, request.size_bytes * size_scale),
            block_size=block_size,
            arrival_time=request.arrival_time - offset,
        )
        job.bind(topology)
        jobs.append(job)
    return jobs

"""Path-based maximum multi-commodity flow (MCF).

BDS's routing step (§4.4) is "essentially an integer MCF problem", made
tractable by (a) the fractional relaxation over explicit candidate paths and
(b) an FPTAS. This module defines the problem container and its exact-LP
solution; :mod:`repro.lp.fptas` provides the ε-approximate fast path.

A *commodity* is a merged block group (same source/destination server pair
after §5.1 blocks merging) with an explicit set of candidate overlay paths,
each path being the tuple of resources it consumes, and a demand cap (the
bytes/second the group can still usefully absorb this cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.lp.model import LinearProgram, LPError
from repro.net.topology import ResourceKey


@dataclass(frozen=True)
class Commodity:
    """One flow demand with explicit candidate paths.

    ``paths`` lists each candidate as a tuple of resource keys; ``demand``
    caps the commodity's total rate (``None`` means unbounded, limited only
    by capacities).
    """

    name: Hashable
    paths: Tuple[Tuple[ResourceKey, ...], ...]
    demand: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.paths:
            raise ValueError(f"commodity {self.name!r} has no candidate paths")
        if any(not p for p in self.paths):
            raise ValueError(f"commodity {self.name!r} has an empty path")
        if self.demand is not None and self.demand < 0:
            raise ValueError("demand must be >= 0 or None")


@dataclass
class MCFResult:
    """Solution of a max-MCF instance.

    ``path_flows[(commodity_name, path_index)]`` is the rate on that path;
    ``objective`` is the total rate across all commodities.
    """

    objective: float
    path_flows: Dict[Tuple[Hashable, int], float]

    def commodity_flow(self, name: Hashable) -> float:
        """Total allocated rate of one commodity."""
        return sum(
            rate for (cname, _i), rate in self.path_flows.items() if cname == name
        )

    def resource_usage(
        self, commodities: Sequence[Commodity]
    ) -> Dict[ResourceKey, float]:
        """Aggregate usage per resource implied by the path flows."""
        by_name = {c.name: c for c in commodities}
        usage: Dict[ResourceKey, float] = {}
        for (cname, pi), rate in self.path_flows.items():
            for res in by_name[cname].paths[pi]:
                usage[res] = usage.get(res, 0.0) + rate
        return usage


class PathMCF:
    """A max-throughput MCF instance over explicit paths.

    Objective (paper Eq. 5): maximize total flow. Constraints: per-resource
    capacity (Eq. 1 & 2 collapsed onto the resource set of each path) and
    per-commodity demand (the per-cycle volume bound of Eq. 3).
    """

    def __init__(
        self,
        commodities: Sequence[Commodity],
        capacities: Mapping[ResourceKey, float],
    ) -> None:
        if not commodities:
            raise ValueError("need at least one commodity")
        self.commodities = list(commodities)
        self.capacities = dict(capacities)
        for commodity in self.commodities:
            for path in commodity.paths:
                for res in path:
                    if res not in self.capacities:
                        raise KeyError(
                            f"path of {commodity.name!r} uses unknown resource {res!r}"
                        )

    def solve_lp(self) -> MCFResult:
        """Exact solution via the dense LP (the Fig. 13a 'standard' route)."""
        lp = LinearProgram(maximize=True)
        var_names: Dict[Tuple[int, int], str] = {}
        for ci, commodity in enumerate(self.commodities):
            for pi in range(len(commodity.paths)):
                name = f"f_{ci}_{pi}"
                var_names[(ci, pi)] = name
                lp.add_variable(name, lower=0.0, objective=1.0)

        # Per-resource capacity constraints.
        by_resource: Dict[ResourceKey, Dict[str, float]] = {}
        for ci, commodity in enumerate(self.commodities):
            for pi, path in enumerate(commodity.paths):
                for res in set(path):
                    by_resource.setdefault(res, {})[var_names[(ci, pi)]] = 1.0
        for res, coeffs in by_resource.items():
            lp.add_constraint(coeffs, "<=", self.capacities[res])

        # Per-commodity demand caps.
        for ci, commodity in enumerate(self.commodities):
            if commodity.demand is None:
                continue
            coeffs = {
                var_names[(ci, pi)]: 1.0 for pi in range(len(commodity.paths))
            }
            lp.add_constraint(coeffs, "<=", commodity.demand)

        solution = lp.solve()
        flows: Dict[Tuple[Hashable, int], float] = {}
        for (ci, pi), name in var_names.items():
            rate = solution.values[name]
            if rate > 1e-12:
                flows[(self.commodities[ci].name, pi)] = rate
        return MCFResult(objective=solution.objective, path_flows=flows)

    def solve_fptas(self, epsilon: float = 0.1) -> MCFResult:
        """ε-approximate solution via Garg–Könemann (the BDS fast path)."""
        from repro.lp.fptas import max_multicommodity_flow

        result = max_multicommodity_flow(
            self.commodities, self.capacities, epsilon=epsilon
        )
        return MCFResult(objective=result.objective, path_flows=result.path_flows)

"""Deterministic job→shard partitioning for the sharded control plane.

BDS's decision problem decomposes by job: blocks belong to exactly one
job, so possession state, scheduling and routing partition cleanly once
the job set is split — only WAN link budgets are shared across shards
(reconciled per cycle, see :mod:`repro.core.controller`). This module
owns the split itself.

The assignment must be

* **platform-stable** — the same ``(job_id, shards, seed)`` maps to the
  same shard on every interpreter, OS, and run. Python's builtin
  ``hash()`` is per-process salted (``PYTHONHASHSEED``) and therefore
  banned here; we hash the UTF-8 job id through BLAKE2b instead;
* **seeded** — ``seed`` keys the hash, so a pathological workload whose
  ids collide into one shard can be re-spread without renaming jobs;
* **independent of shard count history** — ``stable_shard`` is a pure
  function of its arguments, so adding jobs never moves existing ones
  (for a *shard-count* change, :func:`rebalance_moves` reports exactly
  which jobs migrate).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

JobLike = TypeVar("JobLike")

_DIGEST_SIZE = 8  # 64 bits of hash is plenty for a shard index


def _hash64(job_id: str, seed: int) -> int:
    """Seeded 64-bit BLAKE2b digest of a job id (platform-stable)."""
    key = int(seed).to_bytes(8, "little", signed=True)
    digest = hashlib.blake2b(
        job_id.encode("utf-8"), digest_size=_DIGEST_SIZE, key=key
    ).digest()
    return int.from_bytes(digest, "little")


def stable_shard(job_id: str, shards: int, seed: int = 0) -> int:
    """Shard index of ``job_id`` under ``shards`` shards.

    A pure function of its arguments: no process state, no iteration
    order, no ``hash()`` salt. The unit tests pin golden values so a
    platform or library change that silently moved jobs would fail loud.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if shards == 1:
        return 0
    return _hash64(job_id, seed) % shards


def partition_jobs(
    jobs: Sequence[JobLike], shards: int, seed: int = 0
) -> List[List[JobLike]]:
    """Split ``jobs`` into ``shards`` lists by :func:`stable_shard`.

    Objects must expose ``job_id``. Relative order within each shard
    preserves the input order — the scheduler's job-iteration order is
    part of the deterministic contract, so a shard sees its jobs exactly
    as the single controller would have.
    """
    buckets: List[List[JobLike]] = [[] for _ in range(shards)]
    for job in jobs:
        buckets[stable_shard(job.job_id, shards, seed)].append(job)
    return buckets


def partition_indices(
    job_ids: Iterable[str], shards: int, seed: int = 0
) -> Dict[str, int]:
    """Mapping of each job id to its shard index."""
    return {jid: stable_shard(jid, shards, seed) for jid in job_ids}


def rebalance_moves(
    job_ids: Iterable[str],
    old_shards: int,
    new_shards: int,
    seed: int = 0,
) -> Dict[str, Tuple[int, int]]:
    """Jobs that change shards when resizing ``old_shards`` → ``new_shards``.

    Returns ``{job_id: (old_shard, new_shard)}`` for exactly the jobs
    that move. An operator resizing a sharded controller hands the moved
    jobs' possession state to the new owner and leaves the rest alone;
    the companion test asserts unmoved jobs keep their assignment.
    """
    moves: Dict[str, Tuple[int, int]] = {}
    for jid in job_ids:
        old = stable_shard(jid, old_shards, seed)
        new = stable_shard(jid, new_shards, seed)
        if old != new:
            moves[jid] = (old, new)
    return moves

"""The heavier experiment entry points, at reduced scale.

The benchmarks run these at paper-shaped scale; these tests pin the same
qualitative claims with smaller parameters so ``pytest tests/`` exercises
every experiment code path quickly.
"""


from repro.analysis.experiments import (
    exp_fig3_illustrative,
    exp_fig5_gingko_vs_ideal,
    exp_fig11a_controller_runtime,
    exp_fig12b_block_size,
    exp_fig12c_cycle_length,
    exp_fig13a_runtime_comparison,
    exp_fig13b_near_optimality,
    exp_table3_overlay_comparison,
)
from repro.utils.units import MB


class TestFig3:
    def test_overlay_ordering(self):
        result = exp_fig3_illustrative(seed=3)
        assert result.bds_s < result.chain_s < result.direct_s


class TestFig5:
    def test_gingko_gap_from_ideal(self):
        result = exp_fig5_gingko_vs_ideal(
            servers_per_dc=12, file_bytes=256 * MB, seed=5
        )
        assert result.median_ratio > 1.5
        assert len(result.gingko_times) == 24  # 2 DCs x 12 servers


class TestFig11a:
    def test_runtime_grows_with_blocks(self):
        result = exp_fig11a_controller_runtime(
            block_counts=(300, 3000), seed=0
        )
        assert result.runtimes_s[1] > result.runtimes_s[0]
        assert result.block_counts == [300, 3000]


class TestFig12b:
    def test_small_blocks_beat_large(self):
        result = exp_fig12b_block_size(file_bytes=256 * MB, seed=12)
        small = sum(result.per_dc_times["2M/blk"])
        large = sum(result.per_dc_times["64M/blk"])
        assert small < large
        assert len(result.per_dc_times["2M/blk"]) == 10


class TestFig12c:
    def test_long_cycles_hurt(self):
        result = exp_fig12c_cycle_length(
            cycle_lengths=(1, 3, 30), file_bytes=256 * MB, seed=12
        )
        by_len = dict(zip(result.cycle_lengths_s, result.completion_times_s))
        assert by_len[30] > by_len[3]
        assert by_len[30] > by_len[1]


class TestFig13:
    def test_standard_lp_slower(self):
        result = exp_fig13a_runtime_comparison(block_counts=(200, 800), seed=13)
        for bds_t, lp_t in zip(
            result.bds_runtimes_s, result.standard_lp_runtimes_s
        ):
            assert lp_t > bds_t

    def test_near_optimality_small_scale(self):
        result = exp_fig13b_near_optimality(block_counts=(30, 60), seed=13)
        for bds_t, lp_t in zip(result.bds_times_s, result.standard_lp_times_s):
            # BDS matches the joint LP within one cycle.
            assert abs(bds_t - lp_t) <= 3.0 + 1e-9


class TestTable3:
    def test_baseline_setup_ordering(self):
        result = exp_table3_overlay_comparison(
            setups=("baseline",), seed=11
        )
        times = result.times["baseline"]
        assert times["bds"] < times["bullet"]
        assert times["bds"] < times["akamai"]

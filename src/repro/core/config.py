"""Configuration for the BDS controller.

Defaults follow §5.4: 2 MB blocks, 3-second update cycles, 80 % safety
threshold (20 % of every link reserved for latency-sensitive traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlay.blocks import DEFAULT_BLOCK_SIZE
from repro.utils.validation import check_fraction, check_positive

ROUTING_BACKENDS = ("fptas", "lp", "greedy")
SHARD_MODES = ("inprocess", "process")


@dataclass
class BDSConfig:
    """Tunable parameters of the centralized control loop.

    ``cycle_seconds`` is the §5.2 ΔT the whole decide→deliver loop must
    fit inside for centralized control to be feasible; the data-plane
    benchmarks (``benchmarks/bench_flow_kernel.py``) measure full cycles
    against exactly this budget. The per-directive rates the controller
    assigns are enforced downstream by the shared rate kernel
    (:func:`repro.net.flow.clip_rates_to_capacity`), which proportionally
    scales any resource the (possibly stale, §5.1) allocation
    oversubscribed — the controller itself never needs to re-check
    physics.

    Under the event-driven simulator core (``SimConfig.event_engine``,
    see :mod:`repro.net.simulator`) the loop is not re-run every ΔT:
    §5.2's observation that decisions stay valid until state changes is
    made operational through a validity key plus the router's
    :attr:`~repro.core.routing.RoutingDiagnostics.reuse_horizon`
    certificate, and jobs may request a coarser per-job cadence via
    :attr:`repro.overlay.job.MulticastJob.cycle_seconds` (a multiple of
    this ΔT).
    """

    block_size: float = DEFAULT_BLOCK_SIZE
    cycle_seconds: float = 3.0
    safety_threshold: float = 0.8
    routing_backend: str = "greedy"
    epsilon: float = 0.1
    max_blocks_per_cycle: int = 0  # 0 = unlimited
    max_sources_per_group: int = 3
    merge_blocks: bool = True
    # §5.1 non-blocking update: feed the algorithm a delivery state that
    # speculates the completion of in-flight transfers over this horizon
    # (seconds). 0 disables speculation.
    speculation_horizon: float = 0.0
    # Schedule placements onto jobs' relay DCs (Type I path diversity
    # through non-destination DCs).
    use_relays: bool = True
    # Sharded control plane (ROADMAP "sharded multi-controller
    # scale-out"): partition the job set across this many controller
    # shards by a platform-stable seeded hash of job id
    # (repro.core.sharding). Each shard runs the full vectorized
    # schedule+route pipeline on its own partition with its own
    # CycleCache and FPTAS warm store; the shared link budgets are
    # reconciled by one outer max-min waterfill over all shards'
    # directives (repro.net.flow.max_min_fair_rates, the data plane's
    # own allocator). 1 keeps the single-controller path, bit-identical
    # to before the shards knob existed.
    shards: int = 1
    # Seed of the job→shard hash (re-spreads a colliding workload
    # without renaming jobs).
    shard_seed: int = 0
    # Shard decide cadence: shard s re-runs schedule+route only on
    # cycles with cycle % stride == s % stride and replays its cached
    # directives (demands refreshed by the simulator) in between. 1 =
    # every shard decides every cycle (no staleness). Strides > 1 cap
    # the per-cycle controller wall at roughly ceil(shards/stride)
    # shards' worth of work — the knob that fits 10⁷ pairs inside ΔT on
    # one core — at the cost of newly pending work waiting up to
    # stride-1 cycles for its shard's turn.
    shard_stride: int = 1
    # Shard execution: "inprocess" loops over shards in index order;
    # "process" fans decides over one persistent single-worker process
    # per shard (pickle-pure payloads, deterministic shard-order
    # gather). Results are identical either way.
    shard_mode: str = "inprocess"

    def __post_init__(self) -> None:
        if self.speculation_horizon < 0:
            raise ValueError("speculation_horizon must be >= 0")
        check_positive("block_size", self.block_size)
        check_positive("cycle_seconds", self.cycle_seconds)
        check_fraction("safety_threshold", self.safety_threshold)
        check_positive("epsilon", self.epsilon)
        check_positive("max_sources_per_group", self.max_sources_per_group)
        if self.max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0 (0 = unlimited)")
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ValueError(
                f"routing_backend must be one of {ROUTING_BACKENDS}, "
                f"got {self.routing_backend!r}"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_stride < 1:
            raise ValueError("shard_stride must be >= 1")
        if self.shard_mode not in SHARD_MODES:
            raise ValueError(
                f"shard_mode must be one of {SHARD_MODES}, "
                f"got {self.shard_mode!r}"
            )

"""Array-backed path×resource incidence structure for the routing solve.

Every routing backend answers the same two questions many times per solve:
*"what is the length/room of this path?"* (a reduction over the resources
the path touches) and *"which paths does this resource appear on?"* (the
reverse incidence). The naive implementations re-walk Python tuples and
dictionaries for each query, which is what made the FPTAS the slowest part
of the control cycle. :class:`PathIncidence` compiles a commodity set into
flat numpy arrays once, so those reductions become vectorized
``reduceat`` calls shared by

* the Fleischer FPTAS (:mod:`repro.lp.fptas` — path lengths),
* the exact LP (:meth:`repro.lp.mcf.PathMCF.solve_lp` — constraint rows),
* the greedy water-filler (:meth:`repro.core.routing.BDSRouter._solve_greedy`
  — per-path residual room).

Layout (CSR-style, usable paths only, grouped by commodity so each
commodity's paths occupy one contiguous id range):

``flat_res``
    concatenated resource indices of every usable path, duplicates within
    a path preserved (a path that crosses a resource twice consumes it
    twice in the greedy/FPTAS semantics);
``path_starts``
    offset of each path's slice in ``flat_res`` (``np.minimum.reduceat`` /
    ``np.add.reduceat`` segment boundaries);
``path_commodity`` / ``path_orig_index``
    ownership: the commodity a path belongs to and its index in that
    commodity's *original* ``paths`` tuple. Duplicate candidate paths keep
    distinct original indices — the builder maps positions, not values,
    which is the fix for the historical ``list.index`` aliasing bug that
    silently merged duplicate paths' flows onto the first occurrence.

A path is *usable* when every resource on it has positive capacity and its
commodity has nonzero (or unbounded) demand; unusable paths can never
carry flow and are dropped at build time so the solvers skip them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lp.mcf import Commodity
from repro.net.topology import ResourceKey


@dataclass
class PathIncidence:
    """Compiled path×resource incidence of one max-MCF instance.

    All capacities/demands are kept in the caller's raw units; solvers
    that need normalization (the FPTAS's length numerics) rescale their
    own private copies.
    """

    commodities: Tuple[Commodity, ...]
    #: index → resource key, in first-appearance order over usable paths.
    res_keys: List[ResourceKey]
    #: resource key → index (inverse of ``res_keys``).
    res_index: Dict[ResourceKey, int]
    #: per-resource capacity, raw units (missing resources resolve to 0
    #: in lenient mode and raise in strict mode — see :meth:`build`).
    caps: np.ndarray
    #: concatenated resource indices of all usable paths.
    flat_res: np.ndarray
    #: start offset of each usable path inside ``flat_res``.
    path_starts: np.ndarray
    #: number of resources on each usable path.
    path_lens: np.ndarray
    #: owning commodity index of each usable path.
    path_commodity: np.ndarray
    #: index of each usable path in its commodity's original ``paths``.
    path_orig_index: np.ndarray
    #: per-commodity usable-path id range ``[lo, hi)``; empty when the
    #: commodity has no usable path.
    commodity_path_range: List[Tuple[int, int]]
    #: per-commodity demand, ``inf`` for uncapped.
    demands: np.ndarray
    #: min capacity along each usable path (static bottleneck).
    path_min_cap: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.num_paths:
            self.path_min_cap = np.minimum.reduceat(
                self.caps[self.flat_res], self.path_starts
            )
        else:
            self.path_min_cap = np.zeros(0, dtype=np.float64)

    # -- construction ------------------------------------------------------

    @classmethod
    def build(
        cls,
        commodities: Sequence[Commodity],
        capacities: Mapping[ResourceKey, float],
        strict: bool = True,
    ) -> "PathIncidence":
        """Compile ``commodities`` over ``capacities`` into flat arrays.

        ``strict`` controls unknown-resource handling: ``True`` raises
        :class:`KeyError` (the :class:`~repro.lp.mcf.PathMCF` contract),
        ``False`` treats missing resources as zero-capacity (the greedy
        backend's historical ``residual.get(r, 0.0)`` semantics — such
        paths simply become unusable).
        """
        if not commodities:
            raise ValueError("need at least one commodity")
        res_keys: List[ResourceKey] = []
        res_index: Dict[ResourceKey, int] = {}
        caps_list: List[float] = []

        def intern(res: ResourceKey) -> int:
            idx = res_index.get(res)
            if idx is None:
                if strict and res not in capacities:
                    raise KeyError(f"path uses unknown resource {res!r}")
                idx = len(res_keys)
                res_index[res] = idx
                res_keys.append(res)
                caps_list.append(float(capacities.get(res, 0.0)))
            return idx

        flat: List[int] = []
        starts: List[int] = []
        lens: List[int] = []
        owners: List[int] = []
        orig_index: List[int] = []
        ranges: List[Tuple[int, int]] = []
        demands = np.empty(len(commodities), dtype=np.float64)
        for ci, commodity in enumerate(commodities):
            demand = (
                float("inf") if commodity.demand is None else float(commodity.demand)
            )
            demands[ci] = demand
            lo = len(starts)
            if demand > 0:
                for pi, path in enumerate(commodity.paths):
                    idxs = [intern(res) for res in path]
                    if any(caps_list[i] <= 0 for i in idxs):
                        continue  # a zero-capacity resource kills the path
                    starts.append(len(flat))
                    lens.append(len(idxs))
                    owners.append(ci)
                    orig_index.append(pi)
                    flat.extend(idxs)
            else:
                # Zero-demand commodities still intern their resources in
                # strict mode so unknown-resource validation stays uniform.
                if strict:
                    for path in commodity.paths:
                        for res in path:
                            intern(res)
            ranges.append((lo, len(starts)))

        return cls(
            commodities=tuple(commodities),
            res_keys=res_keys,
            res_index=res_index,
            caps=np.asarray(caps_list, dtype=np.float64),
            flat_res=np.asarray(flat, dtype=np.intp),
            path_starts=np.asarray(starts, dtype=np.intp),
            path_lens=np.asarray(lens, dtype=np.intp),
            path_commodity=np.asarray(owners, dtype=np.intp),
            path_orig_index=np.asarray(orig_index, dtype=np.intp),
            commodity_path_range=ranges,
            demands=demands,
        )

    # -- introspection -----------------------------------------------------

    @property
    def num_paths(self) -> int:
        return len(self.path_starts)

    @property
    def num_resources(self) -> int:
        return len(self.res_keys)

    @property
    def num_commodities(self) -> int:
        return len(self.commodities)

    def path_resources(self, path_id: int) -> np.ndarray:
        """Resource indices of one usable path (a view into ``flat_res``)."""
        lo = self.path_starts[path_id]
        return self.flat_res[lo : lo + self.path_lens[path_id]]

    def resource_signature(self) -> Tuple[ResourceKey, ...]:
        """The instance's resource universe, in interning order.

        The FPTAS warm-start guard compares signatures across cycles: a
        changed universe (topology edit, failure, commodity churn that
        adds/removes links) invalidates carried-over length functions.
        """
        return tuple(self.res_keys)

    # -- vectorized reductions --------------------------------------------

    def path_sums(self, per_resource: np.ndarray) -> np.ndarray:
        """``sum(per_resource[r] for r in path)`` for every usable path."""
        if not self.num_paths:
            return np.zeros(0, dtype=np.float64)
        return np.add.reduceat(per_resource[self.flat_res], self.path_starts)

    def path_mins(self, per_resource: np.ndarray) -> np.ndarray:
        """``min(per_resource[r] for r in path)`` for every usable path."""
        if not self.num_paths:
            return np.zeros(0, dtype=np.float64)
        return np.minimum.reduceat(per_resource[self.flat_res], self.path_starts)

    def commodity_slice(self, ci: int) -> slice:
        lo, hi = self.commodity_path_range[ci]
        return slice(lo, hi)

    def usage_from_flows(self, flows: np.ndarray) -> np.ndarray:
        """Per-resource usage implied by per-usable-path ``flows``."""
        if not self.num_paths:
            return np.zeros(self.num_resources, dtype=np.float64)
        per_entry = np.repeat(flows, self.path_lens)
        return np.bincount(
            self.flat_res, weights=per_entry, minlength=self.num_resources
        )

    def flows_to_path_map(
        self, flows: np.ndarray, threshold: float = 1e-12, scale: float = 1.0
    ) -> Dict[Tuple[Hashable, int], float]:
        """Translate per-usable-path flows to ``{(name, orig_index): rate}``.

        Distinct duplicate candidate paths keep distinct indices; true
        repeats of the same *(commodity, original index)* pair accumulate.
        """
        out: Dict[Tuple[Hashable, int], float] = {}
        for pid in np.flatnonzero(flows > threshold):
            ci = int(self.path_commodity[pid])
            key = (self.commodities[ci].name, int(self.path_orig_index[pid]))
            out[key] = out.get(key, 0.0) + float(flows[pid]) * scale
        return out


def build_incidence(
    commodities: Sequence[Commodity],
    capacities: Mapping[ResourceKey, float],
    strict: bool = True,
) -> Optional[PathIncidence]:
    """:meth:`PathIncidence.build`, returning ``None`` for empty inputs."""
    if not commodities:
        return None
    return PathIncidence.build(commodities, capacities, strict=strict)


def segment_mins(
    values: np.ndarray,
    starts: np.ndarray,
    lens: np.ndarray,
    default: float,
) -> np.ndarray:
    """Per-segment minima over CSR ``values``; empty segments yield ``default``.

    ``np.minimum.reduceat`` returns ``values[starts[i]]`` for zero-length
    segments — the wrong answer for an empty reduction — so empty segments
    are masked out and filled with ``default`` explicitly. Dropping an
    empty segment's start is safe: consecutive retained starts still
    bracket exactly the non-empty segments' entries.
    """
    n = len(starts)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    nonzero = lens > 0
    if nonzero.all():
        return np.minimum.reduceat(values, starts)
    out = np.full(n, default, dtype=np.float64)
    if values.size:
        out[nonzero] = np.minimum.reduceat(values, starts[nonzero])
    return out


@dataclass
class FlowIncidence:
    """Compiled flow×resource incidence for the data-plane rate kernels.

    The flow-level sibling of :class:`PathIncidence`, sharing its
    interning contract: resources are interned in first-appearance order
    over the given flows, duplicates within one flow's resource tuple are
    preserved (a flow crossing a resource twice loads it twice), and an
    unknown resource raises :class:`KeyError` at build time with the same
    message the scalar allocators raise. Capacities are converted to
    ``float64`` once at build; callers passing huge integer capacities
    (>2^53) would lose the exact-int division the pure-Python path
    performs, which no real input does (capacities are bytes/second).

    Consumed by :func:`repro.net.flow.max_min_fair_rates_vectorized` and
    :func:`repro.net.flow.clip_rates_to_capacity_vectorized`; both reduce
    over the CSR layout with ``reduceat``/``bincount`` exactly like the
    routing solvers reduce over :class:`PathIncidence`.
    """

    #: index → resource key, in first-appearance order.
    res_keys: List[ResourceKey]
    #: resource key → index (inverse of ``res_keys``).
    res_index: Dict[ResourceKey, int]
    #: per-resource capacity, ``float64``.
    caps: np.ndarray
    #: concatenated resource indices of all flows.
    flat_res: np.ndarray
    #: start offset of each flow's slice inside ``flat_res``.
    starts: np.ndarray
    #: number of resources on each flow.
    lens: np.ndarray

    @classmethod
    def build(
        cls,
        resource_seqs: Iterable[Sequence[ResourceKey]],
        capacities: Mapping[ResourceKey, float],
    ) -> "FlowIncidence":
        """Compile per-flow resource tuples over ``capacities``.

        Always strict: every referenced resource must exist in
        ``capacities`` (callers that tolerate unknown resources — the
        waterfill's zero-cap flows — simply exclude those flows from the
        sequence, matching the scalar validation scope).
        """
        res_keys: List[ResourceKey] = []
        res_index: Dict[ResourceKey, int] = {}
        caps_list: List[float] = []
        flat: List[int] = []
        starts: List[int] = []
        lens: List[int] = []
        get = res_index.get
        for seq in resource_seqs:
            starts.append(len(flat))
            lens.append(len(seq))
            for res in seq:
                idx = get(res)
                if idx is None:
                    if res not in capacities:
                        raise KeyError(
                            f"flow references unknown resource {res!r}"
                        )
                    idx = len(res_keys)
                    res_index[res] = idx
                    res_keys.append(res)
                    caps_list.append(float(capacities[res]))
                flat.append(idx)
        return cls(
            res_keys=res_keys,
            res_index=res_index,
            caps=np.asarray(caps_list, dtype=np.float64),
            flat_res=np.asarray(flat, dtype=np.intp),
            starts=np.asarray(starts, dtype=np.intp),
            lens=np.asarray(lens, dtype=np.intp),
        )

    @property
    def num_flows(self) -> int:
        return len(self.starts)

    @property
    def num_resources(self) -> int:
        return len(self.res_keys)

    def loads(self) -> np.ndarray:
        """Per-resource incidence counts (how many flow entries touch it)."""
        return np.bincount(self.flat_res, minlength=self.num_resources)

    def flow_mins(self, per_resource: np.ndarray, default: float) -> np.ndarray:
        """``min(per_resource[r] for r in flow)``, ``default`` if no resources."""
        return segment_mins(
            per_resource[self.flat_res], self.starts, self.lens, default
        )

    def usage(self, per_flow: np.ndarray) -> np.ndarray:
        """Per-resource usage implied by per-flow rates.

        ``bincount`` accumulates in entry order — the same partial-sum
        order as the scalar dict loop, so the sums are bit-identical.
        """
        per_entry = np.repeat(per_flow, self.lens)
        return np.bincount(
            self.flat_res, weights=per_entry, minlength=self.num_resources
        )


def outer_waterfill(inc: FlowIncidence, requested: np.ndarray) -> np.ndarray:
    """One-pass proportional waterfill of ``requested`` over ``inc``.

    The shared entry point of the data-plane clip kernel
    (:func:`repro.net.flow.clip_rates_to_capacity_vectorized`) and the
    sharded control plane's WAN-capacity reconciliation
    (:meth:`repro.core.controller.BDSController`): every resource whose
    aggregate request exceeds its capacity scales all its flows by the
    same ``cap / used`` factor, and a flow crossing several
    oversubscribed resources takes the most restrictive factor. One pass
    suffices because scaling only ever decreases loads.

    ``requested`` is a per-flow float64 array aligned with the incidence
    rows; the clipped per-flow array comes back in the same order. The
    arithmetic is exactly the scalar clip's: ``bincount`` accumulates
    usage in entry order (identical partial sums), the guard
    ``used > cap and used > 0`` matches elementwise, and the per-flow
    factor is a segment minimum (order-independent) — so results are
    bit-identical to the dict loop.
    """
    requested = np.asarray(requested, dtype=np.float64)
    usage = inc.usage(requested)
    scale = np.ones(inc.num_resources, dtype=np.float64)
    over = (usage > inc.caps) & (usage > 0)
    scale[over] = inc.caps[over] / usage[over]
    factor = inc.flow_mins(scale, default=1.0)
    return requested * factor

"""Per-cycle memoization for the controller/simulator hot path.

The centralized control loop issues the same read-only queries many times
per cycle: the scheduler asks for rarity and eligible sources once per
pending *(block, destination)* pair, and the router re-derives the WAN
path once per *(holder, destination)* candidate. At 10^5 outstanding
blocks those duplicates dominate the cycle (§5.1's scalability argument
only holds if per-tick cost tracks the delta in state, not its size).

:class:`CycleCache` memoizes three query families, each guarded by an
explicit validity key so stale answers are structurally impossible:

* **paths** — ``flow_resources(src, dst)`` results, valid while
  ``(topology.epoch, failed_links)`` is unchanged. In a failure-free run
  this cache survives across *all* cycles.
* **sources** — eligible-source lists per block, valid while
  ``(store.epoch, failed_agents)`` is unchanged. Any possession mutation
  (delivery, seed, drop) bumps the store epoch and flushes it.
* **rarity** — cluster-wide duplicate counts per block, same validity
  as sources.

Ownership: the :class:`~repro.net.simulator.Simulation` owns one
instance and threads it into each cycle's
:class:`~repro.net.simulator.ClusterView`; each
:class:`~repro.core.shardexec.ShardMirror` additionally owns its *own*
persistent instance scoped to that shard's partition, so memo tables
(and their flush churn) are O(pairs/k) per shard rather than cluster
wide. Derived views (speculation overlays, partition clones) must *not*
share any of these because their store/failure state differs — they get
a fresh instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.net.topology import ResourceKey

BlockId = Tuple[str, int]
PathKey = Tuple[int, FrozenSet]
SourceKey = Tuple[int, FrozenSet]


def first_cycle_at_or_after(time_s: float, dt: float) -> int:
    """Smallest cycle index ``c >= 0`` with ``c * dt >= time_s``, exactly.

    All event-engine timestamps derive from integer cycle counts through
    this helper so fast-forward never compounds ``now += k*dt`` rounding:
    the comparison is performed on ``c * dt`` itself (the same float the
    tick loop computes for cycle ``c``), so membership tests like
    "has this job arrived by cycle c" are bit-identical between a loop
    that tests every cycle and a jump that lands directly on ``c``.
    """
    if time_s <= 0.0:
        return 0
    c = int(time_s / dt)
    while c * dt < time_s:
        c += 1
    while c > 0 and (c - 1) * dt >= time_s:
        c -= 1
    return c


@dataclass
class DecisionReuseState:
    """The previous decide's output plus the validity key certifying it.

    The event-driven simulator core (``SimConfig.event_engine``) skips the
    decide → validate → path-lookup stages of a cycle when the decision of
    an earlier cycle is provably still exact. "Provably" is the
    conjunction of two certificates:

    * the **validity key** — a tuple of every piece of simulator state a
      reusable strategy's decision may depend on: topology epoch, store
      (possession) epoch, the partial-bytes *membership* epoch (which
      blocks have buffered bytes, not how many — the router's
      partial-first reordering reads membership only), failed agent and
      link sets, controller availability, the active-job signature
      (arrival pointer + completion count), and the background-traffic
      state token. If the key at cycle ``c`` equals the key at decide
      time, every input the strategy read is unchanged.
    * the **reuse horizon** — decisions that read continuously-draining
      quantities (the BDS router's commodity demands) are only
      input-independent while those quantities stay inside a certified
      slack band; the strategy reports how many cycles that band is
      guaranteed to last (:attr:`repro.core.decisions.ControlDecision.
      reuse_horizon`). ``None`` means unbounded (the decision reads no
      draining quantity), ``0`` means never reuse.

    Both must hold; either failing simply re-runs the decide, so a
    conservative key or horizon can cost speed but never correctness.
    """

    key: Optional[tuple] = None
    decided_cycle: int = -1
    #: Cycles after ``decided_cycle`` the decision stays exact for under
    #: an unchanged key (None = unbounded, 0 = this cycle only).
    horizon: Optional[int] = None
    directives: List = field(default_factory=list)
    resources: List = field(default_factory=list)
    # Telemetry consumed by the event-engine benchmark.
    reuses: int = 0

    def valid_for(self, cycle: int, key: tuple) -> bool:
        """True when the cached decision is exact for ``cycle``."""
        if self.key is None or key != self.key:
            return False
        if self.horizon is None:
            return True
        return cycle - self.decided_cycle <= self.horizon

    def store_decision(
        self,
        key: tuple,
        cycle: int,
        horizon: Optional[int],
        directives: List,
        resources: List,
    ) -> None:
        """Record a fresh decide's validated output under its key."""
        self.key = key
        self.decided_cycle = cycle
        self.horizon = horizon
        self.directives = directives
        self.resources = resources


class CycleCache:
    """Epoch-guarded memo tables for the per-cycle read queries."""

    __slots__ = (
        "_path_key",
        "paths",
        "paths_ids",
        "_source_key",
        "sources",
        "source_ids",
        "rarity",
        "_picks_key",
        "picks",
        "hits",
        "misses",
        "flushes",
    )

    def __init__(self) -> None:
        self._path_key: Optional[PathKey] = None
        # (src_server, dst_server) -> resource tuple, or None when the
        # destination is unreachable (partitioned off).
        self.paths: Dict[
            Tuple[str, str], Optional[Tuple[ResourceKey, ...]]
        ] = {}
        # Integer twin of ``paths`` for the batched router build:
        # src_sid * num_servers + dst_sid -> resource tuple or None.
        # Same validity key; flushed together with ``paths``.
        self.paths_ids: Dict[int, Optional[Tuple[ResourceKey, ...]]] = {}
        self._source_key: Optional[SourceKey] = None
        self.sources: Dict[BlockId, List[str]] = {}
        # Integer twin of ``sources``: block column gid -> ascending list
        # of eligible holder server ids. Same validity key as ``sources``.
        self.source_ids: Dict[int, List[int]] = {}
        self.rarity: Dict[BlockId, int] = {}
        # Content-addressed source-pick memo for the batched router build:
        # (holder-bitmask bytes, dst server id, block index) -> picked
        # source-id tuple. The holder bitmask (with failed agents masked
        # out) IS part of the key, so possession churn simply addresses
        # new entries instead of invalidating old ones — unlike ``sources``
        # this memo survives store-epoch bumps and gets near-100% hits in
        # steady state. Path reachability is baked into stored picks, so
        # the table flushes with the path memo's validity key.
        self.picks: Dict[Tuple[bytes, int, int], Tuple[int, ...]] = {}
        self._picks_key: Optional[Tuple[int, FrozenSet, int]] = None
        # Telemetry (coarse; bumped by ClusterView's cached accessors).
        self.hits: int = 0
        self.misses: int = 0
        self.flushes: int = 0

    # -- validity gates ----------------------------------------------------

    def validate_paths(
        self, topology_epoch: int, failed_links: FrozenSet
    ) -> Dict[Tuple[str, str], Optional[Tuple[ResourceKey, ...]]]:
        """The path memo table, flushed if topology/failures changed."""
        key = (topology_epoch, failed_links)
        if key != self._path_key:
            self._path_key = key
            if self.paths or self.paths_ids:
                self.paths = {}
                self.paths_ids = {}
                self.flushes += 1
        return self.paths

    def validate_picks(
        self, topology_epoch: int, failed_links: FrozenSet, max_sources: int
    ) -> Dict[Tuple[bytes, int, int], Tuple[int, ...]]:
        """The source-pick memo, flushed if paths (or the cap) changed.

        ``max_sources`` is the router's ``max_sources_per_group``: picks
        depend on it, and the memo lives in the simulation-owned cache, so
        a router swap with a different cap must not reuse stale picks.
        """
        key = (topology_epoch, failed_links, max_sources)
        if key != self._picks_key:
            self._picks_key = key
            if self.picks:
                self.picks = {}
                self.flushes += 1
        return self.picks

    def validate_sources(
        self, store_epoch: int, failed_agents: FrozenSet
    ) -> None:
        """Flush source/rarity memos if possession or failures changed."""
        key = (store_epoch, failed_agents)
        if key != self._source_key:
            self._source_key = key
            if self.sources or self.rarity or self.source_ids:
                self.sources = {}
                self.source_ids = {}
                self.rarity = {}
                self.flushes += 1

    def stats(self) -> Dict[str, int]:
        """Hit/miss/flush counters (consumed by the hot-path benchmark)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "flushes": self.flushes,
        }


class RoutingWarmStore:
    """Epoch-guarded holder for the router's FPTAS warm-start state.

    Same validity discipline as the path memo above: the carried solver
    state (final resource lengths + raw path flows of the previous
    cycle's solve — see :class:`repro.lp.fptas.FPTASWarmState`) is only
    offered back to the solver while ``(topology.epoch, failed_links)``
    is unchanged. A topology edit or failure-set change alters the
    resource universe, so the next solve must start cold.

    The guard here is intentionally coarse; the solver independently
    re-verifies the fine-grained compatibility conditions (ε, resource
    interning order, per-resource capacities) and certifies every warm
    solve against its own dual bound, so a stale store can degrade a
    solve to cold but never corrupt it. The store is owned by the
    :class:`~repro.core.routing.BDSRouter` — not by :class:`CycleCache`
    instances — because speculation overlays build *fresh* caches per
    cycle while warm starts must survive across cycles.
    """

    __slots__ = ("_key", "state", "invalidations", "stores")

    def __init__(self) -> None:
        self._key: Optional[PathKey] = None
        self.state = None
        # Telemetry: how often topology/failure churn dropped the state.
        self.invalidations: int = 0
        self.stores: int = 0

    def validate(self, topology_epoch: int, failed_links: FrozenSet):
        """Return the carried state, or ``None`` if the guard key moved."""
        key = (topology_epoch, failed_links)
        if key != self._key:
            self._key = key
            if self.state is not None:
                self.state = None
                self.invalidations += 1
        return self.state

    def store(self, topology_epoch: int, failed_links: FrozenSet, state) -> None:
        """Record the state a just-finished solve produced under ``key``."""
        self._key = (topology_epoch, failed_links)
        self.state = state
        self.stores += 1

"""Akamai-style 3-layer overlay multicast (Andreev et al., SPAA'13).

Akamai's design for live streams uses a fixed 3-layer topology: the
*source* forwards data to a small set of *reflectors*, and reflectors send
outgoing streams to the *edge sinks*. The paper's §7 notes the two contrasts
with BDS reproduced here:

* the coarse 3-layer structure explores far fewer overlay paths than BDS's
  unconstrained server-level mesh;
* data delivery is **in order** (a live-streaming requirement), so a slow
  early block delays everything behind it.

Our mapping: one reflector server is designated in each destination DC;
the source DC streams the file to reflectors in block order; every edge
(destination) server then pulls its shard from its DC's reflector, again in
block order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.base import OverlayStrategy
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob
from repro.utils.validation import check_positive


class AkamaiStrategy(OverlayStrategy):
    """Fixed source → reflector → edge dissemination with in-order blocks."""

    uses_controller_rates = False
    respects_safety_threshold = False
    # Reflector choice is memoized deterministically per job; reusable
    # under the event engine's validity key.
    decisions_reusable = True

    def __init__(
        self,
        reflectors_per_dc: int = 1,
        window: int = 16,
    ) -> None:
        """
        ``reflectors_per_dc``: reflector servers designated per destination
        DC. ``window``: in-order window — how many of the earliest missing
        blocks may be in flight to one receiver at once (streaming forces
        near-sequential delivery).
        """
        check_positive("reflectors_per_dc", reflectors_per_dc)
        check_positive("window", window)
        self.reflectors_per_dc = reflectors_per_dc
        self.window = window
        # job_id -> dc -> reflector server ids.
        self._reflectors: Dict[str, Dict[str, List[str]]] = {}

    def _reflectors_for(
        self, view: ClusterView, job: MulticastJob
    ) -> Dict[str, List[str]]:
        if job.job_id not in self._reflectors:
            chosen: Dict[str, List[str]] = {}
            for dc in job.dst_dcs:
                servers = view.topology.servers_in(dc)
                chosen[dc] = [
                    s.server_id for s in servers[: self.reflectors_per_dc]
                ]
            self._reflectors[job.job_id] = chosen
        return self._reflectors[job.job_id]

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        directives: List[TransferDirective] = []
        for job in view.jobs:
            reflectors = self._reflectors_for(view, job)
            directives.extend(self._source_to_reflectors(view, job, reflectors))
            directives.extend(self._reflectors_to_edges(view, job, reflectors))
        return directives

    def _source_to_reflectors(
        self,
        view: ClusterView,
        job: MulticastJob,
        reflectors: Dict[str, List[str]],
    ) -> List[TransferDirective]:
        """Layer 1: stream blocks, in order, from source DC to reflectors."""
        directives: List[TransferDirective] = []
        for dc, dc_reflectors in reflectors.items():
            for i, reflector in enumerate(dc_reflectors):
                if not view.agent_is_up(reflector):
                    continue
                # Reflector i of a DC carries the i-th stripe of blocks.
                wanted = [
                    b
                    for b in job.blocks
                    if b.index % len(dc_reflectors) == i
                    and not view.store.has(reflector, b.block_id)
                ]
                window = wanted[: self.window]
                partition: Dict[str, List[Block]] = {}
                for block in window:
                    src = self._origin_holder(view, job, block, reflector)
                    if src is None:
                        continue
                    partition.setdefault(src, []).append(block)
                directives.extend(
                    self.directives_for_partition(job, reflector, partition)
                )
        return directives

    def _reflectors_to_edges(
        self,
        view: ClusterView,
        job: MulticastJob,
        reflectors: Dict[str, List[str]],
    ) -> List[TransferDirective]:
        """Layer 2: edge servers pull their shard from their DC's reflector."""
        directives: List[TransferDirective] = []
        by_server = self.missing_blocks_by_server(view, job)
        for dst_server, missing in by_server.items():
            dc = view.store.dc_of(dst_server)
            dc_reflectors = reflectors.get(dc, ())
            if dst_server in dc_reflectors:
                continue  # the reflector itself is fed by layer 1
            partition: Dict[str, List[Block]] = {}
            for block in sorted(missing)[: self.window]:
                src = self._reflector_holder(view, block, dc_reflectors)
                if src is None or src == dst_server:
                    continue
                partition.setdefault(src, []).append(block)
            directives.extend(
                self.directives_for_partition(job, dst_server, partition)
            )
        return directives

    @staticmethod
    def _origin_holder(
        view: ClusterView, job: MulticastJob, block: Block, exclude: str
    ) -> Optional[str]:
        """The source-DC server holding ``block`` (layer-1 sender)."""
        for server in view.eligible_sources(block.block_id):
            if view.store.dc_of(server) == job.src_dc and server != exclude:
                return server
        return None

    @staticmethod
    def _reflector_holder(
        view: ClusterView, block: Block, dc_reflectors: List[str]
    ) -> Optional[str]:
        """A local reflector that already holds ``block`` (layer-2 sender)."""
        for reflector in dc_reflectors:
            if view.agent_is_up(reflector) and view.store.has(
                reflector, block.block_id
            ):
                return reflector
        return None

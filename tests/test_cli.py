"""The command-line interface."""

import pytest

from repro.cli import main


class TestSimulate:
    def test_default_run(self, capsys):
        code = main(
            [
                "simulate",
                "--num-dcs", "3",
                "--size", "40MB",
                "--block-size", "4MB",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "completion" in out
        assert "bds" in out

    def test_each_strategy_runs(self, capsys):
        for strategy in ("gingko", "direct"):
            code = main(
                [
                    "simulate",
                    "--strategy", strategy,
                    "--num-dcs", "3",
                    "--size", "20MB",
                    "--block-size", "4MB",
                ]
            )
            assert code == 0

    def test_incomplete_run_nonzero_exit(self, capsys):
        code = main(
            [
                "simulate",
                "--num-dcs", "3",
                "--size", "1GB",
                "--max-cycles", "1",
            ]
        )
        assert code == 1

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--strategy", "smoke-signals"])

    def test_bad_size_raises(self):
        with pytest.raises(ValueError):
            main(["simulate", "--size", "many bytes"])


class TestWorkloadAndReplay:
    def test_workload_writes_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(
            ["workload", "--count", "20", "--num-dcs", "8", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "20 requests" in capsys.readouterr().out

    def test_replay_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        main(["workload", "--count", "8", "--num-dcs", "8", "--out", str(out)])
        code = main(
            [
                "replay", str(out),
                "--num-dcs", "8",
                "--scale", "1e-6",
                "--block-size", "2MB",
            ]
        )
        text = capsys.readouterr().out
        assert code == 0
        assert "jobs completed" in text

    def test_replay_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["replay", str(tmp_path / "nope.jsonl")])


class TestExperiment:
    def test_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "direct" in out and "bds" in out

    def test_fig4(self, capsys):
        assert main(["experiment", "fig4"]) == 0
        assert "disjoint" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

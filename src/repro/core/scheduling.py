"""The scheduling step: generalized rarest-first block selection (§4.3).

Each cycle BDS picks *which* blocks to transfer before deciding *how*.
Inspired by BitTorrent's rarest-first, the scheduler selects the subset of
pending (block, destination server) deliveries whose blocks currently have
the fewest copies cluster-wide, balancing block availability so that the
greedy per-cycle routing step rarely starves any block (§4.4's discussion).

The selection is what shrinks the routing step's search space: only the
selected deliveries become LP commodities.

Three implementations coexist, selected by what the view carries:

* **vectorized** (the default end-to-end path): candidate (block,
  destination) pairs live in the static per-(job, DC) int arrays of a
  :class:`~repro.net.candidates.CandidateTable`; pending-ness, rarity and
  the health filters are numpy gathers against the possession matrix, and
  the rarity order is one stable integer sort. Emits a
  :class:`~repro.core.decisions.SelectionBatch` so the router can keep
  working in interned-id space.
* **cached scalar**: per-candidate queries deduped through the
  :class:`~repro.net.cycle_cache.CycleCache` (PR 1's path; also the
  fallback whenever the matrix is not the exact truth — speculation
  overlays — or a job is missing from the table).
* **legacy scalar**: the original store-query-per-candidate loop, kept
  verbatim as the baseline for benchmarks and determinism A/B tests.

All three produce identical selections in identical order.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Tuple

import numpy as np

from repro.core.decisions import ScheduledBlock, SelectionBatch
from repro.net.simulator import ClusterView
from repro.overlay.blocks import Block


def _make_scheduled(
    job_id: str,
    block: Block,
    dst_dc: str,
    dst_server: str,
    duplicates: int,
    is_relay: bool,
) -> ScheduledBlock:
    """Construct a ScheduledBlock without the frozen-dataclass __init__.

    The kernel builds one per selected row; at 10^5-selection cold cycles
    the dataclass ``__init__`` (five guarded ``object.__setattr__`` calls)
    is the single largest remaining cost. Writing the ``__dict__`` directly
    yields an instance indistinguishable from the constructor's (same
    fields, eq, hash, repr) at roughly a third of the cost.
    """
    sb = ScheduledBlock.__new__(ScheduledBlock)
    sb.__dict__.update(
        job_id=job_id,
        block=block,
        dst_dc=dst_dc,
        dst_server=dst_server,
        duplicates=duplicates,
        is_relay=is_relay,
    )
    return sb


class RarestFirstScheduler:
    """Selects pending deliveries in ascending order of block duplicates."""

    def __init__(
        self, max_blocks_per_cycle: int = 0, use_relays: bool = True
    ) -> None:
        """``max_blocks_per_cycle``: cap on selections per cycle (0 = all).

        A finite cap bounds the routing problem size for enormous jobs; the
        paper instead bounds work through the per-cycle volume constraint
        (Eq. 3), which the router's demand caps implement — both are
        supported. ``use_relays`` additionally schedules block placements
        onto a job's relay DCs (at lower priority than real deliveries).
        """
        if max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0")
        self.max_blocks_per_cycle = max_blocks_per_cycle
        self.use_relays = use_relays
        # Integer companion of the last vectorized selection (None when a
        # scalar path ran); the router picks it up for its batched build.
        self.last_batch: Optional[SelectionBatch] = None

    def select(self, view: ClusterView) -> List[ScheduledBlock]:
        """The cycle's ``w`` assignments, rarest blocks first.

        Only deliveries with at least one healthy source and a healthy
        destination are selected (a failed agent drops out of the decision
        space, §5.3). Relay placements sort after all real deliveries.
        """
        started = _time.perf_counter()
        self.last_batch = None
        table = getattr(view, "_candidates", None)
        store = view.store
        # Engage the kernel only when the view's store is the very object
        # the view was built around (not a proxy/overlay swapped in — the
        # same exactness witness the pending maps use) and it answers
        # straight from a live PossessionMatrix.
        if (
            table is not None
            and store is getattr(view, "_map_store", None)
            and getattr(store, "is_exact_matrix", False)
        ):
            matrix = store.matrix
            if matrix is not None and table.matrix is matrix:
                result = self._select_vectorized(view, table, matrix, started)
                if result is not None:
                    return result
        cache = getattr(view, "_cache", None)
        if cache is None:
            return self._select_legacy(view, started)
        return self._select_cached(view, cache, started)

    # -- vectorized kernel -------------------------------------------------

    def _select_vectorized(
        self, view: ClusterView, table, matrix, started: float
    ) -> Optional[List[ScheduledBlock]]:
        """Array-native selection over the static candidate table.

        Returns ``None`` (fall back to the scalar paths) if the table
        does not know one of the view's jobs.

        Per candidate group: one possession gather decides pending-ness
        (matrix bit test for deliveries, DC copy-count for relays), one
        ``dup`` gather supplies rarity, boolean masks apply the failure
        filters, and the surviving rows of all groups are ordered by a
        single stable sort on a packed integer key equal to the legacy
        tuple key ``(is_relay, -priority, duplicates, block index)`` —
        stability supplies the insertion-order tie-break, and the group
        concatenation order *is* the legacy enumeration order.

        Groups compact their ``alive`` rows when a gather finds them
        >50% possession-dead; possession is monotone during a run, so
        dead rows never resurrect (see :mod:`repro.net.candidates`).
        """
        groups_by_job = table.groups_by_job
        failed = view.failed_agents
        failed_sids: List[int] = []
        failed_lut = None
        if failed:
            server_ids = matrix.server_ids
            failed_sids = sorted(
                server_ids[s] for s in failed if s in server_ids
            )
            if failed_sids:
                failed_lut = np.zeros(matrix.num_servers, dtype=bool)
                failed_lut[failed_sids] = True
        dup_all = matrix.dup
        dc_counts = matrix.dc_counts
        use_relays = self.use_relays

        # Per-surviving-row columns, one array per group, concatenated
        # once. ``row`` is the candidate's original row in its group, the
        # index into the group's ScheduledBlock cache. Fields that are
        # constant within a group (slot, relay flag, priority, DC gid,
        # job slot) are never materialized as columns: the sort key folds
        # them in as scalars, and the capped winners recover their group
        # slot by a searchsorted over the group offsets — at 10^7
        # candidate rows those five constant columns and their
        # concatenations were the largest memory-traffic term of a cold
        # cycle.
        row_cols: List[np.ndarray] = []
        idx_cols: List[np.ndarray] = []
        dst_cols: List[np.ndarray] = []
        dup_cols: List[np.ndarray] = []
        gid_cols: List[np.ndarray] = []
        grp_relay: List[int] = []
        grp_prio: List[int] = []
        grp_dup_max: List[int] = []
        grp_idx_max: List[int] = []
        group_refs: List[Tuple] = []  # (job, group, job_slot)

        for job_slot, job in enumerate(view.jobs):
            groups = groups_by_job.get(job.job_id)
            if groups is None:
                return None
            neg_priority = -getattr(job, "priority", 0)
            for group in groups:
                if group.is_relay and not use_relays:
                    continue
                rows = group.alive
                n = rows.size
                if n == 0:
                    continue
                # ``alive`` only ever shrinks, so a full-size row set is
                # the identity permutation — use the group's arrays
                # directly instead of gathering copies (the common case on
                # a cold cycle; downstream only reads them).
                full = n == group.gids.size
                gids = group.gids if full else group.gids[rows]
                if group.is_relay:
                    dead = dc_counts[group.dc_gid, gids] > 0
                else:
                    dead = matrix.test_many(
                        group.dst_sids if full else group.dst_sids[rows], gids
                    )
                ndead = int(np.count_nonzero(dead))
                if ndead:
                    keep = ~dead
                    rows = rows[keep]
                    gids = gids[keep]
                    full = False
                    if ndead * 2 > n:
                        group.alive = rows
                    if rows.size == 0:
                        continue
                dst = group.dst_sids if full else group.dst_sids[rows]
                idx = group.indices if full else group.indices[rows]
                dup = dup_all[gids]
                if failed_lut is not None:
                    # Eligible sources = holders minus failed agents; the
                    # destination cannot be a holder of a pending block,
                    # so the count never double-discounts it.
                    held_by_failed = np.zeros(gids.size, dtype=np.int64)
                    for fsid in failed_sids:
                        held_by_failed += matrix.test_row_many(fsid, gids)
                    ok = ~failed_lut[dst] & (dup - held_by_failed > 0)
                else:
                    ok = dup > 0
                if not ok.all():
                    dst = dst[ok]
                    if dst.size == 0:
                        continue
                    rows = rows[ok]
                    idx = idx[ok]
                    dup = dup[ok]
                    gids = gids[ok]
                group_refs.append((job, group, job_slot))
                row_cols.append(rows)
                idx_cols.append(idx)
                dst_cols.append(dst)
                dup_cols.append(dup)
                gid_cols.append(gids)
                grp_relay.append(1 if group.is_relay else 0)
                grp_prio.append(neg_priority)
                grp_dup_max.append(int(dup.max()))
                grp_idx_max.append(int(idx.max()))

        if not group_refs:
            self.last_batch = SelectionBatch(
                jobs=list(view.jobs),
                gids=[],
                indices=[],
                dst_sids=[],
                dc_gids=[],
                job_slots=[],
            )
            self.last_runtime = _time.perf_counter() - started
            return []

        row_col = np.concatenate(row_cols)
        idx_col = np.concatenate(idx_cols)
        dst_col = np.concatenate(dst_cols)
        dup_col = np.concatenate(dup_cols)
        gid_col = np.concatenate(gid_cols)
        sizes = np.fromiter(
            (a.size for a in row_cols), dtype=np.int64, count=len(row_cols)
        )
        ends = np.cumsum(sizes)

        # One stable sort on a packed integer key ≡ the legacy ascending
        # tuple sort (relay, -priority, duplicates, block index) with
        # insertion order breaking ties. The (relay, priority) fields are
        # constant within a group, so each group's key is built in place
        # as ``dup * idx_range + idx`` plus one scalar prefix. Field
        # widths are data-dependent; if the packed key cannot fit 62
        # bits, fall back to a (stable) lexsort over the separate
        # columns.
        pmin = min(grp_prio)
        prio_range = max(grp_prio) - pmin + 1
        dup_range = max(grp_dup_max) + 1
        idx_range = max(grp_idx_max) + 1
        if 2 * prio_range * dup_range * idx_range < (1 << 62):
            key_cols: List[np.ndarray] = []
            for g in range(len(group_refs)):
                prefix = (
                    (grp_relay[g] * prio_range + (grp_prio[g] - pmin))
                    * dup_range
                    * idx_range
                )
                key = dup_cols[g] * idx_range
                key += idx_cols[g]
                if prefix:
                    key += prefix
                key_cols.append(key)
            order = np.argsort(np.concatenate(key_cols), kind="stable")
        else:  # pragma: no cover - needs ~2^62 distinct key values
            relay_col = np.repeat(
                np.asarray(grp_relay, dtype=np.int64), sizes
            )
            prio_col = np.repeat(np.asarray(grp_prio, dtype=np.int64), sizes)
            order = np.lexsort((idx_col, dup_col, prio_col, relay_col))
        if self.max_blocks_per_cycle:
            order = order[: self.max_blocks_per_cycle]

        # Winners recover their group slot from the offsets; the per-slot
        # constants are then two tiny gathers instead of full columns.
        slot_arr = np.searchsorted(ends, order, side="right")
        dcgid_per_slot = np.fromiter(
            (group.dc_gid for (_job, group, _js) in group_refs),
            dtype=np.int64,
            count=len(group_refs),
        )
        jslot_per_slot = np.fromiter(
            (js for (_job, _group, js) in group_refs),
            dtype=np.int64,
            count=len(group_refs),
        )
        sel_slot = slot_arr.tolist()
        sel_row = row_col[order].tolist()
        sel_idx = idx_col[order].tolist()
        sel_dst = dst_col[order].tolist()
        sel_dup = dup_col[order].tolist()
        names = matrix.server_names
        make = _make_scheduled
        selected: List[ScheduledBlock] = []
        append = selected.append
        # ScheduledBlock construction only for the final slice, and only
        # for rows whose cached object is missing or carries a stale
        # ``duplicates`` — every other field of a candidate row is static,
        # so steady-state cycles mostly reuse last cycle's objects.
        for slot, row, idx, dst, dup in zip(
            sel_slot, sel_row, sel_idx, sel_dst, sel_dup
        ):
            job, group, _job_slot = group_refs[slot]
            obj = group.objs[row]
            if obj is None or group.objs_dup[row] != dup:
                obj = make(
                    job.job_id,
                    job.blocks[idx],
                    group.dc,
                    names[dst],
                    dup,
                    group.is_relay,
                )
                group.objs[row] = obj
                group.objs_dup[row] = dup
            append(obj)
        self.last_batch = SelectionBatch(
            jobs=list(view.jobs),
            gids=gid_col[order].tolist(),
            indices=sel_idx,
            dst_sids=sel_dst,
            dc_gids=dcgid_per_slot[slot_arr].tolist(),
            job_slots=jslot_per_slot[slot_arr].tolist(),
        )
        self.last_runtime = _time.perf_counter() - started
        return selected

    # -- scalar paths ------------------------------------------------------

    def _select_cached(
        self, view: ClusterView, cache, started: float
    ) -> List[ScheduledBlock]:
        """Scalar selection with per-cycle memoized store queries.

        Views with a :class:`~repro.net.cycle_cache.CycleCache` attached
        dedupe the rarity and source queries to one per distinct block id
        per cycle and sort without a per-comparison key callable. Same
        blocks, same order as the other paths.
        """
        # Validate the cycle memos once, then work on the raw dicts: at
        # 10^5 candidates even a method call per query is measurable.
        cache.validate_sources(view.store.epoch, view._failed_frozen)
        sources_memo = cache.sources
        rarity_memo = cache.rarity
        store = view.store
        holders_of = store.holders
        dup_of = store.duplicate_count
        failed = view.failed_agents
        # Sort tuples carry an insertion counter so ties keep arrival
        # order (same result as the legacy stable key=item[:4] sort)
        # without the per-comparison key lambda.
        candidates: List[Tuple[int, int, int, int, int, ScheduledBlock]] = []
        append = candidates.append
        order = 0
        for job in view.jobs:
            priority = getattr(job, "priority", 0)
            neg_priority = -priority
            job_id = job.job_id
            pending: List[Tuple[Block, str, str, bool]] = [
                (block, dc, server, False)
                for block, dc, server in view.pending_deliveries(job)
            ]
            if self.use_relays and job.relay_dcs:
                pending.extend(
                    (block, dc, server, True)
                    for block, dc, server in view.pending_relay_placements(job)
                )
            for block, dst_dc, dst_server, is_relay in pending:
                if dst_server in failed:
                    continue
                bid = block.block_id
                duplicates = rarity_memo.get(bid)
                if duplicates is None:
                    duplicates = dup_of(bid)
                    rarity_memo[bid] = duplicates
                if duplicates == 0:
                    continue
                sources = sources_memo.get(bid)
                if sources is None:
                    holders = holders_of(bid)
                    if failed:
                        sources = [s for s in holders if s not in failed]
                    else:
                        sources = list(holders)
                    sources_memo[bid] = sources
                if not sources:
                    continue
                append(
                    (
                        1 if is_relay else 0,
                        neg_priority,
                        duplicates,
                        block.index,
                        order,
                        ScheduledBlock(
                            job_id=job_id,
                            block=block,
                            dst_dc=dst_dc,
                            dst_server=dst_server,
                            duplicates=duplicates,
                            is_relay=is_relay,
                        ),
                    )
                )
                order += 1
        candidates.sort()
        selected = [item[5] for item in candidates]
        if self.max_blocks_per_cycle:
            selected = selected[: self.max_blocks_per_cycle]
        self.last_runtime = _time.perf_counter() - started
        return selected

    def _select_legacy(
        self, view: ClusterView, started: float
    ) -> List[ScheduledBlock]:
        """The original implementation: per-candidate store queries and a
        key-callable sort. Kept verbatim as the baseline the hot-path
        benchmark and determinism A/B run against."""
        candidates: List[Tuple[int, int, int, int, ScheduledBlock]] = []
        for job in view.jobs:
            priority = getattr(job, "priority", 0)
            pending = [
                (block, dc, server, False)
                for block, dc, server in view.pending_deliveries(job)
            ]
            if self.use_relays and job.relay_dcs:
                pending.extend(
                    (block, dc, server, True)
                    for block, dc, server in view.pending_relay_placements(job)
                )
            for block, dst_dc, dst_server, is_relay in pending:
                if not view.agent_is_up(dst_server):
                    continue
                duplicates = view.store.duplicate_count(block.block_id)
                if duplicates == 0:
                    continue
                if not view.eligible_sources(block.block_id):
                    continue
                candidates.append(
                    (
                        1 if is_relay else 0,
                        -priority,
                        duplicates,
                        block.index,
                        ScheduledBlock(
                            job_id=job.job_id,
                            block=block,
                            dst_dc=dst_dc,
                            dst_server=dst_server,
                            duplicates=duplicates,
                            is_relay=is_relay,
                        ),
                    )
                )
        candidates.sort(key=lambda item: item[:4])
        selected = [entry for _r, _p, _dup, _idx, entry in candidates]
        if self.max_blocks_per_cycle:
            selected = selected[: self.max_blocks_per_cycle]
        self.last_runtime = _time.perf_counter() - started
        return selected

"""Content-addressed on-disk cache of simulation results.

A simulation is a pure function of (topology, jobs, strategy, simulation
knobs, seed): the simulator is deterministic end to end, so a run whose
inputs have not changed never needs to execute again. This module gives
that fact teeth for the figure suite: every
:class:`~repro.analysis.parallel.RunSpec` is fingerprinted into a stable
SHA-256 key over the *canonical JSON* of its inputs plus a code-version
salt, and completed runs are stored as export payloads
(:mod:`repro.analysis.export`, format v3) under ``.repro-cache/``.

Salting: bump :data:`CACHE_CODE_VERSION` whenever a change alters
simulation *semantics* (delivery order, rate allocation, completion
accounting). Pure-performance changes that keep results bit-identical —
the incremental engine, the allocator's incremental load bookkeeping —
must NOT bump it, so warm caches survive optimization PRs.

Corrupted or truncated entries (interrupted writes, version skew) are
treated as misses: the entry is deleted and the run re-executes. Writes
go through a temp file + atomic rename so concurrent suite invocations
sharing one cache directory never observe half-written payloads.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Union

from repro.analysis.export import (
    EXPORT_FORMAT_VERSION,
    result_from_dict,
    result_to_dict,
)
from repro.net.simulator import SimResult
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob

PathLike = Union[str, Path]

#: Default cache location, overridable via the ``REPRO_CACHE_DIR``
#: environment variable or an explicit ``RunCache(root=...)``.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Simulation-semantics salt folded into every fingerprint. Bump on any
#: change that alters simulated results for identical inputs.
#: sim-v2: the fptas routing backend switched to the Fleischer phase
#: solver, which allocates (equally ε-optimal but numerically different)
#: path rates than the old global-argmin loop.
#: sim-v3: the array-native control plane (bitset possession matrix +
#: vectorized scheduler + batched router) became the default store. The
#: A/B harness asserts bit-identical results, but the default-config
#: code path changed end to end, so cached runs are re-validated once.
#: sim-v4: the data plane went array-native too (vectorized waterfill/
#: clip rate kernels + batched delivery application became the default).
#: Same bit-identity story as sim-v3: results are asserted equal, but
#: the default path is new, so cached runs are re-validated once.
#: sim-v5: the event-driven core (decision reuse + multi-cycle
#: fast-forward) became the default engine and exports moved to format
#: v6. Fingerprints are asserted identical to the tick loop, but the
#: default path is new, so cached runs are re-validated once.
#: sim-v6: the sharded control plane landed (shards=1 stays bit-identical
#: on the single-controller path) and exports moved to format v7
#: (per-cycle sharding telemetry), so cached payloads are refreshed once.
#: sim-v7: shard-local possession/candidate state became the default
#: sharded decide path (bit-identical to the shared-store sub-views, but
#: a new default path), affinity partitioning and the adaptive stride
#: landed, and exports moved to format v8 (per-shard state-bytes
#: telemetry), so cached payloads are refreshed once.
CACHE_CODE_VERSION = "sim-v7"


def _topology_payload(topology: Topology) -> Dict[str, Any]:
    """Canonical JSON shape of a topology (order-independent)."""
    return {
        "dcs": sorted(topology.dcs),
        "servers": sorted(
            [s.server_id, s.dc, s.uplink, s.downlink]
            for s in topology.servers.values()
        ),
        "links": sorted(
            [lnk.src_dc, lnk.dst_dc, lnk.capacity] for lnk in topology.links.values()
        ),
    }


def _job_payload(job: MulticastJob) -> Dict[str, Any]:
    """Canonical JSON shape of a job (striping is derived, so parameters
    plus the topology payload pin it down completely)."""
    return {
        "job_id": job.job_id,
        "src_dc": job.src_dc,
        "dst_dcs": list(job.dst_dcs),
        "relay_dcs": list(job.relay_dcs),
        "total_bytes": job.total_bytes,
        "block_size": job.block_size,
        "arrival_time": job.arrival_time,
        "priority": job.priority,
    }


def spec_fingerprint(
    topology: Topology,
    jobs: Sequence[MulticastJob],
    strategy: str,
    knobs: Mapping[str, Any],
    seed: Any,
    config: Any = None,
) -> Optional[str]:
    """SHA-256 content address of one run's inputs, or ``None``.

    ``None`` means the spec is *uncacheable*: the seed is a live RNG
    object or some knob is not JSON-representable, so no stable content
    address exists. Callers then simply execute the run.
    """
    if seed is not None and not isinstance(seed, int):
        return None
    if config is not None:
        try:
            from dataclasses import asdict

            config_payload: Any = asdict(config)
        except TypeError:
            return None
    else:
        config_payload = None
    payload = {
        "code_version": CACHE_CODE_VERSION,
        "export_version": EXPORT_FORMAT_VERSION,
        "topology": _topology_payload(topology),
        "jobs": [_job_payload(j) for j in jobs],
        "strategy": strategy,
        "knobs": dict(knobs),
        "seed": seed,
        "strategy_config": config_payload,
    }
    try:
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one :class:`RunCache` lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0  # corrupted/unreadable entries dropped and re-run

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalid": self.invalid,
        }


class RunCache:
    """Content-addressed store of exported :class:`SimResult` payloads.

    Layout: ``<root>/<key[:2]>/<key>.json`` — two-level fanout keeps
    directory listings manageable for thousands of entries.
    """

    def __init__(self, root: Optional[PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.stats = CacheStats()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: Optional[str]) -> Optional[SimResult]:
        """The restored result for ``key``, or ``None`` on a miss.

        A corrupted entry (bad JSON, wrong format version, missing
        fields) is deleted, counted in ``stats.invalid``, and reported as
        a miss so the caller re-runs and overwrites it.
        """
        if key is None:
            return None
        path = self._entry_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = result_from_dict(payload)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: Optional[str], result: SimResult) -> None:
        """Store an exported copy of ``result`` under ``key`` (atomic)."""
        if key is None:
            return
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = result_to_dict(result, include_cycles=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # -- maintenance --------------------------------------------------------

    def _entry_files(self) -> Iterable[Path]:
        if not self.root.is_dir():
            return []
        return self.root.glob("*/*.json")

    def entry_count(self) -> int:
        return sum(1 for _ in self._entry_files())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._entry_files())

    def purge(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        for path in list(self._entry_files()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        # Drop now-empty fanout directories (best-effort).
        if self.root.is_dir():
            for sub in list(self.root.iterdir()):
                if sub.is_dir():
                    try:
                        sub.rmdir()
                    except OSError:
                        pass
        return removed

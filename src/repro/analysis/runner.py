"""Strategy factory and simulation runner shared by experiments and benches."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.baselines import (
    AkamaiStrategy,
    BulletStrategy,
    ChainStrategy,
    DirectStrategy,
    GingkoStrategy,
    OverlayStrategy,
)
from repro.core import BDSConfig, BDSController
from repro.core.formulation import StandardLPRouter
from repro.net.background import BackgroundTraffic
from repro.net.failures import FailureSchedule
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike

STRATEGY_NAMES = (
    "bds",
    "bds-fptas",
    "bds-lp",
    "bds-standard-lp",
    "gingko",
    "bullet",
    "akamai",
    "chain",
    "direct",
)


def make_strategy(
    name: str, seed: SeedLike = None, config: Optional[BDSConfig] = None
) -> OverlayStrategy:
    """Build a fresh strategy by name.

    ``bds`` uses the fast greedy routing backend; ``bds-fptas`` / ``bds-lp``
    select the Garg–Könemann and exact-LP backends; ``bds-standard-lp``
    swaps in the non-decoupled joint LP router (the Fig. 13 baseline).
    """
    if name == "bds":
        return BDSController(config=config or BDSConfig(), seed=seed)
    if name == "bds-fptas":
        cfg = config or BDSConfig(routing_backend="fptas")
        return BDSController(config=cfg, seed=seed)
    if name == "bds-lp":
        cfg = config or BDSConfig(routing_backend="lp")
        return BDSController(config=cfg, seed=seed)
    if name == "bds-standard-lp":
        controller = BDSController(config=config or BDSConfig(), seed=seed)
        controller.router = StandardLPRouter()
        return controller
    if name == "gingko":
        return GingkoStrategy(seed=seed)
    if name == "bullet":
        return BulletStrategy(seed=seed)
    if name == "akamai":
        return AkamaiStrategy()
    if name == "chain":
        return ChainStrategy()
    if name == "direct":
        return DirectStrategy()
    raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGY_NAMES}")


def run_simulation(
    topology: Topology,
    jobs: Sequence[MulticastJob],
    strategy_name: str,
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = None,
    background: Optional[BackgroundTraffic] = None,
    failures: Optional[FailureSchedule] = None,
    record_link_stats: bool = False,
    config: Optional[BDSConfig] = None,
    safety_threshold: float = 0.8,
    incremental_engine: bool = True,
    control_overhead_seconds: float = 0.0,
    flow_setup_seconds: float = 0.0,
    stop_when_complete: bool = True,
    links_of_interest: tuple = (),
    vectorized_store: bool = True,
    vectorized_flow: bool = True,
    event_engine: bool = True,
    record_cycle_stats: bool = True,
    shards: int = 1,
    shard_seed: int = 0,
    shard_stride: Union[int, str] = 1,
    shard_mode: str = "inprocess",
    shard_partition: str = "hash",
) -> SimResult:
    """Run one strategy over the given jobs and return the result.

    Exposes every :class:`SimConfig` knob — including the
    ``incremental_engine`` / ``vectorized_store`` / ``vectorized_flow`` /
    ``event_engine`` A/B switches and the Fig. 12c overhead model — so
    sweeps and the parallel engine can exercise both engines without
    hand-building a :class:`Simulation`. ``record_cycle_stats=False``
    drops the per-cycle records for day-scale horizons where the stats
    list would dominate memory.

    ``shards``/``shard_seed``/``shard_stride``/``shard_mode``/
    ``shard_partition`` configure the sharded control plane (BDS
    strategies only; see :class:`BDSConfig`). ``shard_stride`` also
    accepts the string ``"auto"`` for the adaptive stride. Non-default
    values are overlaid onto ``config`` — explicit shard fields in a
    caller-supplied config win only when the keyword is left at its
    default.
    """
    if (shards, shard_seed, shard_stride, shard_mode, shard_partition) != (
        1,
        0,
        1,
        "inprocess",
        "hash",
    ):
        import dataclasses

        base = config or BDSConfig()
        updates: Dict[str, Any] = {}
        if shards != 1:
            updates["shards"] = shards
        if shard_seed != 0:
            updates["shard_seed"] = shard_seed
        if shard_stride != 1:
            updates["shard_stride"] = shard_stride
        if shard_mode != "inprocess":
            updates["shard_mode"] = shard_mode
        if shard_partition != "hash":
            updates["shard_partition"] = shard_partition
        config = dataclasses.replace(base, **updates)
    strategy = make_strategy(strategy_name, seed=seed, config=config)
    sim = Simulation(
        topology=topology,
        jobs=list(jobs),
        strategy=strategy,
        config=SimConfig(
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
            record_link_stats=record_link_stats,
            safety_threshold=safety_threshold,
            incremental_engine=incremental_engine,
            control_overhead_seconds=control_overhead_seconds,
            flow_setup_seconds=flow_setup_seconds,
            stop_when_complete=stop_when_complete,
            links_of_interest=tuple(links_of_interest),
            vectorized_store=vectorized_store,
            vectorized_flow=vectorized_flow,
            event_engine=event_engine,
            record_cycle_stats=record_cycle_stats,
        ),
        background=background,
        failures=failures,
        seed=seed,
    )
    try:
        return sim.run()
    finally:
        # Release any process fan-out workers the strategy holds
        # (sharded controller in shard_mode="process"; no-op otherwise).
        shutdown = getattr(strategy, "shutdown", None)
        if shutdown is not None:
            shutdown()


def compare_strategies(
    topology_factory: Callable[[], Topology],
    jobs_factory: Callable[[Topology], List[MulticastJob]],
    strategy_names: Sequence[str],
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = 7,
    workers: int = 1,
    cache=None,
    progress: bool = False,
) -> Dict[str, SimResult]:
    """Run several strategies over *fresh* identical topologies and jobs.

    Factories are invoked per strategy so that no simulation state (job
    binding, strategy caches) leaks between runs. ``workers>1`` fans the
    per-strategy runs out over a process pool
    (:func:`repro.analysis.parallel.run_many`) with results bit-identical
    to ``workers=1``; ``cache`` (a
    :class:`repro.analysis.runcache.RunCache`) skips runs whose inputs
    are already cached.
    """
    from repro.analysis.parallel import RunSpec, run_many

    def scenario() -> tuple:
        topology = topology_factory()
        return topology, jobs_factory(topology)

    specs = [
        RunSpec(
            strategy=name,
            seed=seed,
            scenario=scenario,
            label=name,
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
        )
        for name in strategy_names
    ]
    outcomes = run_many(specs, workers=workers, cache=cache, progress=progress)
    results: Dict[str, SimResult] = {}
    for name, outcome in zip(strategy_names, outcomes):
        if not outcome.ok:
            raise RuntimeError(
                f"strategy {name!r} failed: {outcome.error}"
            )
        results[name] = outcome.result
    return results

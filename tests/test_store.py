"""Possession index: updates, queries, provenance."""

import pytest

from repro.overlay.blocks import Block
from repro.overlay.store import PossessionIndex


@pytest.fixture
def store() -> PossessionIndex:
    return PossessionIndex(
        {"a0": "A", "a1": "A", "b0": "B", "b1": "B", "c0": "C"}
    )


BLOCK = Block(job_id="j", index=0, size=100.0)
BLOCK2 = Block(job_id="j", index=1, size=100.0)


class TestSeedAndQuery:
    def test_seed_makes_holder(self, store):
        store.seed("a0", [BLOCK])
        assert store.has("a0", BLOCK.block_id)
        assert store.holders(BLOCK.block_id) == {"a0"}

    def test_seed_produces_no_delivery_records(self, store):
        store.seed("a0", [BLOCK])
        assert store.deliveries == []

    def test_duplicate_count(self, store):
        store.seed("a0", [BLOCK])
        store.seed("b0", [BLOCK])
        assert store.duplicate_count(BLOCK.block_id) == 2

    def test_unknown_block_has_zero_duplicates(self, store):
        assert store.duplicate_count(("j", 99)) == 0
        assert store.holders(("j", 99)) == set()

    def test_dc_has_block(self, store):
        store.seed("a0", [BLOCK])
        assert store.dc_has_block("A", BLOCK.block_id)
        assert not store.dc_has_block("B", BLOCK.block_id)

    def test_dc_copy_count(self, store):
        store.seed("a0", [BLOCK])
        store.seed("a1", [BLOCK])
        assert store.dc_copy_count("A", BLOCK.block_id) == 2

    def test_blocks_on(self, store):
        store.seed("a0", [BLOCK, BLOCK2])
        assert store.blocks_on("a0") == {BLOCK.block_id, BLOCK2.block_id}

    def test_unknown_server_rejected(self, store):
        with pytest.raises(KeyError):
            store.seed("ghost", [BLOCK])


class TestDeliveries:
    def test_record_delivery_updates_index(self, store):
        store.seed("a0", [BLOCK])
        record = store.record_delivery(BLOCK, "a0", "b0", time=5.0, origin_dc="A")
        assert record is not None
        assert record.from_origin_dc
        assert store.has("b0", BLOCK.block_id)

    def test_duplicate_delivery_is_noop(self, store):
        store.seed("a0", [BLOCK])
        store.record_delivery(BLOCK, "a0", "b0", 1.0, "A")
        again = store.record_delivery(BLOCK, "a0", "b0", 2.0, "A")
        assert again is None
        assert len(store.deliveries) == 1

    def test_overlay_delivery_not_from_origin(self, store):
        store.seed("a0", [BLOCK])
        store.record_delivery(BLOCK, "a0", "b0", 1.0, "A")
        record = store.record_delivery(BLOCK, "b0", "c0", 2.0, "A")
        assert record is not None
        assert not record.from_origin_dc

    def test_origin_fraction_by_server(self, store):
        store.seed("a0", [BLOCK, BLOCK2])
        store.record_delivery(BLOCK, "a0", "b0", 1.0, "A")  # from origin
        store.record_delivery(BLOCK2, "a0", "c0", 1.0, "A")  # from origin
        store.record_delivery(BLOCK, "b0", "c0", 2.0, "A")  # overlay
        fractions = store.origin_fraction_by_server()
        assert fractions["b0"] == 1.0
        assert fractions["c0"] == 0.5

    def test_origin_fraction_empty(self, store):
        assert store.origin_fraction_by_server() == {}


class TestDropServer:
    def test_drop_removes_copies(self, store):
        store.seed("a0", [BLOCK, BLOCK2])
        store.drop_server("a0")
        assert not store.has("a0", BLOCK.block_id)
        assert store.duplicate_count(BLOCK.block_id) == 0
        assert not store.dc_has_block("A", BLOCK.block_id)

    def test_drop_keeps_other_copies(self, store):
        store.seed("a0", [BLOCK])
        store.seed("a1", [BLOCK])
        store.drop_server("a0")
        assert store.dc_has_block("A", BLOCK.block_id)
        assert store.duplicate_count(BLOCK.block_id) == 1

    def test_drop_unknown_server_is_noop(self, store):
        store.drop_server("nope")  # nothing to do, nothing raised

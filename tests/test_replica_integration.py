"""ControllerReplicaSet and AgentMonitor wired into the simulation."""


from repro.core import BDSController, ControllerReplicaSet
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.latency import LatencyModel
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.monitor import AgentMonitor
from repro.utils.units import GB, MB, MBps


def setup(size=60 * MB, uplink=2 * MBps):
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=uplink
    )
    from repro.overlay.job import MulticastJob

    job = MulticastJob(
        job_id="j", src_dc="dc0", dst_dcs=("dc1", "dc2"),
        total_bytes=size, block_size=4 * MB,
    )
    job.bind(topo)
    return topo, job


class TestReplicaIntegration:
    def test_leader_failover_keeps_centralized_control(self):
        """Killing one replica triggers an election, not a fallback."""
        topo, job = setup()
        replicas = ControllerReplicaSet()
        failures = FailureSchedule(
            [FailureEvent(cycle=2, kind="replica_fail", target="controller-0")]
        )
        controller = BDSController(seed=0)
        result = Simulation(
            topo,
            [job],
            controller,
            SimConfig(max_cycles=3000),
            failures=failures,
            replica_set=replicas,
            seed=0,
        ).run()
        assert result.all_complete
        assert replicas.leader == "controller-1"
        # The election completed within the cycle; control never lapsed.
        assert all(s.controller_available for s in result.cycle_stats)

    def test_losing_all_replicas_triggers_fallback(self):
        topo, job = setup()
        replicas = ControllerReplicaSet()
        events = [
            FailureEvent(cycle=2, kind="replica_fail", target=name)
            for name in ("controller-0", "controller-1", "controller-2")
        ] + [
            FailureEvent(cycle=6, kind="replica_recover", target="controller-0")
        ]
        controller = BDSController(seed=0)
        result = Simulation(
            topo,
            [job],
            controller,
            SimConfig(max_cycles=3000),
            failures=FailureSchedule(events),
            replica_set=replicas,
            seed=0,
        ).run()
        assert result.all_complete
        down_cycles = [
            s.cycle for s in result.cycle_stats if not s.controller_available
        ]
        assert down_cycles and min(down_cycles) == 2
        assert max(down_cycles) <= 6  # leader back by cycle 6's election

    def test_replica_events_require_replica_set(self):
        """Without a replica set, replica events are inert (no crash)."""
        topo, job = setup(size=12 * MB, uplink=10 * MBps)
        failures = FailureSchedule(
            [FailureEvent(cycle=0, kind="replica_fail", target="controller-0")]
        )
        result = Simulation(
            topo,
            [job],
            BDSController(seed=0),
            SimConfig(max_cycles=100),
            failures=failures,
            seed=0,
        ).run()
        assert result.all_complete


class TestMonitorIntegration:
    def test_feedback_samples_collected(self):
        topo, job = setup(size=24 * MB, uplink=10 * MBps)
        monitor = AgentMonitor(controller_dc="dc0", latency=LatencyModel(seed=1))
        result = Simulation(
            topo,
            [job],
            BDSController(seed=0),
            SimConfig(max_cycles=100),
            agent_monitor=monitor,
            seed=0,
        ).run()
        assert result.all_complete
        assert len(result.feedback_samples) == result.cycles_run
        for sample in result.feedback_samples:
            assert sample.total > 0
            assert sample.algorithm_runtime >= 0

    def test_no_monitor_means_no_samples(self):
        topo, job = setup(size=12 * MB, uplink=10 * MBps)
        result = Simulation(
            topo, [job], BDSController(seed=0), SimConfig(max_cycles=100), seed=0
        ).run()
        assert result.feedback_samples == []

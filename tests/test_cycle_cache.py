"""The per-cycle query cache: dedupe guarantees and invalidation rules.

The scheduler and router together used to issue one rarity query and two
eligible-source queries per pending (block, destination) pair per cycle.
With the :class:`~repro.net.cycle_cache.CycleCache` attached, the store
must be consulted at most once per distinct block id per cycle — that is
the contract the counting-proxy tests pin down. The invalidation tests
pin the epoch/failure validity keys that make stale answers impossible.
"""

from __future__ import annotations

from repro.core import BDSController
from repro.core.scheduling import RarestFirstScheduler
from repro.net.cycle_cache import CycleCache
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


class CountingStore:
    """Read-only proxy counting per-block store queries."""

    def __init__(self, store):
        self._store = store
        self.duplicate_count_calls = {}
        self.holders_calls = {}

    def __getattr__(self, name):
        return getattr(self._store, name)

    def duplicate_count(self, block_id):
        self.duplicate_count_calls[block_id] = (
            self.duplicate_count_calls.get(block_id, 0) + 1
        )
        return self._store.duplicate_count(block_id)

    def holders(self, block_id):
        self.holders_calls[block_id] = self.holders_calls.get(block_id, 0) + 1
        return self._store.holders(block_id)


def _sim(num_dcs: int = 4, blocks: int = 12) -> Simulation:
    topo = Topology.full_mesh(
        num_dcs=num_dcs, servers_per_dc=2, wan_capacity=100 * MBps, uplink=25 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, num_dcs)),
        total_bytes=blocks * MB,
        block_size=1 * MB,
    )
    job.bind(topo)
    return Simulation(
        topology=topo,
        jobs=[job],
        strategy=BDSController(seed=0),
        seed=0,
        config=SimConfig(incremental_engine=True),
    )


class TestSchedulerQueryDedupe:
    def test_one_store_query_per_block_per_cycle(self):
        """Every block pends for 3 destinations, yet rarity and holders
        hit the store at most once per block."""
        sim = _sim()
        view = sim.snapshot_view()
        counter = CountingStore(sim.store)
        view.store = counter

        selected = RarestFirstScheduler().select(view)
        # All (block, destination) pairs are pending and selectable.
        assert len(selected) == 12 * 3
        assert counter.duplicate_count_calls
        assert all(
            n == 1 for n in counter.duplicate_count_calls.values()
        ), counter.duplicate_count_calls
        assert all(n <= 1 for n in counter.holders_calls.values())

    def test_second_select_same_cycle_hits_cache_only(self):
        sim = _sim()
        view = sim.snapshot_view()
        counter = CountingStore(sim.store)
        view.store = counter

        scheduler = RarestFirstScheduler()
        scheduler.select(view)
        first = dict(counter.duplicate_count_calls)
        scheduler.select(view)
        assert counter.duplicate_count_calls == first

    def test_legacy_view_queries_per_pair(self):
        """Without a cache the original per-pair query pattern remains."""
        sim = _sim()
        sim.config.incremental_engine = False
        view = sim.snapshot_view()
        counter = CountingStore(sim.store)
        view.store = counter

        RarestFirstScheduler().select(view)
        # One rarity query per (block, destination) pair: 3 per block.
        assert all(
            n == 3 for n in counter.duplicate_count_calls.values()
        ), counter.duplicate_count_calls


class TestViewCachedQueries:
    def test_store_mutation_invalidates_sources(self):
        sim = _sim()
        view = sim.snapshot_view()
        job = sim.jobs[0]
        block = job.blocks[0]
        assert view.duplicate_count(block.block_id) == 1
        # Out-of-band possession change bumps the store epoch; the memo
        # must not serve the stale count.
        dst = job.assigned_server("dc1", block.block_id)
        sim.store.seed(dst, [block])
        assert view.duplicate_count(block.block_id) == 2
        assert len(view.eligible_sources(block.block_id)) == 2

    def test_failed_agent_set_changes_flush_sources(self):
        sim = _sim()
        view = sim.snapshot_view()
        job = sim.jobs[0]
        bid = job.blocks[0].block_id
        sources = view.eligible_sources(bid)
        assert sources
        clone = view.with_extra_failed_agents(set(sources))
        assert clone.eligible_sources(bid) == []
        # The base view's answer is rebuilt after the clone flushed the
        # shared cache with its different failure key.
        assert view.eligible_sources(bid) == sources


class TestCycleCacheInvalidation:
    def test_paths_survive_same_key(self):
        cache = CycleCache()
        table = cache.validate_paths(1, frozenset())
        table[("a", "b")] = ()
        assert cache.validate_paths(1, frozenset()) is table
        assert cache.flushes == 0

    def test_paths_flush_on_topology_epoch(self):
        cache = CycleCache()
        cache.validate_paths(1, frozenset())[("a", "b")] = ()
        assert cache.validate_paths(2, frozenset()) == {}
        assert cache.flushes == 1

    def test_paths_flush_on_failed_links_change(self):
        cache = CycleCache()
        cache.validate_paths(1, frozenset())[("a", "b")] = ()
        assert cache.validate_paths(1, frozenset({("dc0", "dc1")})) == {}
        assert cache.flushes == 1

    def test_sources_flush_on_store_epoch(self):
        cache = CycleCache()
        cache.validate_sources(1, frozenset())
        cache.sources[("j", 0)] = ["s1"]
        cache.rarity[("j", 0)] = 1
        cache.validate_sources(2, frozenset())
        assert cache.sources == {}
        assert cache.rarity == {}
        assert cache.flushes == 1

    def test_sources_flush_on_failed_agents_change(self):
        cache = CycleCache()
        cache.validate_sources(1, frozenset())
        cache.sources[("j", 0)] = ["s1"]
        cache.validate_sources(1, frozenset({"s1"}))
        assert cache.sources == {}
        assert cache.flushes == 1

    def test_empty_flush_not_counted(self):
        cache = CycleCache()
        cache.validate_sources(1, frozenset())
        cache.validate_sources(2, frozenset())
        assert cache.flushes == 0

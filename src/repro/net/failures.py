"""Failure injection schedules for fault-tolerance experiments (§5.3, Fig. 12a).

A :class:`FailureSchedule` is a declarative list of events at cycle
boundaries: agents (servers) failing and recovering, the controller failing
and recovering, and WAN links partitioning. The simulator queries the
schedule each cycle; components react exactly as the paper describes
(failed agents drop out as sources/sinks, a failed controller triggers the
decentralized fallback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set, Tuple

VALID_KINDS = {
    "agent_fail",
    "agent_recover",
    "controller_fail",
    "controller_recover",
    "link_fail",
    "link_recover",
    # Per-replica controller events: only meaningful when the simulation
    # runs with a ControllerReplicaSet; target is the replica name.
    "replica_fail",
    "replica_recover",
}


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled event: at the start of ``cycle``, apply ``kind``.

    ``target`` is a server id for agent events, a ``(src_dc, dst_dc)`` tuple
    for link events, and ignored for controller events.
    """

    cycle: int
    kind: str
    target: Optional[object] = None

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("cycle must be >= 0")
        if self.kind.startswith(("agent", "link", "replica")) and self.target is None:
            raise ValueError(f"{self.kind} requires a target")


class FailureSchedule:
    """Tracks which components are down as simulation cycles advance."""

    def __init__(self, events: Iterable[FailureEvent] = ()) -> None:
        self.events: List[FailureEvent] = sorted(events, key=lambda e: e.cycle)
        self._applied_through = -1
        self.failed_agents: Set[str] = set()
        self.failed_links: Set[Tuple[str, str]] = set()
        self.failed_replicas: Set[str] = set()
        self.controller_down = False

    def add(self, event: FailureEvent) -> None:
        """Add an event; only allowed for cycles not yet applied."""
        if event.cycle <= self._applied_through:
            raise ValueError(
                f"cannot schedule event at cycle {event.cycle}; "
                f"already applied through {self._applied_through}"
            )
        self.events.append(event)
        self.events.sort(key=lambda e: e.cycle)

    def advance_to(self, cycle: int) -> List[FailureEvent]:
        """Apply all events with ``event.cycle <= cycle``; returns them."""
        applied: List[FailureEvent] = []
        for event in self.events:
            if event.cycle <= self._applied_through or event.cycle > cycle:
                continue
            self._apply(event)
            applied.append(event)
        self._applied_through = max(self._applied_through, cycle)
        return applied

    def _apply(self, event: FailureEvent) -> None:
        if event.kind == "agent_fail":
            self.failed_agents.add(str(event.target))
        elif event.kind == "agent_recover":
            self.failed_agents.discard(str(event.target))
        elif event.kind == "controller_fail":
            self.controller_down = True
        elif event.kind == "controller_recover":
            self.controller_down = False
        elif event.kind == "link_fail":
            self.failed_links.add(tuple(event.target))  # type: ignore[arg-type]
        elif event.kind == "link_recover":
            self.failed_links.discard(tuple(event.target))  # type: ignore[arg-type]
        elif event.kind == "replica_fail":
            self.failed_replicas.add(str(event.target))
        elif event.kind == "replica_recover":
            self.failed_replicas.discard(str(event.target))

    def next_change_after(self, cycle: int) -> Optional[int]:
        """The first cycle strictly after ``cycle`` with a scheduled event.

        ``None`` means no further events exist: the failure state is
        constant for the rest of the run. This is the horizon API the
        event-driven simulator core uses to bound its fast-forward — a
        stretch of cycles may only be skipped if every one of them is
        known to apply no failure event (events at the stretch's end
        cycle are applied normally when that cycle executes).
        """
        for event in self.events:
            if event.cycle > cycle:
                return event.cycle
        return None

    def agent_is_up(self, server_id: str) -> bool:
        return server_id not in self.failed_agents

    def link_is_up(self, src_dc: str, dst_dc: str) -> bool:
        return (src_dc, dst_dc) not in self.failed_links

    @staticmethod
    def paper_fig12a(agent: str) -> "FailureSchedule":
        """The exact schedule of Fig. 12a.

        One agent fails at cycle 10; the controller fails at cycle 20 and
        recovers at cycle 30.
        """
        return FailureSchedule(
            [
                FailureEvent(cycle=10, kind="agent_fail", target=agent),
                FailureEvent(cycle=11, kind="agent_recover", target=agent),
                FailureEvent(cycle=20, kind="controller_fail"),
                FailureEvent(cycle=30, kind="controller_recover"),
            ]
        )

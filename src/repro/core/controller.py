"""The BDS controller: fully centralized overlay control (§3, §5.1, Fig. 8).

Each cycle the controller (1) reads the global data-delivery view, (2) runs
the scheduling step, (3) runs the routing step, and (4) emits rate-capped
transfer directives for the agents. When the controller is unreachable
(all replicas down or the DC partitioned away), agents *fall back to the
decentralized overlay protocol* — Gingko — ensuring graceful degradation
(§5.3); performance recovers the cycle the controller returns (Fig. 12a).

**Sharded control plane** (``BDSConfig.shards > 1``): the job set is
partitioned across controller shards — by a platform-stable seeded hash
of job id (:mod:`repro.core.sharding`), or with
``shard_partition="affinity"`` by the greedy source-affinity assigner
(jobs sharing a source DC co-locate, balanced by pair-count weight, hash
tie-breaks), which lowers the outer reconciliation's clip count because
one shard sees the contention on its origin links. Jobs are independent
except for WAN link budgets — blocks belong to exactly one job, so
possession, scheduling, and routing all decompose — and each shard runs
the full vectorized schedule+route pipeline on its own partition.

By default (``shard_local_state=True``) each shard owns **only its
partition's state**: a :class:`~repro.core.shardexec.ShardMirror` with a
shard-local possession index, candidate table, and
:class:`~repro.net.cycle_cache.CycleCache`, fed by delivery-log
watermark replay (see :mod:`repro.core.shardexec`) — per-shard memory
and cold-build work are O(pairs/shards). ``shard_local_state=False``
restores the PR 7 shared-store sub-views; results are identical either
way. The shared capacities are resolved afterwards by one outer max-min
waterfill (:func:`repro.net.flow.max_min_fair_rates` — the data plane's
own allocator) over every shard's directives against the
budget-adjusted capacities, so no directive's cap exceeds its global
fair share and the Fig. 10 "sum of assigned rates never exceeds the
budget" property holds at the controller output already.

``shard_stride="auto"`` replaces the static decide cadence with an
adaptive control law: the stride starts maximally staggered (stride =
shards, one shard's decide per cycle — the safe side of the ΔT budget,
since nothing is known about per-shard cost yet) and then tracks an
EWMA of the measured per-shard wall (``time_shard_max``): it narrows
one step at a time while the projected per-cycle controller wall —
``ceil(shards/stride)`` shards' worth of work — stays under 70 % of
``shard_stride_target × cycle_seconds``, and widens back immediately
when the projection exceeds that budget (narrowing has the hysteresis;
widening has none — the budget is a feasibility bound, §5.2's ΔT, not
a preference).

``shards=1`` takes the original single-controller path, bit-identical to
before the knob existed; ``shards=k`` is deterministic (shards are
combined in index order, independent of execution mode or worker
scheduling).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import OverlayStrategy
from repro.baselines.gingko import GingkoStrategy
from repro.core.config import SHARD_STRIDE_AUTO, BDSConfig
from repro.core.decisions import ControlDecision
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.core.sharding import AffinityAssigner, stable_shard
from repro.core.shardexec import LocalShardRunner, ShardExecutor, ShardResult
from repro.core.speculation import DeliverySpeculator, SpeculatedView
from repro.net.cycle_cache import CycleCache
from repro.net.simulator import ClusterView, TransferDirective
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike

#: Adaptive-stride control-law constants (``shard_stride="auto"``):
#: smoothing factor of the per-shard wall EWMA, and the hysteresis
#: fraction of the wall budget the projection must fall under before the
#: stride narrows (widening has no hysteresis — the budget is a
#: feasibility bound, §5.2's ΔT, not a preference).
_STRIDE_EWMA_ALPHA = 0.3
_STRIDE_NARROW_FRACTION = 0.7


class _ShardPipeline:
    """One shard's private control pipeline plus its replay state.

    Each shard owns a scheduler, a router (with its own FPTAS warm
    store), and a persistent :class:`CycleCache` — nothing here is
    shared across shards, so in-process shard execution in index order
    and process fan-out produce identical state evolution.

    ``directives`` / ``context`` implement the stride cadence
    (``BDSConfig.shard_stride``): between a shard's decide turns its
    last fresh directives are replayed verbatim (the simulator
    re-validates them and refreshes their demands every cycle, exactly
    as the event engine's decision reuse does), and any change of the
    failure/topology context forces an immediate fresh decide.
    """

    __slots__ = ("scheduler", "router", "cache", "directives", "context")

    def __init__(self, config: BDSConfig) -> None:
        self.scheduler = RarestFirstScheduler(
            max_blocks_per_cycle=config.max_blocks_per_cycle,
            use_relays=config.use_relays,
        )
        self.router = BDSRouter(
            backend=config.routing_backend,
            epsilon=config.epsilon,
            max_sources_per_group=config.max_sources_per_group,
            merge_blocks=config.merge_blocks,
        )
        self.cache = CycleCache()
        self.directives: Optional[List[TransferDirective]] = None
        self.context: Optional[tuple] = None


class BDSController(OverlayStrategy):
    """Centralized scheduler + router with decentralized fallback."""

    uses_controller_rates = True
    respects_safety_threshold = True
    # The controller is a deterministic function of the view while the
    # event engine's validity key holds; the per-decision reuse_horizon
    # below narrows that claim where demands drain (§5.2 decision reuse).
    decisions_reusable = True

    def __init__(
        self,
        config: Optional[BDSConfig] = None,
        fallback: Optional[OverlayStrategy] = None,
        seed: SeedLike = None,
        controller_dc: Optional[str] = None,
    ) -> None:
        """``controller_dc`` locates the controller for §5.3 partition
        handling: when WAN link failures cut DCs off from it, those DCs'
        transfers run on the decentralized fallback while the rest stay
        centrally controlled. ``None`` (default) treats the controller as
        reachable from everywhere."""
        self.config = config or BDSConfig()
        self.controller_dc = controller_dc
        self.scheduler = RarestFirstScheduler(
            max_blocks_per_cycle=self.config.max_blocks_per_cycle,
            use_relays=self.config.use_relays,
        )
        self.router = BDSRouter(
            backend=self.config.routing_backend,
            epsilon=self.config.epsilon,
            max_sources_per_group=self.config.max_sources_per_group,
            merge_blocks=self.config.merge_blocks,
        )
        self.fallback = fallback or GingkoStrategy(seed=seed)
        self.decisions: List[ControlDecision] = []
        self._fallback_active = False
        self._speculator = (
            DeliverySpeculator(self.config.speculation_horizon)
            if self.config.speculation_horizon > 0
            else None
        )
        self._previous_directives: List[TransferDirective] = []
        # Sharded control plane (shards > 1): per-shard pipelines, the
        # memoized job→shard assignment (sticky — possession state lives
        # where the job lives), the lazily started execution backends
        # (in-process mirrors / process fan-out), and the adaptive
        # stride state.
        self._pipelines: List[_ShardPipeline] = (
            [_ShardPipeline(self.config) for _ in range(self.config.shards)]
            if self.config.shards > 1
            else []
        )
        self._shard_assign: Dict[str, int] = {}
        self._affinity: Optional[AffinityAssigner] = (
            AffinityAssigner(self.config.shards, seed=self.config.shard_seed)
            if self.config.shards > 1
            and self.config.shard_partition == "affinity"
            else None
        )
        self._shard_executor: Optional[ShardExecutor] = None
        self._shard_runner: Optional[LocalShardRunner] = None
        self._stride_auto = self.config.shard_stride == SHARD_STRIDE_AUTO
        # Auto mode starts maximally staggered (one shard per cycle) and
        # narrows as measurements show slack; a static stride is taken
        # as configured.
        self._stride: int = (
            max(1, self.config.shards)
            if self._stride_auto
            else int(self.config.shard_stride)
        )
        self._shard_wall_ewma: float = 0.0

    @property
    def fallback_active(self) -> bool:
        """Whether the last cycle ran on the decentralized fallback."""
        return self._fallback_active

    @property
    def shard_signature(self) -> Optional[Tuple[int, int, int, str]]:
        """Sharding identity for the event engine's validity key.

        ``(shards, shard_seed, effective_stride, shard_partition)`` when
        sharded, ``None`` on the single-controller path — so a decision
        cached under one shard layout is never replayed under another.
        The *effective* stride (not the configured knob) is what goes in:
        under ``shard_stride="auto"`` a stride change re-keys every
        cached decision, exactly as resizing the static knob would.
        """
        if self.config.shards <= 1:
            return None
        return (
            self.config.shards,
            self.config.shard_seed,
            self._stride,
            self.config.shard_partition,
        )

    @property
    def wants_shard_local_state(self) -> bool:
        """True when shards decide against partition-scoped mirrors.

        The :class:`~repro.net.simulator.Simulation` probes this to skip
        building the global candidate table — the mirrors build their
        own shard-scoped tables, so the global O(pairs) build would be
        dead weight (only speculation-overlay cycles would miss it, on
        their already-scalar fallback path).
        """
        return self.config.shards > 1 and self.config.shard_local_state

    def _assign_shard(self, job: MulticastJob) -> int:
        """The job's shard, assigning it on first sight (sticky after)."""
        shard = self._shard_assign.get(job.job_id)
        if shard is None:
            if self._affinity is not None:
                shard = self._affinity.assign(job)
            else:
                shard = stable_shard(
                    job.job_id, self.config.shards, self.config.shard_seed
                )
            self._shard_assign[job.job_id] = shard
        return shard

    def _shard_of_id(self, job_id: str) -> int:
        """Shard ownership lookup by bare job id (the feed's filter).

        Every job with possession churn was bucketed — and therefore
        assigned — before its first delivery, so the memo answers; the
        stable-hash fallback only covers ids the controller has never
        seen (nothing real routes through it, and it is not memoized so
        an affinity assignment made later still wins).
        """
        shard = self._shard_assign.get(job_id)
        if shard is not None:
            return shard
        return stable_shard(job_id, self.config.shards, self.config.shard_seed)

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        """One control cycle: schedule, route, emit directives.

        When ``view.controller_available`` is false the decentralized
        fallback decides instead; its flows are *not* rate-capped by the
        simulator because ``uses_controller_rates`` only applies while the
        controller is reachable (the simulator checks both).
        """
        if not view.controller_available:
            self._fallback_active = True
            return self.fallback.decide(view)
        self._fallback_active = False

        # §5.3 partition handling: DCs severed from the controller's DC run
        # on the fallback; the controller only commands its own partition.
        fallback_directives: List[TransferDirective] = []
        if self.controller_dc is not None and view.failed_links:
            reachable = view.topology.reachable_dcs(
                self.controller_dc, view.failed_links
            )
            severed_servers = {
                server.server_id
                for server in view.topology.servers.values()
                if server.dc not in reachable
            }
            if severed_servers:
                fallback_directives = [
                    d
                    for d in self.fallback.decide(view)
                    if view.store.dc_of(d.dst_server) not in reachable
                ]
                view = view.with_extra_failed_agents(severed_servers)

        if self._speculator is not None and self._previous_directives:
            block_sizes = {
                block.block_id: block.size
                for job in view.jobs
                for block in job.blocks
            }
            speculated = self._speculator.speculate(
                view, self._previous_directives, block_sizes
            )
            if speculated:
                view = SpeculatedView(view, speculated)

        if self.config.shards > 1:
            return self._decide_sharded(view, fallback_directives)

        selections = self.scheduler.select(view)
        directives, diagnostics = self.router.route(
            view,
            selections,
            batch=getattr(self.scheduler, "last_batch", None),
        )
        # A partition-fallback slice runs the RNG-bearing decentralized
        # protocol and a speculation overlay perturbs next cycle's view
        # from this cycle's directives — neither output is a pure function
        # of the validity key, so both veto reuse outright.
        reuse_horizon = (
            0
            if (fallback_directives or self._speculator is not None)
            else diagnostics.reuse_horizon
        )
        self.decisions.append(
            ControlDecision(
                cycle=view.cycle,
                directives=directives,
                scheduled_blocks=len(selections),
                num_commodities=diagnostics.num_commodities,
                schedule_runtime=getattr(self.scheduler, "last_runtime", 0.0),
                routing_runtime=diagnostics.runtime,
                objective=diagnostics.objective,
                routing_iterations=diagnostics.iterations,
                routing_phases=diagnostics.phases,
                routing_warm_start=diagnostics.warm_start,
                reuse_horizon=reuse_horizon,
            )
        )
        self._previous_directives = directives
        return directives + fallback_directives

    # -- sharded control plane -------------------------------------------------

    def _decide_sharded(
        self,
        view: ClusterView,
        fallback_directives: List[TransferDirective],
    ) -> List[TransferDirective]:
        """Partitioned decide: per-shard pipelines + WAN reconciliation."""
        cfg = self.config
        k = cfg.shards
        stride = self._stride
        buckets: List[List[MulticastJob]] = [[] for _ in range(k)]
        for job in view.jobs:
            buckets[self._assign_shard(job)].append(job)

        # Exactness witness: a speculation overlay wraps the store, so
        # the persistent per-shard caches (whose memos answer for the
        # real store) must not be used for its sub-views.
        exact = view.store is getattr(view, "_map_store", None)
        context = (view._failed_frozen, view.failed_links, view.topology.epoch)

        due: List[int] = []
        replayed = False
        for s in range(k):
            pipe = self._pipelines[s]
            if not buckets[s]:
                # Shard has no active jobs: nothing to decide or replay.
                pipe.directives = []
                pipe.context = context
                continue
            # A shard decides on its stride turn; off-turn it replays its
            # cached directives — or contributes nothing if it has not
            # had a turn yet (staggered cold start: this is what bounds
            # the per-cycle controller wall to ~ceil(k/stride) shards'
            # work even on cycle 0). Two events break the cadence: a
            # failure/topology context change invalidates cached
            # directives (refresh immediately rather than replay stale
            # ones), and a speculation overlay (``not exact``) makes
            # every cycle's view bespoke.
            if (
                stride <= 1
                or view.cycle % stride == s % stride
                or (pipe.directives is not None and pipe.context != context)
                or not exact
            ):
                due.append(s)
            else:
                replayed = True

        scheduled_blocks = 0
        num_commodities = 0
        objective = 0.0
        iterations = 0
        phases = 0
        warm_starts: List[str] = []
        schedule_runtime = 0.0
        routing_runtime = 0.0
        shard_walls: List[float] = []
        horizons: List[Optional[int]] = []
        state_bytes_max = 0
        candidate_bytes_max = 0
        payload_bytes_total = 0

        results: Optional[List[ShardResult]] = None
        if cfg.shard_mode == "process" and due and exact:
            results = self._process_decide(view, buckets, due)
        if results is None and due and exact and cfg.shard_local_state:
            # In-process partition-scoped mirrors (the default): each
            # shard decides against its own possession index, candidate
            # table, and cache, fed by watermark replay. Bit-identical
            # to the shared-store sub-views below.
            if self._shard_runner is None:
                self._shard_runner = LocalShardRunner(cfg, self._shard_of_id)
            results = self._shard_runner.decide(view, buckets, due)
        if results is None:
            # Shared-store sub-views: speculation overlays (whose store
            # shadows the real one — mirrors must not ingest phantom
            # copies) and shard_local_state=False.
            results = []
            for s in due:
                pipe = self._pipelines[s]
                cache = pipe.cache if exact else CycleCache()
                sub = view.with_jobs(buckets[s], cache=cache)
                started = _time.perf_counter()
                selections = pipe.scheduler.select(sub)
                dirs, diag = pipe.router.route(
                    sub, selections, batch=pipe.scheduler.last_batch
                )
                wall = _time.perf_counter() - started
                results.append(
                    ShardResult(
                        directives=dirs,
                        scheduled_blocks=len(selections),
                        num_commodities=diag.num_commodities,
                        objective=diag.objective,
                        schedule_runtime=pipe.scheduler.last_runtime,
                        routing_runtime=diag.runtime,
                        iterations=diag.iterations,
                        phases=diag.phases,
                        warm_start=diag.warm_start,
                        reuse_horizon=diag.reuse_horizon,
                        wall=wall,
                    )
                )

        for s, outcome in zip(due, results):
            pipe = self._pipelines[s]
            pipe.directives = outcome.directives
            pipe.context = context
            scheduled_blocks += outcome.scheduled_blocks
            num_commodities += outcome.num_commodities
            objective += outcome.objective
            iterations += outcome.iterations
            phases += outcome.phases
            if outcome.warm_start:
                warm_starts.append(outcome.warm_start)
            schedule_runtime += outcome.schedule_runtime
            routing_runtime += outcome.routing_runtime
            shard_walls.append(outcome.wall)
            horizons.append(outcome.reuse_horizon)
            state_bytes_max = max(state_bytes_max, outcome.state_bytes)
            candidate_bytes_max = max(
                candidate_bytes_max, outcome.candidate_bytes
            )
            payload_bytes_total += outcome.payload_bytes

        directives: List[TransferDirective] = []
        for pipe in self._pipelines:
            if pipe.directives:
                directives.extend(pipe.directives)

        reconcile_started = _time.perf_counter()
        directives, reconciled = self._reconcile_wan(view, directives)
        reconcile_runtime = _time.perf_counter() - reconcile_started

        # Replayed shards veto reuse (their cached output is not a pure
        # function of this cycle's view), as do the single-path vetoes.
        if replayed or fallback_directives or self._speculator is not None:
            reuse_horizon: Optional[int] = 0
        else:
            reuse_horizon = None
            for h in horizons:
                if h == 0:
                    reuse_horizon = 0
                    break
                if h is not None:
                    reuse_horizon = (
                        h if reuse_horizon is None else min(reuse_horizon, h)
                    )

        if not warm_starts:
            warm_start = ""
        elif all(w == warm_starts[0] for w in warm_starts):
            warm_start = warm_starts[0]
        else:
            warm_start = "mixed"

        self.decisions.append(
            ControlDecision(
                cycle=view.cycle,
                directives=directives,
                scheduled_blocks=scheduled_blocks,
                num_commodities=num_commodities,
                schedule_runtime=schedule_runtime,
                routing_runtime=routing_runtime,
                objective=objective,
                routing_iterations=iterations,
                routing_phases=phases,
                routing_warm_start=warm_start,
                reuse_horizon=reuse_horizon,
                shard_count=k,
                shard_wall_max=max(shard_walls, default=0.0),
                shard_wall_mean=(
                    sum(shard_walls) / len(shard_walls) if shard_walls else 0.0
                ),
                reconcile_runtime=reconcile_runtime,
                reconciled_directives=reconciled,
                shard_stride=stride,
                shard_state_bytes=state_bytes_max,
                shard_candidate_bytes=candidate_bytes_max,
                shard_payload_bytes=payload_bytes_total,
            )
        )
        if self._stride_auto and shard_walls:
            self._adapt_stride(max(shard_walls))
        self._previous_directives = directives
        return directives + fallback_directives

    def _adapt_stride(self, wall_max: float) -> None:
        """One step of the adaptive-stride control law (auto mode only).

        Updates the EWMA of the measured per-shard wall
        (``time_shard_max``), then projects the per-cycle controller
        wall at a candidate stride q as ``ceil(shards/q) × EWMA`` — the
        work of the shards due on one cycle. Starting from the
        maximally staggered cold-start stride (= shards), the stride
        narrows one step at a time only while the projection one step
        tighter stays under 70 % of ``shard_stride_target ×
        cycle_seconds`` — the hysteresis band that keeps a workload
        sitting at the boundary from oscillating — and widens (one step
        at a time, immediately) while the projection at the current
        stride exceeds the budget. The next :attr:`shard_signature`
        reflects the new stride, so the event engine never replays a
        decision across a stride change.
        """
        cfg = self.config
        k = cfg.shards
        ewma = self._shard_wall_ewma
        self._shard_wall_ewma = (
            wall_max
            if ewma <= 0.0
            else (1.0 - _STRIDE_EWMA_ALPHA) * ewma
            + _STRIDE_EWMA_ALPHA * wall_max
        )
        target = cfg.shard_stride_target * cfg.cycle_seconds

        def projected(q: int) -> float:
            return math.ceil(k / q) * self._shard_wall_ewma

        stride = self._stride
        if projected(stride) > target:
            while stride < k and projected(stride) > target:
                stride += 1
        else:
            while (
                stride > 1
                and projected(stride - 1) <= _STRIDE_NARROW_FRACTION * target
            ):
                stride -= 1
        self._stride = stride

    def _reconcile_wan(
        self,
        view: ClusterView,
        directives: List[TransferDirective],
    ) -> Tuple[List[TransferDirective], int]:
        """Outer shared-capacity reconciliation over all shards' directives.

        Each shard routed against the *full* link budgets, so the
        combined rate caps can oversubscribe shared resources. One
        max-min waterfill (:func:`repro.net.flow.max_min_fair_rates` —
        the data plane's own allocator) over the combined directives,
        with each directive's requested cap as its flow cap and the
        budget-adjusted capacities (``view.bulk_capacities``) as the
        resource limits, rewrites every cap to at most the directive's
        global fair share. Max-min (rather than a proportional clip)
        matters for quality: a flow that requested no more than its fair
        share keeps its full request, and the freed headroom goes to the
        flows that can use it — a proportional clip starves exactly the
        flows the single controller would have left alone, which showed
        up as a multi-percent completion-time regression. Directives are
        kept in shard-major order and the kernel is deterministic, so
        the pass is too; path lookups go through ``view.flow_resources``,
        sharing the simulator's warm path memos.
        """
        from repro.net.flow import Flow, max_min_fair_rates

        capped: List[int] = []
        flows: List[Flow] = []
        requested: List[float] = []
        for i, d in enumerate(directives):
            if d.rate_cap is None:
                continue
            res = view.flow_resources(d.src_server, d.dst_server)
            if res is None:
                continue  # partitioned off; the simulator drops it too
            flows.append(
                Flow(flow_id=len(capped), resources=res, rate_cap=d.rate_cap)
            )
            capped.append(i)
            requested.append(d.rate_cap)
        if len(capped) <= 1:
            return directives, 0
        rates = max_min_fair_rates(flows, view.bulk_capacities)
        reconciled = 0
        out = list(directives)
        for j, i in enumerate(capped):
            new_cap = float(rates[j])
            if new_cap < requested[j]:
                out[i] = replace(out[i], rate_cap=new_cap)
                reconciled += 1
        return out, reconciled

    def _process_decide(
        self,
        view: ClusterView,
        buckets: List[List[MulticastJob]],
        due: List[int],
    ) -> Optional[List[ShardResult]]:
        """Fan the due shards' decides over persistent worker processes.

        Returns the per-shard outcomes in ``due`` order, or ``None`` to
        fall back to the in-process paths (worker pool unavailable or
        broken — the in-process mirrors and the shared-store loop are
        always correct; a fresh in-process feed re-snapshots each job's
        holders from the live store, so mid-run takeover loses nothing).
        """
        if self._shard_executor is None:
            self._shard_executor = ShardExecutor(self.config, self._shard_of_id)
        try:
            return self._shard_executor.decide(view, buckets, due)
        except Exception:
            # A broken pool must never take the control plane down:
            # abandon process mode for the rest of the run.
            self._shard_executor.shutdown()
            self._shard_executor = None
            self.config.shard_mode = "inprocess"
            return None

    def shutdown(self) -> None:
        """Release the process fan-out workers (no-op otherwise)."""
        if self._shard_executor is not None:
            self._shard_executor.shutdown()
            self._shard_executor = None

    def last_decision(self) -> Optional[ControlDecision]:
        return self.decisions[-1] if self.decisions else None

    def mean_runtime(self) -> float:
        """Mean controller running time across cycles (Fig. 11a metric)."""
        if not self.decisions:
            return 0.0
        return sum(d.total_runtime for d in self.decisions) / len(self.decisions)

"""Analytic lower bounds on multicast completion time.

The "ideal solution" curve of Fig. 5 and the optimality yardstick of §6.
Completion time cannot beat any of these bounds:

* **Source egress**: the source DC must push at least one full copy of the
  data out, limited by its aggregate WAN egress and its servers' uplinks.
* **Destination ingress**: every destination DC must absorb a full copy,
  limited by its WAN ingress and its servers' downlinks.
* **Per-server shard time**: each destination server must receive its own
  shard through its downlink.

The appendix formula ``t = V / min(c(l), kR/(m-k))`` for balanced replica
distributions is implemented in :mod:`repro.analysis.appendix`.
"""

from __future__ import annotations

from typing import Dict

from repro.net.topology import Topology
from repro.overlay.job import MulticastJob


def _dc_wan_egress(topology: Topology, dc: str) -> float:
    return sum(lnk.capacity for lnk in topology.links.values() if lnk.src_dc == dc)


def _dc_wan_ingress(topology: Topology, dc: str) -> float:
    return sum(lnk.capacity for lnk in topology.links.values() if lnk.dst_dc == dc)


def ideal_completion_time(topology: Topology, job: MulticastJob) -> float:
    """Lower bound on the job's completion time in seconds.

    With overlay store-and-forward, the source only needs to emit one copy
    (destinations re-share among themselves), so the bound is the maximum of
    the source-egress time for one copy and each destination's ingress time
    for one copy.
    """
    volume = job.total_bytes
    src_servers = topology.servers_in(job.src_dc)
    src_uplink_total = sum(s.uplink for s in src_servers)
    src_rate = min(_dc_wan_egress(topology, job.src_dc), src_uplink_total)
    bound = volume / src_rate if src_rate > 0 else float("inf")
    for dc in job.dst_dcs:
        dst_servers = topology.servers_in(dc)
        down_total = sum(s.downlink for s in dst_servers)
        ingress = min(_dc_wan_ingress(topology, dc), down_total)
        if ingress <= 0:
            return float("inf")
        bound = max(bound, volume / ingress)
    return bound


def ideal_server_time(topology: Topology, job: MulticastJob, server_id: str) -> float:
    """Lower bound for one destination server: its shard over its downlink."""
    server = topology.servers[server_id]
    dc = server.dc
    if dc not in job.dst_dcs:
        raise ValueError(f"server {server_id!r} is not in a destination DC")
    shard_bytes = sum(
        block.size
        for block in job.blocks
        if job.assigned_server(dc, block.block_id) == server_id
    )
    return shard_bytes / server.downlink


def ideal_server_times(topology: Topology, job: MulticastJob) -> Dict[str, float]:
    """Lower-bound completion time for every destination server.

    Every server is bounded below by both its own shard transfer and the
    DC-level ingress bound (a DC cannot finish before a full copy arrived).
    """
    times: Dict[str, float] = {}
    for dc in job.dst_dcs:
        volume = job.total_bytes
        dst_servers = topology.servers_in(dc)
        down_total = sum(s.downlink for s in dst_servers)
        ingress = min(_dc_wan_ingress(topology, dc), down_total)
        dc_bound = volume / ingress if ingress > 0 else float("inf")
        for server in dst_servers:
            shard = ideal_server_time(topology, job, server.server_id)
            times[server.server_id] = max(shard, 0.0)
        # The slowest server in the DC cannot beat the DC ingress bound.
        slowest = max(dst_servers, key=lambda s: times[s.server_id])
        times[slowest.server_id] = max(times[slowest.server_id], dc_bound)
    return times

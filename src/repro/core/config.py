"""Configuration for the BDS controller.

Defaults follow §5.4: 2 MB blocks, 3-second update cycles, 80 % safety
threshold (20 % of every link reserved for latency-sensitive traffic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.overlay.blocks import DEFAULT_BLOCK_SIZE
from repro.utils.validation import check_fraction, check_positive

ROUTING_BACKENDS = ("fptas", "lp", "greedy")


@dataclass
class BDSConfig:
    """Tunable parameters of the centralized control loop.

    ``cycle_seconds`` is the §5.2 ΔT the whole decide→deliver loop must
    fit inside for centralized control to be feasible; the data-plane
    benchmarks (``benchmarks/bench_flow_kernel.py``) measure full cycles
    against exactly this budget. The per-directive rates the controller
    assigns are enforced downstream by the shared rate kernel
    (:func:`repro.net.flow.clip_rates_to_capacity`), which proportionally
    scales any resource the (possibly stale, §5.1) allocation
    oversubscribed — the controller itself never needs to re-check
    physics.

    Under the event-driven simulator core (``SimConfig.event_engine``,
    see :mod:`repro.net.simulator`) the loop is not re-run every ΔT:
    §5.2's observation that decisions stay valid until state changes is
    made operational through a validity key plus the router's
    :attr:`~repro.core.routing.RoutingDiagnostics.reuse_horizon`
    certificate, and jobs may request a coarser per-job cadence via
    :attr:`repro.overlay.job.MulticastJob.cycle_seconds` (a multiple of
    this ΔT).
    """

    block_size: float = DEFAULT_BLOCK_SIZE
    cycle_seconds: float = 3.0
    safety_threshold: float = 0.8
    routing_backend: str = "greedy"
    epsilon: float = 0.1
    max_blocks_per_cycle: int = 0  # 0 = unlimited
    max_sources_per_group: int = 3
    merge_blocks: bool = True
    # §5.1 non-blocking update: feed the algorithm a delivery state that
    # speculates the completion of in-flight transfers over this horizon
    # (seconds). 0 disables speculation.
    speculation_horizon: float = 0.0
    # Schedule placements onto jobs' relay DCs (Type I path diversity
    # through non-destination DCs).
    use_relays: bool = True

    def __post_init__(self) -> None:
        if self.speculation_horizon < 0:
            raise ValueError("speculation_horizon must be >= 0")
        check_positive("block_size", self.block_size)
        check_positive("cycle_seconds", self.cycle_seconds)
        check_fraction("safety_threshold", self.safety_threshold)
        check_positive("epsilon", self.epsilon)
        check_positive("max_sources_per_group", self.max_sources_per_group)
        if self.max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0 (0 = unlimited)")
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ValueError(
                f"routing_backend must be one of {ROUTING_BACKENDS}, "
                f"got {self.routing_backend!r}"
            )

"""Strategy factory and simulation runner shared by experiments and benches."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines import (
    AkamaiStrategy,
    BulletStrategy,
    ChainStrategy,
    DirectStrategy,
    GingkoStrategy,
    OverlayStrategy,
)
from repro.core import BDSConfig, BDSController
from repro.core.formulation import StandardLPRouter
from repro.net.background import BackgroundTraffic
from repro.net.failures import FailureSchedule
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike

STRATEGY_NAMES = (
    "bds",
    "bds-fptas",
    "bds-lp",
    "bds-standard-lp",
    "gingko",
    "bullet",
    "akamai",
    "chain",
    "direct",
)


def make_strategy(
    name: str, seed: SeedLike = None, config: Optional[BDSConfig] = None
) -> OverlayStrategy:
    """Build a fresh strategy by name.

    ``bds`` uses the fast greedy routing backend; ``bds-fptas`` / ``bds-lp``
    select the Garg–Könemann and exact-LP backends; ``bds-standard-lp``
    swaps in the non-decoupled joint LP router (the Fig. 13 baseline).
    """
    if name == "bds":
        return BDSController(config=config or BDSConfig(), seed=seed)
    if name == "bds-fptas":
        cfg = config or BDSConfig(routing_backend="fptas")
        return BDSController(config=cfg, seed=seed)
    if name == "bds-lp":
        cfg = config or BDSConfig(routing_backend="lp")
        return BDSController(config=cfg, seed=seed)
    if name == "bds-standard-lp":
        controller = BDSController(config=config or BDSConfig(), seed=seed)
        controller.router = StandardLPRouter()
        return controller
    if name == "gingko":
        return GingkoStrategy(seed=seed)
    if name == "bullet":
        return BulletStrategy(seed=seed)
    if name == "akamai":
        return AkamaiStrategy()
    if name == "chain":
        return ChainStrategy()
    if name == "direct":
        return DirectStrategy()
    raise ValueError(f"unknown strategy {name!r}; choose from {STRATEGY_NAMES}")


def run_simulation(
    topology: Topology,
    jobs: Sequence[MulticastJob],
    strategy_name: str,
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = None,
    background: Optional[BackgroundTraffic] = None,
    failures: Optional[FailureSchedule] = None,
    record_link_stats: bool = False,
    config: Optional[BDSConfig] = None,
    safety_threshold: float = 0.8,
) -> SimResult:
    """Run one strategy over the given jobs and return the result."""
    strategy = make_strategy(strategy_name, seed=seed, config=config)
    sim = Simulation(
        topology=topology,
        jobs=list(jobs),
        strategy=strategy,
        config=SimConfig(
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
            record_link_stats=record_link_stats,
            safety_threshold=safety_threshold,
        ),
        background=background,
        failures=failures,
        seed=seed,
    )
    return sim.run()


def compare_strategies(
    topology_factory: Callable[[], Topology],
    jobs_factory: Callable[[Topology], List[MulticastJob]],
    strategy_names: Sequence[str],
    cycle_seconds: float = 3.0,
    max_cycles: int = 100_000,
    seed: SeedLike = 7,
) -> Dict[str, SimResult]:
    """Run several strategies over *fresh* identical topologies and jobs.

    Factories are invoked per strategy so that no simulation state (job
    binding, strategy caches) leaks between runs.
    """
    results: Dict[str, SimResult] = {}
    for name in strategy_names:
        topology = topology_factory()
        jobs = jobs_factory(topology)
        results[name] = run_simulation(
            topology,
            jobs,
            name,
            cycle_seconds=cycle_seconds,
            max_cycles=max_cycles,
            seed=seed,
        )
    return results

"""The cycle-driven simulator: directives, progress, completion, failures."""

import pytest

from repro.baselines.base import OverlayStrategy
from repro.net.background import BackgroundTraffic
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, Simulation, TransferDirective
from repro.net.topology import Topology, wan_key
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


class ScriptedStrategy(OverlayStrategy):
    """Emits a fixed decision function; used to isolate simulator behavior."""

    def __init__(self, decide_fn, uses_rates=False):
        self._fn = decide_fn
        self.uses_controller_rates = uses_rates

    def decide(self, view):
        return self._fn(view)


def two_dc_topology(uplink=10 * MBps, wan=1 * GB) -> Topology:
    return Topology.full_mesh(
        num_dcs=2, servers_per_dc=2, wan_capacity=wan, uplink=uplink
    )


def one_block_job(topo, size=30 * MB) -> MulticastJob:
    job = MulticastJob(
        job_id="j", src_dc="dc0", dst_dcs=("dc1",), total_bytes=size,
        block_size=size,
    )
    job.bind(topo)
    return job


class TestDirectiveValidation:
    def test_needs_blocks(self):
        with pytest.raises(ValueError):
            TransferDirective(job_id="j", block_ids=(), src_server="a", dst_server="b")

    def test_endpoints_differ(self):
        with pytest.raises(ValueError):
            TransferDirective(
                job_id="j", block_ids=(("j", 0),), src_server="a", dst_server="a"
            )

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TransferDirective(
                job_id="j",
                block_ids=(("j", 0),),
                src_server="a",
                dst_server="b",
                rate_cap=-1,
            )


class TestProgress:
    def test_single_block_transfer_time(self):
        """30 MB over a 10 MB/s uplink should take 3 seconds (one cycle)."""
        topo = two_dc_topology()
        job = one_block_job(topo)

        def decide(view):
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="dc0-s0",
                    dst_server="dc1-s0",
                )
            ]

        sim = Simulation(topo, [job], ScriptedStrategy(decide), SimConfig())
        result = sim.run()
        assert result.all_complete
        assert result.completion_time("j") == pytest.approx(3.0)

    def test_partial_progress_persists_across_cycles(self):
        """60 MB at 10 MB/s = 6 s = two 3-second cycles."""
        topo = two_dc_topology()
        job = one_block_job(topo, size=60 * MB)

        def decide(view):
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="dc0-s0",
                    dst_server="dc1-s0",
                )
            ]

        result = Simulation(topo, [job], ScriptedStrategy(decide), SimConfig()).run()
        assert result.completion_time("j") == pytest.approx(6.0)

    def test_rate_caps_honoured(self):
        """A 5 MB/s cap on a 10 MB/s NIC doubles the transfer time."""
        topo = two_dc_topology()
        job = one_block_job(topo, size=30 * MB)

        def decide(view):
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="dc0-s0",
                    dst_server="dc1-s0",
                    rate_cap=5 * MBps,
                )
            ]

        result = Simulation(
            topo, [job], ScriptedStrategy(decide, uses_rates=True), SimConfig()
        ).run()
        assert result.completion_time("j") == pytest.approx(6.0)

    def test_oversubscribed_rates_are_clipped(self):
        """Two 10 MB/s requests through one 10 MB/s uplink are halved."""
        topo = two_dc_topology()
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=30 * MB, block_size=15 * MB,
        )
        job.bind(topo)

        def decide(view):
            out = []
            for i, dst in enumerate(("dc1-s0", "dc1-s1")):
                bid = ("j", i)
                if not view.store.has(dst, bid):
                    out.append(
                        TransferDirective(
                            job_id="j",
                            block_ids=(bid,),
                            src_server="dc0-s0",
                            dst_server=dst,
                            rate_cap=10 * MBps,
                        )
                    )
            return out

        # Striping starts block 1 on dc0-s1; seed a copy on dc0-s0 so both
        # flows contend for the same 10 MB/s uplink.
        result = Simulation(
            topo,
            [job],
            ScriptedStrategy(decide, uses_rates=True),
            SimConfig(),
            pre_seeded={"dc0-s0": [job.blocks[1]]},
        ).run()
        # Both pull 15 MB from dc0-s0's 10 MB/s uplink at 5 MB/s each -> 3 s.
        assert result.completion_time("j") == pytest.approx(3.0)

    def test_useless_directives_filtered(self):
        """Directives for blocks the source lacks are dropped, not fatal."""
        topo = two_dc_topology()
        job = one_block_job(topo)

        def decide(view):
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="dc1-s1",  # holds nothing
                    dst_server="dc1-s0",
                )
            ]

        result = Simulation(
            topo, [job], ScriptedStrategy(decide), SimConfig(max_cycles=3)
        ).run()
        assert not result.all_complete
        assert all(s.active_flows == 0 for s in result.cycle_stats)

    def test_unknown_server_raises(self):
        topo = two_dc_topology()
        job = one_block_job(topo)

        def decide(view):
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="ghost",
                    dst_server="dc1-s0",
                )
            ]

        sim = Simulation(topo, [job], ScriptedStrategy(decide), SimConfig())
        with pytest.raises(KeyError):
            sim.run()


class TestCompletionTracking:
    def test_server_and_dc_completion(self):
        topo = two_dc_topology()
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=20 * MB, block_size=10 * MB,
        )
        job.bind(topo)

        def decide(view):
            out = []
            for block, _dc, server in view.pending_deliveries(job):
                src = next(iter(view.eligible_sources(block.block_id)))
                out.append(
                    TransferDirective(
                        job_id="j",
                        block_ids=(block.block_id,),
                        src_server=src,
                        dst_server=server,
                    )
                )
            return out

        result = Simulation(topo, [job], ScriptedStrategy(decide), SimConfig()).run()
        assert ("j", "dc1-s0") in result.server_completion
        assert ("j", "dc1-s1") in result.server_completion
        assert ("j", "dc1") in result.dc_completion
        assert result.job_completion["j"] == result.dc_completion[("j", "dc1")]

    def test_job_arrival_delays_start(self):
        topo = two_dc_topology()
        job = one_block_job(topo)
        job.arrival_time = 9.0  # cycle 3

        def decide(view):
            assert all(j.arrival_time <= view.time for j in view.jobs)
            out = []
            for j in view.jobs:
                for block, _dc, server in view.pending_deliveries(j):
                    src = next(iter(view.eligible_sources(block.block_id)))
                    out.append(
                        TransferDirective(
                            job_id=j.job_id,
                            block_ids=(block.block_id,),
                            src_server=src,
                            dst_server=server,
                        )
                    )
            return out

        result = Simulation(topo, [job], ScriptedStrategy(decide), SimConfig()).run()
        assert result.completion_time("j") >= 9.0

    def test_max_cycles_stops_incomplete_run(self):
        topo = two_dc_topology()
        job = one_block_job(topo, size=1 * GB)

        def decide(view):
            return []

        result = Simulation(
            topo, [job], ScriptedStrategy(decide), SimConfig(max_cycles=5)
        ).run()
        assert not result.all_complete
        assert len(result.cycle_stats) == 5
        with pytest.raises(KeyError):
            result.completion_time("j")


class TestFailuresAndBackground:
    def test_failed_agents_excluded(self):
        topo = two_dc_topology()
        job = one_block_job(topo)
        failures = FailureSchedule(
            [FailureEvent(cycle=0, kind="agent_fail", target="dc0-s0")]
        )

        def decide(view):
            assert "dc0-s0" in view.failed_agents
            return [
                TransferDirective(
                    job_id="j",
                    block_ids=(("j", 0),),
                    src_server="dc0-s0",
                    dst_server="dc1-s0",
                )
            ]

        result = Simulation(
            topo,
            [job],
            ScriptedStrategy(decide),
            SimConfig(max_cycles=2),
            failures=failures,
        ).run()
        assert not result.all_complete  # only source failed; no transfer ran

    def test_failed_link_zeroes_bulk_capacity(self):
        topo = two_dc_topology()
        job = one_block_job(topo)
        failures = FailureSchedule(
            [FailureEvent(cycle=0, kind="link_fail", target=("dc0", "dc1"))]
        )

        def decide(view):
            assert view.bulk_capacities[wan_key("dc0", "dc1")] == 0.0
            return []

        Simulation(
            topo,
            [job],
            ScriptedStrategy(decide),
            SimConfig(max_cycles=1),
            failures=failures,
        ).run()

    def test_background_reduces_bulk_budget(self):
        topo = two_dc_topology(wan=100 * MBps)
        job = one_block_job(topo)
        bg = BackgroundTraffic(
            base_fraction=0.5, diurnal_fraction=0.0, noise_fraction=0.0, seed=0
        )

        class ThresholdStrategy(ScriptedStrategy):
            respects_safety_threshold = True

        def decide(view):
            budget = view.bulk_capacities[wan_key("dc0", "dc1")]
            # 0.8 * 100 - 50 = 30 MB/s.
            assert budget == pytest.approx(30 * MBps)
            return []

        Simulation(
            topo,
            [job],
            ThresholdStrategy(decide),
            SimConfig(max_cycles=1),
            background=bg,
        ).run()

    def test_controller_unavailable_flag_propagates(self):
        topo = two_dc_topology()
        job = one_block_job(topo)
        failures = FailureSchedule(
            [FailureEvent(cycle=1, kind="controller_fail")]
        )
        seen = []

        def decide(view):
            seen.append(view.controller_available)
            return []

        Simulation(
            topo,
            [job],
            ScriptedStrategy(decide),
            SimConfig(max_cycles=3),
            failures=failures,
        ).run()
        assert seen == [True, False, False]


class TestPreSeeding:
    def test_pre_seeded_assigned_blocks_count_delivered(self):
        topo = two_dc_topology()
        job = MulticastJob(
            job_id="j", src_dc="dc0", dst_dcs=("dc1",),
            total_bytes=20 * MB, block_size=10 * MB,
        )
        job.bind(topo)
        # Seed both shard blocks directly onto their assigned servers.
        seeded = {
            "dc1-s0": [job.blocks[0]],
            "dc1-s1": [job.blocks[1]],
        }
        result = Simulation(
            topo,
            [job],
            ScriptedStrategy(lambda v: []),
            SimConfig(max_cycles=2),
            pre_seeded=seeded,
        ).run()
        assert result.all_complete
        assert result.completion_time("j") == 0.0

    def test_snapshot_view_reflects_state(self):
        topo = two_dc_topology()
        job = one_block_job(topo)
        sim = Simulation(topo, [job], ScriptedStrategy(lambda v: []), SimConfig())
        view = sim.snapshot_view()
        assert view.cycle == 0
        assert view.store.has("dc0-s0", ("j", 0))
        pending = view.pending_deliveries(job)
        assert len(pending) == 1

"""Dynamic bandwidth separation (§5.2, Figs. 6 & 10).

The Network Monitor measures the aggregated bandwidth of latency-sensitive
flows on every link; the controller then hands bulk transfers only the
*residual* below the safety threshold (80 % of link capacity by default)
and splits that budget across transfers. Compared to static priorities,
this adapts to online-traffic dynamics without wasting bandwidth.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Tuple

import numpy as np

from repro.net.background import BackgroundTraffic
from repro.net.topology import ResourceKey, Topology
from repro.utils.validation import check_fraction, check_non_negative, check_positive


def residual_budget(
    capacity: float, online_usage: float, threshold: float = 0.8
) -> float:
    """Bandwidth available to bulk traffic on one link.

    ``max(0, threshold × capacity − online)``: bulk may use what remains
    under the safety threshold after latency-sensitive traffic is served.
    """
    check_positive("capacity", capacity)
    check_non_negative("online_usage", online_usage)
    check_fraction("threshold", threshold)
    return max(0.0, threshold * capacity - online_usage)


def residual_budgets(
    capacities: np.ndarray, online_usage: np.ndarray, threshold: float = 0.8
) -> np.ndarray:
    """Vectorized :func:`residual_budget` over parallel link arrays.

    One validation pass up front, then a single elementwise
    ``max(0, threshold × capacity − online)`` — the same two-operand IEEE
    operations per link as the scalar helper, so the values are
    bit-identical to calling it in a loop.
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    online_usage = np.asarray(online_usage, dtype=np.float64)
    check_fraction("threshold", threshold)
    if capacities.size and float(capacities.min()) <= 0:
        check_positive("capacity", float(capacities.min()))
    if online_usage.size and float(online_usage.min()) < 0:
        check_non_negative("online_usage", float(online_usage.min()))
    return np.maximum(0.0, threshold * capacities - online_usage)


class LinkBudgets(Mapping):
    """Array-backed per-link budget mapping.

    A read-only ``Mapping[ResourceKey, float]`` whose values live in one
    ``float64`` array aligned with an interned key list — so the flow
    kernels (:class:`repro.lp.incidence.FlowIncidence` consumes any
    Mapping) and the sharded controller's reconciliation pass share one
    representation, and consumers needing the raw array
    (``.array`` / ``.keys_list``) skip the per-key dict hops entirely.
    ``__getitem__`` hands back Python floats, matching the values the
    old dict carried bit-for-bit.
    """

    __slots__ = ("keys_list", "index", "array")

    def __init__(
        self,
        keys_list: List[ResourceKey],
        index: Dict[ResourceKey, int],
        array: np.ndarray,
    ) -> None:
        self.keys_list = keys_list
        self.index = index
        self.array = array

    def __getitem__(self, key: ResourceKey) -> float:
        return float(self.array[self.index[key]])

    def __iter__(self):
        return iter(self.keys_list)

    def __len__(self) -> int:
        return len(self.keys_list)

    def __contains__(self, key) -> bool:
        return key in self.index


class NetworkMonitor:
    """Per-link view of online traffic and bulk budgets (Fig. 8, step 3).

    The link-key list, the interned key→row index, and the capacity
    array are cached per :attr:`Topology.epoch` — they only change when
    the topology itself does — so the per-cycle cost of
    :meth:`bulk_budgets` is two array fills and one elementwise pass,
    not a dict rebuild.
    """

    def __init__(
        self,
        topology: Topology,
        background: Optional[BackgroundTraffic] = None,
        threshold: float = 0.8,
    ) -> None:
        check_fraction("threshold", threshold)
        self.topology = topology
        self.background = background
        self.threshold = threshold
        self._keys_epoch = -1
        self._keys: List[ResourceKey] = []
        self._index: Dict[ResourceKey, int] = {}
        self._caps = np.empty(0, dtype=np.float64)

    def _interned_links(
        self,
    ) -> Tuple[List[ResourceKey], Dict[ResourceKey, int], np.ndarray]:
        """(keys, key→row index, capacity array), rebuilt per topology epoch."""
        epoch = getattr(self.topology, "epoch", None)
        if epoch is None or epoch != self._keys_epoch:
            keys = list(self.topology.links)
            self._keys = keys
            self._index = {k: i for i, k in enumerate(keys)}
            self._caps = np.fromiter(
                (self.topology.links[k].capacity for k in keys),
                dtype=np.float64,
                count=len(keys),
            )
            self._keys_epoch = -1 if epoch is None else epoch
        return self._keys, self._index, self._caps

    def online_usage(self, time_s: float) -> Dict[ResourceKey, float]:
        """Latency-sensitive bytes/second on every WAN link at ``time_s``."""
        keys, _index, caps = self._interned_links()
        if not self.background:
            return dict.fromkeys(keys, 0.0)
        bg = self.background
        return {
            key: bg.usage(key, time_s, float(caps[i]))
            for i, key in enumerate(keys)
        }

    def online_usage_array(self, time_s: float) -> np.ndarray:
        """:meth:`online_usage` as a float64 array over the interned keys."""
        keys, _index, caps = self._interned_links()
        if not self.background:
            return np.zeros(len(keys), dtype=np.float64)
        bg = self.background
        return np.fromiter(
            (
                bg.usage(key, time_s, float(caps[i]))
                for i, key in enumerate(keys)
            ),
            dtype=np.float64,
            count=len(keys),
        )

    def bulk_budgets(self, time_s: float) -> LinkBudgets:
        """Residual bulk budget for every WAN link at ``time_s``.

        Computed through the array form (:func:`residual_budgets`) over
        the epoch-cached capacity array, returned as an array-backed
        :class:`LinkBudgets` (a read-only Mapping: values bit-identical
        to the dict this method used to build).
        """
        keys, index, caps = self._interned_links()
        used = self.online_usage_array(time_s)
        vals = residual_budgets(caps, used, self.threshold)
        return LinkBudgets(keys, index, vals)


class BandwidthEnforcer:
    """Splits a link's bulk budget across transfers (the Fig. 10 mechanism).

    Each transfer declares a demand; the enforcer allocates max-min fair
    shares of the budget, so the *sum* of assigned sending rates never
    exceeds the budget — which is why BDS's measured usage stays under the
    cap in Fig. 10 while uncoordinated senders overshoot.
    """

    def __init__(self, budget: float) -> None:
        check_non_negative("budget", budget)
        self.budget = budget

    def allocate(self, demands: Mapping[Hashable, float]) -> Dict[Hashable, float]:
        """Max-min fair split of the budget across ``demands``."""
        remaining = self.budget
        pending: List[Tuple[Hashable, float]] = sorted(
            ((k, max(0.0, d)) for k, d in demands.items()), key=lambda kv: kv[1]
        )
        allocation: Dict[Hashable, float] = {}
        count = len(pending)
        for i, (key, demand) in enumerate(pending):
            fair = remaining / (count - i) if count > i else 0.0
            grant = min(demand, fair)
            allocation[key] = grant
            remaining -= grant
        return allocation

"""The vectorized Fleischer FPTAS: incidence compilation, the (1−ε)³
guarantee on randomized instances, parity with the legacy scalar solver,
cross-cycle warm starts, and the greedy backend's incidence rewrite."""

import random

import numpy as np
import pytest

from repro.core.routing import BDSRouter
from repro.lp.fptas import max_multicommodity_flow
from repro.lp.fptas_legacy import legacy_max_multicommodity_flow
from repro.lp.incidence import PathIncidence, build_incidence
from repro.lp.mcf import Commodity, PathMCF
from repro.net.cycle_cache import RoutingWarmStore


def commodity(name, *paths, demand=None):
    return Commodity(name=name, paths=tuple(tuple(p) for p in paths), demand=demand)


def random_instance(seed, n_commodities=None, allow_zero_caps=True):
    """A random explicit-path MCF instance, deterministic per seed."""
    rng = random.Random(seed)
    n_res = rng.randint(4, 30)
    caps = {}
    for i in range(n_res):
        if allow_zero_caps and rng.random() < 0.15:
            caps[f"r{i}"] = 0.0
        else:
            caps[f"r{i}"] = rng.uniform(0.5, 100.0)
    names = sorted(caps)
    commodities = []
    for ci in range(n_commodities or rng.randint(1, 15)):
        paths = [
            tuple(rng.sample(names, rng.randint(1, 4)))
            for _ in range(rng.randint(1, 4))
        ]
        if rng.random() < 0.25:
            paths.append(paths[0])  # duplicate candidate path
        demand = rng.choice([None, rng.uniform(0.1, 60.0)])
        commodities.append(
            Commodity(name=f"c{ci}", paths=tuple(paths), demand=demand)
        )
    return commodities, caps


def usage_of(commodities, path_flows):
    by_name = {c.name: c for c in commodities}
    usage = {}
    for (name, pi), rate in path_flows.items():
        for res in by_name[name].paths[pi]:
            usage[res] = usage.get(res, 0.0) + rate
    return usage


class TestPathIncidence:
    def test_basic_layout(self):
        inc = PathIncidence.build(
            [commodity("a", ["x", "y"], ["z"]), commodity("b", ["y"], demand=2)],
            {"x": 1.0, "y": 2.0, "z": 3.0},
        )
        assert inc.num_paths == 3
        assert inc.num_commodities == 2
        assert inc.res_keys == ["x", "y", "z"]
        assert list(inc.path_commodity) == [0, 0, 1]
        assert list(inc.path_orig_index) == [0, 1, 0]
        assert inc.commodity_path_range == [(0, 2), (2, 3)]
        assert list(inc.path_min_cap) == [1.0, 3.0, 2.0]
        assert np.isinf(inc.demands[0]) and inc.demands[1] == 2.0

    def test_duplicate_paths_keep_distinct_indices(self):
        # Regression for the list.index aliasing bug: duplicates must not
        # collapse onto the first occurrence's index.
        inc = PathIncidence.build(
            [commodity("c", ["l"], ["l"], ["l"])], {"l": 5.0}
        )
        assert list(inc.path_orig_index) == [0, 1, 2]

    def test_zero_capacity_drops_path(self):
        inc = PathIncidence.build(
            [commodity("c", ["dead"], ["live"])], {"dead": 0.0, "live": 4.0}
        )
        assert inc.num_paths == 1
        assert list(inc.path_orig_index) == [1]

    def test_zero_demand_drops_commodity_paths(self):
        inc = PathIncidence.build(
            [commodity("c", ["l"], demand=0.0)], {"l": 5.0}
        )
        assert inc.num_paths == 0
        assert inc.commodity_path_range == [(0, 0)]

    def test_strict_rejects_unknown_resource(self):
        with pytest.raises(KeyError):
            PathIncidence.build([commodity("c", ["ghost"])], {"l": 1.0})

    def test_lenient_treats_unknown_as_zero_capacity(self):
        inc = PathIncidence.build(
            [commodity("c", ["ghost"], ["l"])], {"l": 1.0}, strict=False
        )
        assert inc.num_paths == 1
        assert inc.caps[inc.res_index["ghost"]] == 0.0

    def test_vectorized_reductions_match_python(self):
        commodities, caps = random_instance(7, allow_zero_caps=False)
        inc = PathIncidence.build(commodities, caps)
        per_res = np.arange(1.0, inc.num_resources + 1)
        sums = inc.path_sums(per_res)
        mins = inc.path_mins(per_res)
        for pid in range(inc.num_paths):
            idxs = inc.path_resources(pid)
            assert sums[pid] == pytest.approx(sum(per_res[i] for i in idxs))
            assert mins[pid] == min(per_res[i] for i in idxs)

    def test_flows_to_path_map_accumulates_and_scales(self):
        inc = PathIncidence.build([commodity("c", ["l"], ["l"])], {"l": 5.0})
        flows = np.array([1.0, 2.0])
        out = inc.flows_to_path_map(flows, scale=2.0)
        assert out == {("c", 0): 2.0, ("c", 1): 4.0}

    def test_build_incidence_empty(self):
        assert build_incidence([], {}) is None


class TestFPTASGuarantee:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("epsilon", [0.05, 0.1, 0.3])
    def test_objective_within_guarantee_and_feasible(self, seed, epsilon):
        commodities, caps = random_instance(seed)
        result = max_multicommodity_flow(commodities, caps, epsilon=epsilon)
        # Feasibility is exact (post re-clip).
        for res, used in usage_of(commodities, result.path_flows).items():
            assert used <= caps[res] * (1 + 1e-9) + 1e-9
        # (1−ε)³-optimality against the exact LP.
        lp = PathMCF(commodities, caps).solve_lp()
        assert result.objective >= (1 - epsilon) ** 3 * lp.objective - 1e-9
        assert result.objective <= lp.objective * (1 + 1e-6) + 1e-6
        # The self-reported dual certificate brackets the optimum too.
        assert result.dual_bound >= lp.objective * (1 - 1e-6) - 1e-9

    def test_duplicate_paths_route_independently(self):
        # Both duplicates may carry flow; together they fill the link.
        result = max_multicommodity_flow(
            [commodity("c", ["l"], ["l"])], {"l": 10.0}, epsilon=0.05
        )
        assert result.objective == pytest.approx(10.0, rel=0.2)
        assert all(name == "c" for (name, _pi) in result.path_flows)

    def test_telemetry_populated(self):
        commodities, caps = random_instance(3)
        result = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        if result.objective > 0:
            assert result.iterations > 0
            assert result.phases > 0
        assert result.warm_start == "cold"


class TestLegacyParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_legacy_within_tolerance(self, seed):
        commodities, caps = random_instance(seed, n_commodities=6)
        new = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        old = legacy_max_multicommodity_flow(commodities, caps, epsilon=0.1)
        # Both carry the same (1−ε)³ guarantee; they can differ only
        # within the approximation slack around the optimum.
        lp = PathMCF(commodities, caps).solve_lp()
        floor = (1 - 0.1) ** 3 * lp.objective - 1e-9
        assert new.objective >= floor
        assert old.objective >= floor
        assert new.objective <= lp.objective * (1 + 1e-6) + 1e-6
        assert old.objective <= lp.objective * (1 + 1e-6) + 1e-6

    def test_golden_instance_exact_paths(self):
        # A fixed instance where both solvers must saturate the bottleneck.
        caps = {"shared": 6.0, "pa": 10.0, "pb": 10.0}
        commodities = [
            commodity("a", ["shared", "pa"]),
            commodity("b", ["shared", "pb"]),
        ]
        new = max_multicommodity_flow(commodities, caps, epsilon=0.05)
        old = legacy_max_multicommodity_flow(commodities, caps, epsilon=0.05)
        assert new.objective == pytest.approx(6.0, rel=0.05)
        assert old.objective == pytest.approx(6.0, rel=0.05)


class TestWarmStart:
    def test_identical_input_reuses_bit_identically(self):
        commodities, caps = random_instance(11)
        cold = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        again = max_multicommodity_flow(
            commodities, caps, epsilon=0.1, warm=cold.warm_state
        )
        assert again.warm_start == "reuse"
        assert again.path_flows == cold.path_flows  # bit-identical rates
        assert again.objective == cold.objective
        assert again.iterations == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_warm_solve_keeps_guarantee_under_demand_drift(self, seed):
        commodities, caps = random_instance(seed, allow_zero_caps=False)
        prev = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        moved = [
            Commodity(
                name=c.name,
                paths=c.paths,
                demand=None if c.demand is None else c.demand * 0.8,
            )
            for c in commodities
        ]
        warm = max_multicommodity_flow(
            moved, caps, epsilon=0.1, warm=prev.warm_state
        )
        assert warm.warm_start in ("warm", "cold-fallback", "reuse")
        lp = PathMCF(moved, caps).solve_lp()
        assert warm.objective >= (1 - 0.1) ** 3 * lp.objective - 1e-9
        for res, used in usage_of(moved, warm.path_flows).items():
            assert used <= caps[res] * (1 + 1e-9) + 1e-9

    def test_capacity_change_goes_cold(self):
        commodities, caps = random_instance(13, allow_zero_caps=False)
        prev = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        assert prev.warm_state is not None
        bumped = {k: v * 1.5 for k, v in caps.items()}
        result = max_multicommodity_flow(
            commodities, bumped, epsilon=0.1, warm=prev.warm_state
        )
        assert result.warm_start == "cold"

    def test_epsilon_change_goes_cold(self):
        commodities, caps = random_instance(14, allow_zero_caps=False)
        prev = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        result = max_multicommodity_flow(
            commodities, caps, epsilon=0.2, warm=prev.warm_state
        )
        assert result.warm_start == "cold"

    def test_duplicate_commodity_names_skip_warm_state(self):
        commodities = [commodity("c", ["l"]), commodity("c", ["l"])]
        result = max_multicommodity_flow(commodities, {"l": 4.0}, epsilon=0.1)
        assert result.warm_state is None


class TestRoutingWarmStore:
    def test_round_trip_same_key(self):
        store = RoutingWarmStore()
        assert store.validate(1, frozenset()) is None
        sentinel = object()
        store.store(1, frozenset(), sentinel)
        assert store.validate(1, frozenset()) is sentinel
        assert store.invalidations == 0

    def test_epoch_change_invalidates(self):
        store = RoutingWarmStore()
        store.store(1, frozenset(), object())
        assert store.validate(2, frozenset()) is None
        assert store.invalidations == 1

    def test_failure_set_change_invalidates(self):
        store = RoutingWarmStore()
        store.store(1, frozenset(), object())
        assert store.validate(1, frozenset({("A", "B")})) is None
        assert store.invalidations == 1


class TestGreedyIncidenceRewrite:
    @pytest.mark.parametrize("seed", range(40))
    def test_bit_identical_to_reference_loop(self, seed):
        """The vectorized greedy must reproduce the historical dict-walking
        loop exactly — it feeds the golden determinism fingerprints."""
        rng = random.Random(seed)
        n_res = rng.randint(3, 25)
        caps = {
            f"r{i}": rng.choice([0.0, rng.uniform(0.5, 80.0)])
            for i in range(n_res)
        }
        names = sorted(caps) + ["unknown-a", "unknown-b"]
        commodities = []
        for ci in range(rng.randint(1, 20)):
            paths = [
                tuple(rng.choice(names) for _ in range(rng.randint(1, 5)))
                for _ in range(rng.randint(1, 4))
            ]
            if rng.random() < 0.2:
                paths.append(paths[0])
            demand = rng.choice([None, 0.0, rng.uniform(0.1, 60.0)])
            commodities.append(
                Commodity(name=f"c{ci}", paths=tuple(paths), demand=demand)
            )
        expected = _reference_greedy(commodities, caps)
        actual = BDSRouter._solve_greedy(commodities, caps)
        assert actual == expected  # exact float equality, key for key


def _reference_greedy(commodities, capacities, fair_rounds=3):
    """Verbatim copy of the pre-incidence greedy loop (the yardstick)."""
    residual = dict(capacities)
    rates = {}
    remaining = {
        i: (c.demand if c.demand is not None else float("inf"))
        for i, c in enumerate(commodities)
    }

    def push_flow(index, limit_fraction):
        commodity = commodities[index]
        demand = remaining[index]
        while demand > 1e-9:
            best_pi, best_room = -1, 0.0
            for pi, path in enumerate(commodity.paths):
                room = min(residual.get(r, 0.0) for r in path)
                if room > best_room:
                    best_room = room
                    best_pi = pi
            if best_pi < 0 or best_room <= 1e-9:
                break
            push = min(demand, best_room * limit_fraction)
            if push <= 1e-9:
                break
            key = (commodity.name, best_pi)
            rates[key] = rates.get(key, 0.0) + push
            for res in commodity.paths[best_pi]:
                residual[res] = residual.get(res, 0.0) - push
            demand -= push
            if limit_fraction < 1.0:
                break
        remaining[index] = demand

    active = [i for i, d in remaining.items() if d > 1e-9]
    for _round in range(fair_rounds):
        if not active:
            break
        share = 1.0 / max(len(active), 1)
        for i in active:
            push_flow(i, share)
        active = [i for i in active if remaining[i] > 1e-9]
    for i in range(len(commodities)):
        if remaining[i] > 1e-9:
            push_flow(i, 1.0)
    return rates

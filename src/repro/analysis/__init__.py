"""Metrics, experiment harness, and reporting for the paper's evaluation."""

from repro.analysis.metrics import Summary, empirical_cdf, percentile, summarize
from repro.analysis.reporting import format_cdf_rows, format_series, format_table
from repro.analysis.runner import make_strategy, run_simulation, STRATEGY_NAMES
from repro.analysis.appendix import (
    balanced_completion_time,
    imbalanced_completion_time,
    theorem_holds,
)
from repro.analysis.parallel import BatchStats, RunOutcome, RunSpec, run_many
from repro.analysis.plots import ascii_bars, ascii_cdf, ascii_xy
from repro.analysis.runcache import CacheStats, RunCache, spec_fingerprint
from repro.analysis.sweeps import SweepResult, compare_sweeps, sweep
from repro.analysis.export import (
    load_result,
    load_result_dict,
    result_from_dict,
    result_to_dict,
    save_result,
)

__all__ = [
    "ascii_bars",
    "ascii_cdf",
    "ascii_xy",
    "SweepResult",
    "compare_sweeps",
    "sweep",
    "load_result",
    "load_result_dict",
    "result_from_dict",
    "result_to_dict",
    "save_result",
    "Summary",
    "empirical_cdf",
    "percentile",
    "summarize",
    "format_cdf_rows",
    "format_series",
    "format_table",
    "make_strategy",
    "run_simulation",
    "STRATEGY_NAMES",
    "BatchStats",
    "RunOutcome",
    "RunSpec",
    "run_many",
    "CacheStats",
    "RunCache",
    "spec_fingerprint",
    "balanced_completion_time",
    "imbalanced_completion_time",
    "theorem_holds",
]

"""Property-based tests (hypothesis) on core invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.appendix import (
    balanced_completion_time,
    imbalanced_completion_time,
)
from repro.analysis.metrics import empirical_cdf
from repro.core.bandwidth import BandwidthEnforcer, residual_budget
from repro.lp.fptas import max_multicommodity_flow
from repro.lp.mcf import Commodity, PathMCF
from repro.net.flow import Flow, max_min_fair_rates, resource_utilization
from repro.overlay.blocks import split_into_blocks, total_size
from repro.workload.distributions import PiecewiseLinearCDF


# ---------------------------------------------------------------------------
# Block splitting
# ---------------------------------------------------------------------------


@given(
    num_blocks=st.floats(min_value=0.01, max_value=2000.0),
    block=st.floats(min_value=1.0, max_value=1e9),
)
@settings(max_examples=200)
def test_split_conserves_bytes(num_blocks, block):
    total = num_blocks * block  # bounded block count, any magnitude
    blocks = split_into_blocks("j", total, block)
    assert total_size(blocks) == pytest.approx(total, rel=1e-9)
    # Every block except the last is exactly block-sized.
    for b in blocks[:-1]:
        assert b.size == pytest.approx(block)
    assert blocks[-1].size <= block * (1 + 1e-9)
    assert [b.index for b in blocks] == list(range(len(blocks)))


# ---------------------------------------------------------------------------
# Max-min fairness
# ---------------------------------------------------------------------------


@st.composite
def flow_system(draw):
    num_resources = draw(st.integers(min_value=1, max_value=6))
    resources = [f"r{i}" for i in range(num_resources)]
    caps = {
        r: draw(st.floats(min_value=0.5, max_value=100.0)) for r in resources
    }
    num_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for i in range(num_flows):
        size = draw(st.integers(min_value=1, max_value=num_resources))
        used = draw(
            st.lists(
                st.sampled_from(resources),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        cap = draw(
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=50.0))
        )
        flows.append(Flow(flow_id=i, resources=tuple(used), rate_cap=cap))
    return flows, caps


@given(flow_system())
@settings(max_examples=200, deadline=None)
def test_max_min_fair_is_feasible_and_respects_caps(system):
    flows, caps = system
    rates = max_min_fair_rates(flows, caps)
    usage = resource_utilization(flows, rates)
    for res, used in usage.items():
        assert used <= caps[res] * (1 + 1e-6) + 1e-9
    for flow in flows:
        if flow.rate_cap is not None:
            assert rates[flow.flow_id] <= flow.rate_cap * (1 + 1e-6) + 1e-9
        assert rates[flow.flow_id] >= 0


@given(flow_system())
@settings(max_examples=100, deadline=None)
def test_max_min_fair_leaves_no_easy_improvement(system):
    """No flow could be given +epsilon without some resource or cap binding."""
    flows, caps = system
    rates = max_min_fair_rates(flows, caps)
    usage = resource_utilization(flows, rates)
    for flow in flows:
        capped = (
            flow.rate_cap is not None
            and rates[flow.flow_id] >= flow.rate_cap - 1e-6
        )
        saturated = any(
            usage[res] >= caps[res] * (1 - 1e-6) - 1e-9 for res in flow.resources
        )
        assert capped or saturated


# ---------------------------------------------------------------------------
# MCF / FPTAS
# ---------------------------------------------------------------------------


@st.composite
def mcf_instance(draw):
    num_resources = draw(st.integers(min_value=2, max_value=5))
    resources = [f"r{i}" for i in range(num_resources)]
    caps = {
        r: draw(st.floats(min_value=1.0, max_value=50.0)) for r in resources
    }
    num_commodities = draw(st.integers(min_value=1, max_value=4))
    commodities = []
    for c in range(num_commodities):
        num_paths = draw(st.integers(min_value=1, max_value=3))
        paths = []
        for _ in range(num_paths):
            size = draw(st.integers(min_value=1, max_value=num_resources))
            path = draw(
                st.lists(
                    st.sampled_from(resources),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
            paths.append(tuple(path))
        demand = draw(
            st.one_of(st.none(), st.floats(min_value=0.5, max_value=30.0))
        )
        commodities.append(
            Commodity(name=f"c{c}", paths=tuple(paths), demand=demand)
        )
    return commodities, caps


@given(mcf_instance())
@settings(max_examples=50, deadline=None)
def test_fptas_is_feasible_and_near_optimal(instance):
    commodities, caps = instance
    lp = PathMCF(commodities, caps).solve_lp()
    approx = max_multicommodity_flow(commodities, caps, epsilon=0.1)
    # Feasibility: per-resource usage within capacity.
    usage = {}
    for (name, pi), rate in approx.path_flows.items():
        commodity = next(c for c in commodities if c.name == name)
        for res in commodity.paths[pi]:
            usage[res] = usage.get(res, 0.0) + rate
    for res, used in usage.items():
        assert used <= caps[res] * (1 + 1e-6)
    # Demand feasibility.
    for commodity in commodities:
        if commodity.demand is not None:
            flowed = sum(
                rate
                for (name, _pi), rate in approx.path_flows.items()
                if name == commodity.name
            )
            assert flowed <= commodity.demand * (1 + 1e-6)
    # Near-optimality: within (1 - eps)^3 of the LP optimum.
    assert approx.objective >= (1 - 0.1) ** 3 * lp.objective - 1e-9
    assert approx.objective <= lp.objective * (1 + 1e-6) + 1e-9


# ---------------------------------------------------------------------------
# Bandwidth separation
# ---------------------------------------------------------------------------


@given(
    capacity=st.floats(min_value=0.1, max_value=1e9),
    online=st.floats(min_value=0.0, max_value=1e9),
    threshold=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200)
def test_residual_budget_bounds(capacity, online, threshold):
    budget = residual_budget(capacity, online, threshold)
    assert 0.0 <= budget <= threshold * capacity + 1e-9
    # Relative slack: threshold*capacity - online + online need not
    # round-trip; the rounding error scales with the magnitudes involved
    # (a few ulps of threshold*capacity), so an absolute epsilon is wrong
    # for large capacities.
    target = threshold * capacity
    slack = 4 * math.ulp(target) + 1e-9
    assert budget + online >= target - slack or budget == 0.0


@given(
    budget=st.floats(min_value=0.0, max_value=1e6),
    demands=st.lists(st.floats(min_value=0.0, max_value=1e5), max_size=10),
)
@settings(max_examples=200)
def test_enforcer_never_exceeds_budget(budget, demands):
    enforcer = BandwidthEnforcer(budget=budget)
    allocation = enforcer.allocate({i: d for i, d in enumerate(demands)})
    assert sum(allocation.values()) <= budget * (1 + 1e-9) + 1e-9
    for i, demand in enumerate(demands):
        assert allocation[i] <= demand + 1e-9


# ---------------------------------------------------------------------------
# Appendix theorem (generalized rarest-first justification)
# ---------------------------------------------------------------------------


@given(
    m=st.integers(min_value=3, max_value=50),
    data=st.data(),
)
@settings(max_examples=200)
def test_balanced_beats_imbalanced(m, data):
    k2 = data.draw(st.integers(min_value=2, max_value=m - 1), label="k2")
    k1 = data.draw(st.integers(min_value=1, max_value=k2 - 1), label="k1")
    if (k1 + k2) % 2 != 0:
        k2 = k2 - 1 if k2 - 1 > k1 else k2 + 1
        if k2 >= m or k1 >= k2:
            return
    k = (k1 + k2) // 2
    t_a = balanced_completion_time(100, m, k, 1.0, 1.0)
    t_b = imbalanced_completion_time(100, m, k1, k2, 1.0, 1.0)
    assert t_a < t_b


# ---------------------------------------------------------------------------
# CDF machinery
# ---------------------------------------------------------------------------


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=100)
)
@settings(max_examples=200)
def test_empirical_cdf_properties(values):
    xs, ps = empirical_cdf(values)
    assert xs == sorted(xs)
    assert ps[-1] == pytest.approx(1.0)
    assert all(0 < p <= 1 for p in ps)
    assert len(xs) == len(values)


from hypothesis import assume


@st.composite
def cdf_knots(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    raw_x = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=1e6),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    raw_p = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=0.99),
            min_size=n - 2,
            max_size=n - 2,
            unique=True,
        )
    )
    xs = sorted(raw_x)
    ps = [0.0] + sorted(raw_p) + [1.0]
    # Degenerate spacing (knots or probabilities a few ulps apart) makes the
    # cdf/quantile round trip numerically meaningless; require real gaps.
    assume(all(b - a > 1e-6 * max(abs(b), 1.0) for a, b in zip(xs, xs[1:])))
    assume(all(q - p > 1e-9 for p, q in zip(ps, ps[1:])))
    return list(zip(xs, ps))


@given(cdf_knots(), st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=200)
def test_piecewise_cdf_quantile_roundtrip(knots, q):
    cdf = PiecewiseLinearCDF(knots)
    value = cdf.quantile(q)
    assert knots[0][0] <= value <= knots[-1][0]
    # CDF is monotone: cdf(quantile(q)) ~= q within the knot span.
    assert cdf.cdf(value) == pytest.approx(q, abs=1e-6) or q in (0.0, 1.0)

"""Plain-text figure rendering.

No plotting libraries are available offline, so the benchmark harness
renders the paper's figures as compact ASCII charts: CDF curves
(:func:`ascii_cdf`), x-y series (:func:`ascii_xy`), and grouped bars
(:func:`ascii_bars`). The goal is shape legibility in a terminal — axes
are labeled with min/max, points are interpolated onto a character grid.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import empirical_cdf


def _grid(width: int, height: int) -> List[List[str]]:
    return [[" "] * width for _ in range(height)]


def _render(
    grid: List[List[str]],
    x_label: str,
    y_label: str,
    x_range: Tuple[float, float],
    y_range: Tuple[float, float],
) -> str:
    height = len(grid)
    lines = []
    for r, row in enumerate(grid):
        prefix = ""
        if r == 0:
            prefix = f"{y_range[1]:>10.3g} |"
        elif r == height - 1:
            prefix = f"{y_range[0]:>10.3g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    width = len(grid[0])
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(
        " " * 12
        + f"{x_range[0]:<.3g}"
        + " " * max(1, width - 18)
        + f"{x_range[1]:>.3g}"
    )
    lines.append(" " * 12 + f"x: {x_label}   y: {y_label}")
    return "\n".join(lines)


def _plot_points(
    points: Sequence[Tuple[float, float]],
    width: int,
    height: int,
    marker: str,
    grid: Optional[List[List[str]]] = None,
    x_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> Tuple[List[List[str]], Tuple[float, float], Tuple[float, float]]:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = (min(xs), max(xs)) if x_range is None else x_range
    y_lo, y_hi = (min(ys), max(ys)) if y_range is None else y_range
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if grid is None:
        grid = _grid(width, height)
    for x, y in points:
        col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
        col = min(max(col, 0), width - 1)
        row = min(max(row, 0), height - 1)
        grid[row][col] = marker
    return grid, (x_lo, x_hi), (y_lo, y_hi)


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 56,
    height: int = 12,
    x_label: str = "value",
) -> str:
    """Render one or more empirical CDFs on a shared grid.

    Each named sample gets its own marker (up to four series). This is the
    renderer behind the paper's many CDF figures (2, 4, 5, 9a, 11b/c, 13c).
    """
    if not series:
        raise ValueError("need at least one series")
    markers = "*o+x"
    all_values = [v for sample in series.values() for v in sample]
    x_lo, x_hi = min(all_values), max(all_values)
    grid = None
    x_range = (x_lo, x_hi)
    y_range = (0.0, 1.0)
    legend = []
    for (name, sample), marker in zip(series.items(), markers):
        xs, ps = empirical_cdf(sample)
        points = list(zip(xs, ps))
        grid, x_range, y_range = _plot_points(
            points, width, height, marker, grid, x_range, y_range
        )
        legend.append(f"{marker} {name}")
    chart = _render(grid, x_label, "CDF", x_range, y_range)
    return chart + "\n" + " " * 12 + "   ".join(legend)


def ascii_xy(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 56,
    height: int = 12,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render one x-y series (the Fig. 11a / 12c style curves)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        raise ValueError("need at least one point")
    plot_xs = [math.log10(x) for x in xs] if log_x else list(xs)
    grid, x_range, y_range = _plot_points(
        list(zip(plot_xs, ys)), width, height, "*"
    )
    if log_x:
        x_range = (10 ** x_range[0], 10 ** x_range[1])
        x_label = f"{x_label} (log)"
    return _render(grid, x_label, y_label, x_range, y_range)


def ascii_bars(
    values: Dict[str, float], width: int = 40, unit: str = ""
) -> str:
    """Horizontal bars for categorical comparisons (Table 3 / Fig. 9b)."""
    if not values:
        raise ValueError("need at least one bar")
    peak = max(values.values())
    if peak <= 0:
        raise ValueError("bar values must include a positive maximum")
    label_width = max(len(k) for k in values)
    lines = []
    for name, value in values.items():
        filled = int(round(value / peak * width))
        bar = "█" * filled
        lines.append(f"{name:<{label_width}} |{bar:<{width}} {value:.4g}{unit}")
    return "\n".join(lines)

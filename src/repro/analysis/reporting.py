"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that output aligned and readable in
a terminal (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import percentile


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_cdf_rows(
    values: Sequence[float],
    quantiles: Sequence[float] = (10, 25, 50, 75, 90, 95, 99),
    unit: str = "",
) -> str:
    """Render a sample's CDF at chosen percentiles, one row per percentile."""
    rows = [
        (f"p{int(q)}", f"{percentile(values, q):.3f}{unit}") for q in quantiles
    ]
    return format_table(["percentile", "value"], rows)


def format_series(
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a two-column table."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    return format_table([x_label, y_label], list(zip(xs, ys)))


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A coarse one-line chart for quick visual inspection of a series."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(
        blocks[int((v - lo) / span * (len(blocks) - 1))] for v in sampled
    )

"""A thin linear-program builder over ``scipy.optimize.linprog``.

Keeps the rest of the codebase free of matrix plumbing: callers add named
variables and dictionary-coefficient constraints; the builder assembles the
sparse matrices and normalizes the solution. Only the features BDS's
formulations need are exposed (continuous variables, <=/>=/== constraints,
min/max objectives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog


class LPError(RuntimeError):
    """Raised when the solver fails or the model is infeasible/unbounded."""


@dataclass
class LPSolution:
    """A solved LP: objective value plus per-variable values by name."""

    objective: float
    values: Dict[str, float]
    status: str

    def __getitem__(self, name: str) -> float:
        return self.values[name]


class LinearProgram:
    """Incrementally built LP, solved with HiGHS via scipy.

    >>> lp = LinearProgram(maximize=True)
    >>> x = lp.add_variable("x", upper=4, objective=1.0)
    >>> y = lp.add_variable("y", upper=4, objective=1.0)
    >>> lp.add_constraint({"x": 1, "y": 2}, "<=", 6)
    >>> sol = lp.solve()
    >>> round(sol.objective, 6)
    5.0
    """

    def __init__(self, maximize: bool = False) -> None:
        self.maximize = maximize
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._objective: List[float] = []
        self._lower: List[float] = []
        self._upper: List[Optional[float]] = []
        # Constraints as (coeffs, sense, rhs).
        self._constraints: List[Tuple[Dict[int, float], str, float]] = []

    # -- construction ------------------------------------------------------

    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: Optional[float] = None,
        objective: float = 0.0,
    ) -> str:
        """Add a continuous variable; returns its name for convenience."""
        if name in self._index:
            raise ValueError(f"duplicate variable {name!r}")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._objective.append(objective)
        self._lower.append(lower)
        self._upper.append(upper)
        return name

    def set_objective(self, name: str, coefficient: float) -> None:
        self._objective[self._index[name]] = coefficient

    def add_constraint(
        self, coefficients: Mapping[str, float], sense: str, rhs: float
    ) -> None:
        """Add ``sum(coef * var) <sense> rhs`` with sense in {<=, >=, ==}."""
        if sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown sense {sense!r}")
        indexed = {self._index[name]: coef for name, coef in coefficients.items()}
        self._constraints.append((indexed, sense, rhs))

    @property
    def num_variables(self) -> int:
        return len(self._names)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    # -- solving --------------------------------------------------------------

    def solve(self, method: str = "highs") -> LPSolution:
        """Solve and return an :class:`LPSolution`; raises :class:`LPError`."""
        if not self._names:
            raise LPError("empty model: no variables")
        n = len(self._names)
        c = np.asarray(self._objective, dtype=float)
        if self.maximize:
            c = -c

        ub_rows, ub_rhs = [], []
        eq_rows, eq_rhs = [], []
        for coeffs, sense, rhs in self._constraints:
            row = coeffs
            if sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(rhs)
            elif sense == ">=":
                ub_rows.append({i: -v for i, v in row.items()})
                ub_rhs.append(-rhs)
            else:
                eq_rows.append(row)
                eq_rhs.append(rhs)

        def to_matrix(rows: List[Dict[int, float]]) -> Optional[sparse.csr_matrix]:
            if not rows:
                return None
            data, row_idx, col_idx = [], [], []
            for r, coeffs in enumerate(rows):
                for i, v in coeffs.items():
                    row_idx.append(r)
                    col_idx.append(i)
                    data.append(v)
            return sparse.csr_matrix(
                (data, (row_idx, col_idx)), shape=(len(rows), n)
            )

        result = linprog(
            c,
            A_ub=to_matrix(ub_rows),
            b_ub=np.asarray(ub_rhs, dtype=float) if ub_rhs else None,
            A_eq=to_matrix(eq_rows),
            b_eq=np.asarray(eq_rhs, dtype=float) if eq_rhs else None,
            bounds=list(zip(self._lower, self._upper)),
            method=method,
        )
        if not result.success:
            raise LPError(f"LP solve failed: {result.message} (status {result.status})")
        objective = float(result.fun)
        if self.maximize:
            objective = -objective
        values = {name: float(result.x[i]) for i, name in enumerate(self._index)}
        # dict preserves insertion order; map via index to be explicit.
        values = {name: float(result.x[self._index[name]]) for name in self._names}
        return LPSolution(objective=objective, values=values, status="optimal")

"""The parameter-sweep harness."""

import pytest

from repro.analysis.sweeps import SweepPoint, SweepResult, compare_sweeps, sweep
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def wan_scenario(wan_capacity: float):
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=wan_capacity, uplink=50 * MBps
    )
    job = MulticastJob(
        job_id="s",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=60 * MB,
        block_size=4 * MB,
    )
    job.bind(topo)
    return topo, [job]


class TestSweep:
    def test_basic_sweep(self):
        result = sweep(
            "wan", [5 * MBps, 20 * MBps], wan_scenario, strategy="bds", seed=0
        )
        assert result.knob == "wan"
        assert len(result.points) == 2
        assert all(p.all_complete for p in result.points)
        # More WAN capacity can only help.
        assert result.points[1].completion_time <= result.points[0].completion_time

    def test_values_and_times_aligned(self):
        result = sweep("wan", [10 * MBps], wan_scenario, seed=0)
        assert result.values() == [10 * MBps]
        assert len(result.completion_times()) == 1

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            sweep("wan", [], wan_scenario)

    def test_scenario_must_produce_jobs(self):
        def broken(value):
            topo, _jobs = wan_scenario(value)
            return topo, []

        with pytest.raises(ValueError, match="no jobs"):
            sweep("wan", [10 * MBps], broken)

    def test_incomplete_run_marked_infinite(self):
        result = sweep(
            "wan",
            [1 * MBps],
            wan_scenario,
            seed=0,
            max_cycles=1,
        )
        assert not result.points[0].all_complete
        assert result.points[0].completion_time == float("inf")


class TestDeadlineSearch:
    def test_cheapest_meeting_deadline(self):
        result = SweepResult(
            knob="wan",
            strategy="bds",
            points=[
                SweepPoint(value=1, completion_time=100, cycles=1, all_complete=True),
                SweepPoint(value=2, completion_time=40, cycles=1, all_complete=True),
                SweepPoint(value=4, completion_time=10, cycles=1, all_complete=True),
            ],
        )
        assert result.cheapest_meeting_deadline(50).value == 2
        assert result.cheapest_meeting_deadline(5) is None

    def test_incomplete_points_skipped(self):
        result = SweepResult(
            knob="wan",
            strategy="bds",
            points=[
                SweepPoint(
                    value=1,
                    completion_time=float("inf"),
                    cycles=1,
                    all_complete=False,
                ),
                SweepPoint(value=2, completion_time=9, cycles=1, all_complete=True),
            ],
        )
        assert result.cheapest_meeting_deadline(10).value == 2


class TestCompareSweeps:
    def test_bds_never_loses_to_direct(self):
        sweeps = compare_sweeps(
            "wan",
            [5 * MBps, 20 * MBps],
            wan_scenario,
            strategies=("direct", "bds"),
            seed=0,
        )
        assert set(sweeps) == {"direct", "bds"}
        for d, b in zip(
            sweeps["direct"].completion_times(), sweeps["bds"].completion_times()
        ):
            assert b <= d * 1.01 + 3.0

"""Fig. 6 — uncoordinated bulk transfers interfere with online traffic.

Paper: a 6-hour bulk transfer pushed an inter-DC link past the 80 % safety
threshold and latency-sensitive traffic saw over 30x delay inflation. The
reproduction runs an uncoordinated (Gingko) bulk multicast over a link with
diurnal online traffic and records utilization plus the resulting delay
inflation; BDS on the same scenario causes zero violations (see Fig. 10).
"""

from repro.analysis.experiments import exp_interference
from repro.analysis.reporting import format_table, sparkline
from repro.utils.units import GB


def test_fig6_uncoordinated_interference(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_interference("gingko", file_bytes=2 * GB, seed=6),
        rounds=1,
        iterations=1,
    )
    peak_util = max(result.total_utilization)
    peak_inflation = max(result.inflation)
    rows = [
        ["peak total utilization", f"{peak_util:.0%}", "> 80% threshold"],
        ["cycles above threshold", str(result.violations), "sustained"],
        ["peak delay inflation", f"{peak_inflation:.1f}x", "~30x"],
    ]
    report(
        "\n[Fig. 6] Link utilization with uncoordinated bulk transfer\n"
        + format_table(["metric", "measured", "paper"], rows)
        + "\n  utilization over time: "
        + sparkline(result.total_utilization)
        + "\n  delay inflation     : "
        + sparkline(result.inflation)
    )
    assert result.violations > 0
    assert peak_inflation > 2.0

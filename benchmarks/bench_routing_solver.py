"""Routing-solve A/B — vectorized Fleischer FPTAS vs the legacy scalar loop.

Times the three routing-solve implementations on the same deterministic
random instances at three commodity scales (the largest matching the
Fig. 13b regime where the paper runs its FPTAS):

* the legacy Garg–Könemann loop (``repro.lp.fptas_legacy``, the
  pre-rewrite solver kept in-tree as the baseline),
* the vectorized Fleischer phase solver (``repro.lp.fptas``), cold and
  warm-started (demands drifted as between consecutive control cycles),
* the greedy water-filler, dict-walking reference vs the incidence
  rewrite (which must agree bit-for-bit — it feeds the determinism
  fingerprints).

Every FPTAS objective is checked against the exact LP: the rewrite must
clear the ``(1−ε)³`` guarantee on every benchmarked instance, and the
headline target is a ≥5× wall-clock speedup over the legacy solver at
the largest scale.

Run as a script to emit ``BENCH_routing.json``::

    PYTHONPATH=src python benchmarks/bench_routing_solver.py [--quick]

or through pytest like the other benchmarks (quick scale).
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.core.routing import BDSRouter
from repro.lp.fptas import max_multicommodity_flow
from repro.lp.fptas_legacy import legacy_max_multicommodity_flow
from repro.lp.incidence import PathIncidence
from repro.lp.mcf import Commodity, PathMCF

EPSILON = 0.1
FULL_SCALES = (50, 150, 400)
QUICK_SCALES = (15, 40, 90)
SPEEDUP_TARGET = 5.0

RESULT_FORMAT_VERSION = 1


def make_instance(num_commodities, seed):
    """A router-shaped instance: (uplink, wan, downlink) triple paths.

    Mirrors what ``BDSRouter._build_commodities`` produces — each
    commodity is a merged block group with up to 3 candidate source
    servers, demand-capped by the group's remaining bytes per cycle.
    """
    rng = random.Random(seed)
    num_dcs = 8
    servers_per_dc = max(4, num_commodities // 10)
    caps = {}
    for a in range(num_dcs):
        for b in range(num_dcs):
            if a != b:
                caps[("wan", f"dc{a}", f"dc{b}")] = rng.uniform(50.0, 200.0)
        for s in range(servers_per_dc):
            caps[("up", f"dc{a}-s{s}")] = rng.uniform(10.0, 40.0)
            caps[("down", f"dc{a}-s{s}")] = rng.uniform(10.0, 40.0)
    commodities = []
    for ci in range(num_commodities):
        dst_dc = rng.randrange(num_dcs)
        dst = f"dc{dst_dc}-s{rng.randrange(servers_per_dc)}"
        paths = []
        for _ in range(rng.randint(2, 3)):
            src_dc = rng.choice([d for d in range(num_dcs) if d != dst_dc])
            src = f"dc{src_dc}-s{rng.randrange(servers_per_dc)}"
            paths.append(
                (
                    ("up", src),
                    ("wan", f"dc{src_dc}", f"dc{dst_dc}"),
                    ("down", dst),
                )
            )
        demand = rng.uniform(5.0, 80.0) if rng.random() < 0.8 else None
        commodities.append(
            Commodity(name=f"g{ci}", paths=tuple(paths), demand=demand)
        )
    return commodities, caps


def drift_demands(commodities, factor=0.9):
    """The next cycle's instance: same paths/capacities, demands moved."""
    return [
        Commodity(
            name=c.name,
            paths=c.paths,
            demand=None if c.demand is None else c.demand * factor,
        )
        for c in commodities
    ]


def timed(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


def reference_greedy(commodities, capacities, fair_rounds=3):
    """The pre-incidence greedy loop (dict walking), kept as baseline."""
    residual = dict(capacities)
    rates = {}
    remaining = {
        i: (c.demand if c.demand is not None else float("inf"))
        for i, c in enumerate(commodities)
    }

    def push_flow(index, limit_fraction):
        commodity = commodities[index]
        demand = remaining[index]
        while demand > 1e-9:
            best_pi, best_room = -1, 0.0
            for pi, path in enumerate(commodity.paths):
                room = min(residual.get(r, 0.0) for r in path)
                if room > best_room:
                    best_room = room
                    best_pi = pi
            if best_pi < 0 or best_room <= 1e-9:
                break
            push = min(demand, best_room * limit_fraction)
            if push <= 1e-9:
                break
            key = (commodity.name, best_pi)
            rates[key] = rates.get(key, 0.0) + push
            for res in commodity.paths[best_pi]:
                residual[res] = residual.get(res, 0.0) - push
            demand -= push
            if limit_fraction < 1.0:
                break
        remaining[index] = demand

    active = [i for i, d in remaining.items() if d > 1e-9]
    for _round in range(fair_rounds):
        if not active:
            break
        share = 1.0 / max(len(active), 1)
        for i in active:
            push_flow(i, share)
        active = [i for i in active if remaining[i] > 1e-9]
    for i in range(len(commodities)):
        if remaining[i] > 1e-9:
            push_flow(i, 1.0)
    return rates


def bench_scale(num_commodities, seed=0):
    """One scale point: all solver A/Bs on the same instance."""
    commodities, caps = make_instance(num_commodities, seed)
    guarantee = (1 - EPSILON) ** 3

    legacy, legacy_s = timed(
        lambda: legacy_max_multicommodity_flow(commodities, caps, epsilon=EPSILON)
    )
    cold, cold_s = timed(
        lambda: max_multicommodity_flow(commodities, caps, epsilon=EPSILON)
    )
    lp, lp_s = timed(lambda: PathMCF(commodities, caps).solve_lp())

    drifted = drift_demands(commodities)
    warm, warm_s = timed(
        lambda: max_multicommodity_flow(
            drifted, caps, epsilon=EPSILON, warm=cold.warm_state
        )
    )
    cold2, cold2_s = timed(
        lambda: max_multicommodity_flow(drifted, caps, epsilon=EPSILON)
    )
    lp2 = PathMCF(drifted, caps).solve_lp()

    greedy_old, greedy_old_s = timed(lambda: reference_greedy(commodities, caps))
    # Match the router's call pattern: one shared incidence per cycle,
    # amortized across backends (route() builds it before dispatching).
    inc, inc_build_s = timed(
        lambda: PathIncidence.build(commodities, caps, strict=False)
    )
    greedy_new, greedy_new_s = timed(
        lambda: BDSRouter._solve_greedy(commodities, caps, incidence=inc)
    )

    return {
        "commodities": num_commodities,
        "resources": len(caps),
        "epsilon": EPSILON,
        "fptas": {
            "legacy_s": legacy_s,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "cold_drifted_s": cold2_s,
            "speedup_cold": legacy_s / cold_s if cold_s > 0 else float("inf"),
            "speedup_warm_vs_cold": (
                cold2_s / warm_s if warm_s > 0 else float("inf")
            ),
            "iterations_cold": cold.iterations,
            "iterations_warm": warm.iterations,
            "phases_cold": cold.phases,
            "warm_start": warm.warm_start,
        },
        "objectives": {
            "lp": lp.objective,
            "lp_s": lp_s,
            "legacy": legacy.objective,
            "cold": cold.objective,
            "warm": warm.objective,
            "lp_drifted": lp2.objective,
            "cold_ratio": cold.objective / lp.objective if lp.objective else 1.0,
            "warm_ratio": (
                warm.objective / lp2.objective if lp2.objective else 1.0
            ),
            "guarantee": guarantee,
            "cold_within_guarantee": cold.objective
            >= guarantee * lp.objective - 1e-9,
            "warm_within_guarantee": warm.objective
            >= guarantee * lp2.objective - 1e-9,
        },
        "greedy": {
            "legacy_s": greedy_old_s,
            "incidence_s": greedy_new_s,
            "incidence_build_s": inc_build_s,
            "speedup": (
                greedy_old_s / greedy_new_s if greedy_new_s > 0 else float("inf")
            ),
            "identical": greedy_old == greedy_new,
        },
    }


def run_benchmark(scales, seed=0):
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "epsilon": EPSILON,
        "speedup_target": SPEEDUP_TARGET,
        "scales": [bench_scale(n, seed=seed) for n in scales],
    }


def format_report(payload) -> str:
    rows = []
    for entry in payload["scales"]:
        fp = entry["fptas"]
        obj = entry["objectives"]
        gr = entry["greedy"]
        rows.append(
            [
                str(entry["commodities"]),
                f"{fp['legacy_s'] * 1e3:.0f}",
                f"{fp['cold_s'] * 1e3:.0f}",
                f"{fp['warm_s'] * 1e3:.0f}",
                f"{fp['speedup_cold']:.1f}x",
                f"{obj['cold_ratio']:.4f}",
                fp["warm_start"],
                f"{gr['speedup']:.1f}x",
                "yes" if gr["identical"] else "NO",
            ]
        )
    table = format_table(
        [
            "commodities",
            "legacy (ms)",
            "cold (ms)",
            "warm (ms)",
            "speedup",
            "obj/LP",
            "warm mode",
            "greedy",
            "greedy ==",
        ],
        rows,
    )
    largest = payload["scales"][-1]
    return (
        f"[routing solver] Fleischer FPTAS vs legacy, eps={EPSILON}\n"
        + table
        + (
            f"\nlargest scale ({largest['commodities']} commodities): "
            f"{largest['fptas']['speedup_cold']:.1f}x cold speedup "
            f"(target >= {SPEEDUP_TARGET:.0f}x), warm resumes in "
            f"{largest['fptas']['warm_s'] * 1e3:.0f}ms"
        )
    )


def check(payload, enforce_speedup) -> list:
    """Acceptance checks; returns a list of failure strings."""
    failures = []
    for entry in payload["scales"]:
        n = entry["commodities"]
        if not entry["objectives"]["cold_within_guarantee"]:
            failures.append(f"{n} commodities: cold solve below (1-eps)^3 * LP")
        if not entry["objectives"]["warm_within_guarantee"]:
            failures.append(f"{n} commodities: warm solve below (1-eps)^3 * LP")
        if not entry["greedy"]["identical"]:
            failures.append(f"{n} commodities: greedy rewrite diverged")
    if enforce_speedup:
        largest = payload["scales"][-1]
        speedup = largest["fptas"]["speedup_cold"]
        if speedup < SPEEDUP_TARGET:
            failures.append(
                f"largest scale speedup {speedup:.2f}x below "
                f"{SPEEDUP_TARGET:.0f}x target"
            )
    return failures


def test_routing_solver(benchmark, report):
    """Pytest entry: quick scales; guarantee + parity must always hold."""
    payload = benchmark.pedantic(
        lambda: run_benchmark(QUICK_SCALES, seed=0), rounds=1, iterations=1
    )
    report("\n" + format_report(payload))
    assert check(payload, enforce_speedup=False) == []
    # The rewrite must never lose to the scalar loop, even at quick scale
    # (the >=5x headline is asserted at full scale by the script).
    assert payload["scales"][-1]["fptas"]["speedup_cold"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scales for CI smoke runs (no speedup floor asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_routing.json",
        help="where to write the JSON result (default: ./BENCH_routing.json)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scales = QUICK_SCALES if args.quick else FULL_SCALES
    payload = run_benchmark(scales, seed=args.seed)
    payload["quick"] = args.quick
    print(format_report(payload))

    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    failures = check(payload, enforce_speedup=not args.quick)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Decision diffs: what the controller pushes to agents each cycle."""

import pytest

from repro.core import BDSController
from repro.core.diffs import DiffStats, diff_decisions, diff_stats_over_run
from repro.net.simulator import SimConfig, Simulation, TransferDirective
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def directive(blocks=((("j", 0),)), src="s0", dst="s1", rate=None, job="j"):
    return TransferDirective(
        job_id=job,
        block_ids=tuple(blocks),
        src_server=src,
        dst_server=dst,
        rate_cap=rate,
    )


class TestDiffDecisions:
    def test_all_added_from_empty(self):
        d = directive()
        diff = diff_decisions([], [d])
        assert diff.added == [d]
        assert not diff.removed and not diff.updated
        assert diff.num_messages == 1

    def test_all_removed_to_empty(self):
        d = directive()
        diff = diff_decisions([d], [])
        assert diff.removed == [d]
        assert diff.num_messages == 1

    def test_identical_decisions_empty_diff(self):
        d = directive(rate=5.0)
        diff = diff_decisions([d], [directive(rate=5.0)])
        assert diff.is_empty()
        assert diff.unchanged == 1

    def test_rerate_detected(self):
        old = directive(rate=5.0)
        new = directive(rate=10.0)
        diff = diff_decisions([old], [new])
        assert diff.updated == [(old, new)]
        assert diff.num_messages == 1

    def test_rate_within_tolerance_suppressed(self):
        old = directive(rate=100.0)
        new = directive(rate=100.5)
        diff = diff_decisions([old], [new], rate_tolerance=0.01)
        assert diff.is_empty()

    def test_new_blocks_is_an_update(self):
        old = directive(blocks=[("j", 0)])
        new = directive(blocks=[("j", 1)])
        diff = diff_decisions([old], [new])
        assert diff.updated == [(old, new)]
        assert not diff.added and not diff.removed

    def test_shrinking_block_list_is_progress_not_a_message(self):
        old = directive(blocks=[("j", 0), ("j", 1)], rate=5.0)
        new = directive(blocks=[("j", 1)], rate=5.0)
        diff = diff_decisions([old], [new])
        assert diff.is_empty()
        assert diff.unchanged == 1

    def test_changed_endpoint_is_add_plus_remove(self):
        old = directive(dst="s1")
        new = directive(dst="s2")
        diff = diff_decisions([old], [new])
        assert len(diff.added) == 1 and len(diff.removed) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_decisions([], [], rate_tolerance=-1)


class TestDiffStats:
    def test_savings_zero_when_everything_changes(self):
        stats = DiffStats()
        stats.record(2, diff_decisions([], [directive(), directive(dst="s2")]))
        assert stats.savings == 0.0

    def test_savings_full_when_nothing_changes(self):
        d = directive(rate=1.0)
        stats = DiffStats()
        stats.record(1, diff_decisions([d], [d]))
        assert stats.savings == 1.0

    def test_empty_run(self):
        assert DiffStats().savings == 0.0

    def test_over_run_accumulates(self):
        d1 = directive(rate=1.0)
        d2 = directive(rate=1.0, dst="s2")
        stats = diff_stats_over_run([[d1], [d1], [d1, d2]])
        assert stats.cycles == 3
        assert stats.total_directives == 4
        # Messages: add d1 (cycle 1), nothing (cycle 2), add d2 (cycle 3).
        assert stats.total_messages == 2
        assert stats.savings == pytest.approx(0.5)


class TestRealRunDiffs:
    def test_bds_run_produces_meaningful_savings(self):
        """Consecutive BDS decisions share many directives: a steady
        transfer re-rates/retains more than it churns."""
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=5 * MBps
        )
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=120 * MB,
            block_size=2 * MB,
        )
        job.bind(topo)
        controller = BDSController(seed=0)
        Simulation(
            topo, [job], controller, SimConfig(max_cycles=2000), seed=0
        ).run()
        history = [d.directives for d in controller.decisions]
        assert len(history) > 3
        stats = diff_stats_over_run(history, rate_tolerance=0.05)
        # Diffs never cost more than tearing down and re-pushing everything.
        full_push_cost = sum(len(h) for h in history) + sum(
            len(h) for h in history[:-1]
        )
        assert stats.total_messages <= full_push_cost

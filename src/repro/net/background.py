"""Latency-sensitive background traffic and its interaction with bulk data.

Reproduces the substrate behind §2.3's Fig. 6 and §5.2's Fig. 10: every WAN
link carries online (latency-sensitive) traffic following a diurnal curve
with noise and bursts. When *total* utilization (online + bulk) exceeds the
safety threshold, online traffic suffers queueing delay inflation — the
"30× longer delay" incident the paper shows.

Two sampling modes:

* **continuous** (default, ``step_seconds=0``) — the curve is evaluated at
  every query time and the noise term draws from a shared stream, so the
  usage changes every cycle;
* **stepped** (``step_seconds > 0``) — the curve is held constant within
  fixed steps (e.g. 5 simulated minutes) and the noise term is derived
  from a per-``(link, step)`` counter seed instead of a shared stream.
  Stepped usage is therefore *call-pattern independent*: querying a step
  once or a thousand times, or never querying the steps before it, yields
  the same values. That property is what lets the event-driven simulator
  core fast-forward across cycles inside one step — and it is also the
  realistic shape for day-scale runs, where online load reports arrive as
  periodic aggregates rather than per-3-seconds samples.

The :meth:`BackgroundTraffic.next_change_after` /
:meth:`~BackgroundTraffic.state_token` pair is the horizon API the event
engine uses: the token names the current background state (constant /
step index / cycle), and ``next_change_after`` bounds how far the state
is guaranteed not to move.
"""

from __future__ import annotations

import math
import zlib
from typing import Dict, Optional, Tuple

import numpy as np

from repro.net.cycle_cache import first_cycle_at_or_after
from repro.net.topology import ResourceKey
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive

SECONDS_PER_DAY = 24 * 3600.0


class BackgroundTraffic:
    """Per-link latency-sensitive traffic as a function of simulated time.

    The curve is ``base + diurnal * sin(...) + noise``, expressed as a
    fraction of link capacity. Each link gets an independent random phase so
    that peaks do not align across the WAN, as in production networks.
    """

    def __init__(
        self,
        base_fraction: float = 0.25,
        diurnal_fraction: float = 0.20,
        noise_fraction: float = 0.03,
        seed: SeedLike = None,
        step_seconds: float = 0.0,
    ) -> None:
        check_fraction("base_fraction", base_fraction)
        check_fraction("diurnal_fraction", diurnal_fraction)
        check_fraction("noise_fraction", noise_fraction)
        if step_seconds < 0:
            raise ValueError("step_seconds must be >= 0 (0 = continuous)")
        self.base_fraction = base_fraction
        self.diurnal_fraction = diurnal_fraction
        self.noise_fraction = noise_fraction
        self.step_seconds = float(step_seconds)
        self._rng = make_rng(seed)
        self._phase: Dict[ResourceKey, float] = {}
        # Stepped mode: one sub-seed drawn up front (so phases stay on the
        # shared stream) plus a tiny per-link memo of the last-step values.
        self._step_seed: int = 0
        if self.step_seconds > 0:
            self._step_seed = int(self._rng.integers(0, 2**63 - 1))
        self._step_memo: Dict[ResourceKey, Tuple[int, float]] = {}

    def _link_phase(self, link: ResourceKey) -> float:
        if link not in self._phase:
            self._phase[link] = float(self._rng.uniform(0, 2 * math.pi))
        return self._phase[link]

    def is_static(self) -> bool:
        """True when usage is the same constant at every query time."""
        return self.diurnal_fraction == 0.0 and self.noise_fraction == 0.0

    def _step_index(self, time_s: float) -> int:
        return int(time_s / self.step_seconds)

    def _step_noise(self, link: ResourceKey, step: int) -> float:
        """Deterministic noise for (link, step), independent of call order.

        Seeded from (run sub-seed, link hash, step) so the value depends
        only on identity — never on how many queries preceded it.
        """
        link_tag = zlib.crc32(":".join(link).encode("utf-8"))
        rng = np.random.default_rng((self._step_seed, link_tag, step))
        return float(rng.normal(0.0, self.noise_fraction))

    def usage_fraction(self, link: ResourceKey, time_s: float) -> float:
        """Online traffic on ``link`` at ``time_s`` as a capacity fraction."""
        phase = self._link_phase(link)
        if self.step_seconds > 0:
            step = self._step_index(time_s)
            memo = self._step_memo.get(link)
            if memo is not None and memo[0] == step:
                return memo[1]
            # The curve is sampled at the step's start, so it is constant
            # within the step by construction.
            t_eff = step * self.step_seconds
            diurnal = math.sin(2 * math.pi * t_eff / SECONDS_PER_DAY + phase)
            noise = self._step_noise(link, step)
            value = (
                self.base_fraction
                + self.diurnal_fraction * 0.5 * (1 + diurnal)
                + noise
            )
            value = min(max(value, 0.0), 1.0)
            self._step_memo[link] = (step, value)
            return value
        diurnal = math.sin(2 * math.pi * time_s / SECONDS_PER_DAY + phase)
        noise = float(self._rng.normal(0.0, self.noise_fraction))
        value = self.base_fraction + self.diurnal_fraction * 0.5 * (1 + diurnal) + noise
        return min(max(value, 0.0), 1.0)

    def usage(self, link: ResourceKey, time_s: float, capacity: float) -> float:
        """Online traffic in bytes/second."""
        check_positive("capacity", capacity)
        return self.usage_fraction(link, time_s) * capacity

    # -- event-engine horizon API -----------------------------------------

    def state_token(self, cycle: int, dt: float) -> int:
        """A value naming the background state at ``cycle``.

        Equal tokens guarantee equal ``usage`` answers for every link (for
        a static curve or within one step); a varying continuous curve
        returns the cycle itself, so no two cycles ever compare equal.
        """
        if self.is_static():
            return -1
        if self.step_seconds > 0:
            return self._step_index(cycle * dt)
        return cycle

    def next_change_after(self, cycle: int, dt: float) -> Optional[int]:
        """First cycle after ``cycle`` whose state token differs.

        ``None`` means never (static curve). The stepped answer is exact:
        the candidate boundary cycle is derived from the step length and
        then walked back while the *actual* token function still differs,
        so float rounding in the division can only be corrected, never
        trusted. A continuous varying curve changes every cycle.
        """
        if self.is_static():
            return None
        if self.step_seconds > 0:
            cur = self._step_index(cycle * dt)
            c = first_cycle_at_or_after((cur + 1) * self.step_seconds, dt)
            if c <= cycle:
                return cycle + 1
            while c - 1 > cycle and self._step_index((c - 1) * dt) != cur:
                c -= 1
            return c
        return cycle + 1


def delay_inflation(utilization: float, threshold: float = 0.8) -> float:
    """Queueing-delay multiplier for online traffic at a given utilization.

    Below the safety threshold the link is effectively uncongested
    (multiplier 1). Above it, delay grows like an M/M/1 queue,
    ``1 / (1 - utilization)``, capped at 100× to keep metrics finite when a
    link is driven to (or past) saturation. The paper's incident shows 30×
    inflation at sustained >80 % utilization, which this curve reproduces
    around 97 % total utilization.
    """
    check_fraction("threshold", threshold)
    if utilization <= threshold:
        return 1.0
    utilization = min(utilization, 0.999)
    inflation = (1.0 - threshold) / (1.0 - utilization)
    return min(inflation, 100.0)

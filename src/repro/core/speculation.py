"""Non-blocking updates via speculated delivery status (§5.1).

While the controller computes a new decision, the previous cycle's
transfers keep running (agents are never blocked on the controller). The
controller therefore feeds its algorithm not the *reported* delivery state
but a *speculated* one: for every in-flight transfer it assumes the bytes
that will land during the decision window have landed.

:class:`DeliverySpeculator` consumes the previous cycle's directives and
produces the set of block deliveries expected to complete within a given
horizon; :class:`SpeculatedView` overlays those onto a real
:class:`~repro.net.simulator.ClusterView` without mutating the underlying
possession index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.net.simulator import ClusterView, TransferDirective
from repro.utils.validation import check_non_negative

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class SpeculatedDelivery:
    """One block expected to finish arriving within the horizon."""

    block_id: BlockId
    dst_server: str
    src_server: str


class DeliverySpeculator:
    """Predicts deliveries completing while the controller is thinking.

    The prediction is conservative and purely local: for each directive of
    the previous cycle, bytes land in block order at the directive's rate;
    blocks whose remaining bytes fit within ``horizon_seconds × rate`` are
    speculated as delivered.
    """

    def __init__(self, horizon_seconds: float) -> None:
        check_non_negative("horizon_seconds", horizon_seconds)
        self.horizon_seconds = horizon_seconds

    def speculate(
        self,
        view: ClusterView,
        previous_directives: Sequence[TransferDirective],
        block_sizes: Mapping[BlockId, float],
    ) -> List[SpeculatedDelivery]:
        """Deliveries expected to complete within the horizon.

        Directives without a rate cap are skipped — without a controller-
        assigned rate there is no honest local estimate of their progress.
        """
        speculated: List[SpeculatedDelivery] = []
        for directive in previous_directives:
            if not directive.rate_cap or directive.rate_cap <= 0:
                continue
            budget = directive.rate_cap * self.horizon_seconds
            for block_id in directive.block_ids:
                if budget <= 0:
                    break
                if view.store.has(directive.dst_server, block_id):
                    continue  # already arrived for real
                size = block_sizes.get(block_id)
                if size is None:
                    continue
                remaining = size - view.received_bytes(
                    block_id, directive.dst_server
                )
                if remaining <= budget:
                    speculated.append(
                        SpeculatedDelivery(
                            block_id=block_id,
                            dst_server=directive.dst_server,
                            src_server=directive.src_server,
                        )
                    )
                budget -= min(remaining, budget)
        return speculated


class _SpeculatedStore:
    """Read-only possession overlay: real store + speculated deliveries."""

    # The wrapped store's PossessionMatrix (if any) does not know about
    # the speculated extra copies, so array consumers must not answer
    # from it. A class attribute (not delegation through __getattr__,
    # which would leak the real store's True) pins the witness to False.
    is_exact_matrix = False

    def __init__(self, store, extra: Iterable[SpeculatedDelivery]) -> None:
        self._store = store
        self._extra_by_server: Dict[str, Set[BlockId]] = {}
        self._extra_holders: Dict[BlockId, Set[str]] = {}
        for delivery in extra:
            self._extra_by_server.setdefault(delivery.dst_server, set()).add(
                delivery.block_id
            )
            self._extra_holders.setdefault(delivery.block_id, set()).add(
                delivery.dst_server
            )

    def __getattr__(self, name):
        return getattr(self._store, name)

    def has(self, server_id: str, block_id: BlockId) -> bool:
        if block_id in self._extra_by_server.get(server_id, ()):
            return True
        return self._store.has(server_id, block_id)

    def holders(self, block_id: BlockId) -> Set[str]:
        return self._store.holders(block_id) | self._extra_holders.get(
            block_id, set()
        )

    def duplicate_count(self, block_id: BlockId) -> int:
        return len(self.holders(block_id))

    def blocks_on(self, server_id: str) -> Set[BlockId]:
        return self._store.blocks_on(server_id) | self._extra_by_server.get(
            server_id, set()
        )

    def dc_has_block(self, dc: str, block_id: BlockId) -> bool:
        if self._store.dc_has_block(dc, block_id):
            return True
        return any(
            self._store.dc_of(s) == dc
            for s in self._extra_holders.get(block_id, ())
        )


class SpeculatedView(ClusterView):
    """A :class:`ClusterView` whose store reflects speculated deliveries.

    Construction is cheap: the underlying view's fields are shared; only
    the store is wrapped. The base view's :class:`CycleCache` is *not*
    shared — its source/rarity memos answer for the real store, and the
    wrapped store sees extra speculated holders — so this view gets a
    fresh cache of its own (path memos are rebuilt; source memos key on
    the wrapped store's epoch). The simulator's pending maps are shared:
    they track the real store only, and the inherited pending accessors
    re-check every map entry against ``self.store`` — here the wrapped
    store — so speculated deliveries drop out exactly as a full scan
    over the wrapped store would.
    """

    def __init__(
        self, base: ClusterView, deliveries: Iterable[SpeculatedDelivery]
    ) -> None:
        from repro.net.cycle_cache import CycleCache

        self.topology = base.topology
        self.store = _SpeculatedStore(base.store, deliveries)
        self.jobs = base.jobs
        self.cycle = base.cycle
        self.time = base.time
        self.cycle_seconds = base.cycle_seconds
        self.bulk_capacities = base.bulk_capacities
        self.failed_agents = base.failed_agents
        self.controller_available = base.controller_available
        self.failed_links = base.failed_links
        self._partial = base._partial
        self._pending_map = base._pending_map
        self._relay_pending_map = base._relay_pending_map
        self._blocks_by_id = base._blocks_by_id
        self._cache = CycleCache() if base._cache is not None else None
        self._failed_frozen = base._failed_frozen
        self._pending_order = base._pending_order
        self._relay_order = base._relay_order
        # The wrapped store shadows the real one with speculated extra
        # copies, so the exactness witness must not hold: keep the *base*
        # store as the witness object — ``self.store`` (the wrapper) is a
        # different object, forcing the per-entry possession re-check.
        self._map_store = base._map_store
        self._map_epoch = base._map_epoch
        # No candidate table: the vectorized kernel reads possession
        # straight from the matrix, which does not see speculated copies.
        self._candidates = None

"""Workload distributions, generator, and trace persistence."""

import pytest

from repro.net.topology import Topology
from repro.utils.units import GB, MB, MBps, TB
from repro.workload.distributions import (
    APP_PROFILES,
    OVERALL_MULTICAST_SHARE,
    PiecewiseLinearCDF,
    destination_fraction_cdf,
    multicast_traffic_share,
    sample_application,
    transfer_size_cdf,
)
from repro.workload.generator import TransferRequest, WorkloadGenerator, to_jobs
from repro.workload.traces import load_trace, replay_as_jobs, save_trace


class TestPiecewiseLinearCDF:
    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLinearCDF([(0.0, 0.0)])  # one knot
        with pytest.raises(ValueError):
            PiecewiseLinearCDF([(1.0, 0.0), (0.5, 1.0)])  # unsorted values
        with pytest.raises(ValueError):
            PiecewiseLinearCDF([(0.0, 0.1), (1.0, 1.0)])  # p0 != 0
        with pytest.raises(ValueError):
            PiecewiseLinearCDF([(0.0, 0.0), (1.0, 0.9)])  # pn != 1
        with pytest.raises(ValueError):
            PiecewiseLinearCDF([(0.0, 0.0), (1.0, 1.0)], log_space=True)

    def test_cdf_interpolates(self):
        cdf = PiecewiseLinearCDF([(0.0, 0.0), (10.0, 1.0)])
        assert cdf.cdf(5.0) == pytest.approx(0.5)
        assert cdf.cdf(-1) == 0.0
        assert cdf.cdf(11) == 1.0

    def test_quantile_inverts_cdf(self):
        cdf = PiecewiseLinearCDF([(0.0, 0.0), (4.0, 0.5), (10.0, 1.0)])
        for q in (0.1, 0.5, 0.9):
            assert cdf.cdf(cdf.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_quantile_bounds(self):
        cdf = PiecewiseLinearCDF([(1.0, 0.0), (2.0, 1.0)])
        assert cdf.quantile(0.0) == pytest.approx(1.0)
        assert cdf.quantile(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_log_space_sampling(self):
        cdf = transfer_size_cdf()
        assert cdf.quantile(0.10) == pytest.approx(50 * GB, rel=0.01)
        assert cdf.quantile(0.40) == pytest.approx(1 * TB, rel=0.01)

    def test_sample_deterministic(self):
        cdf = destination_fraction_cdf()
        assert cdf.sample(seed=1) == cdf.sample(seed=1)


class TestPaperAnchors:
    def test_fig2a_anchors(self):
        cdf = destination_fraction_cdf()
        # 90% of transfers reach >= 60% of DCs.
        assert cdf.cdf(0.60) == pytest.approx(0.10, abs=0.01)
        # 70% reach > 80% of DCs.
        assert cdf.cdf(0.80) == pytest.approx(0.30, abs=0.01)

    def test_fig2b_anchors(self):
        cdf = transfer_size_cdf()
        assert 1 - cdf.cdf(1 * TB) == pytest.approx(0.60, abs=0.01)
        assert 1 - cdf.cdf(50 * GB) == pytest.approx(0.90, abs=0.01)

    def test_table1_profiles(self):
        assert set(APP_PROFILES) == {
            "blog-articles",
            "search-indexing",
            "offline-file-sharing",
            "forum-posts",
            "db-syncups",
        }
        for profile in APP_PROFILES.values():
            assert 0.85 <= profile["multicast_share"] <= 1.0
        assert OVERALL_MULTICAST_SHARE == pytest.approx(0.9113)

    def test_traffic_share_helper(self):
        shares = multicast_traffic_share(
            {"a": 100.0, "b": 50.0}, {"a": 90.0, "b": 50.0}
        )
        assert shares["a"] == pytest.approx(0.9)
        assert shares["b"] == pytest.approx(1.0)
        assert shares["all"] == pytest.approx(140 / 150)

    def test_sample_application_valid(self):
        assert sample_application(seed=0) in APP_PROFILES


class TestWorkloadGenerator:
    @pytest.fixture
    def generator(self):
        return WorkloadGenerator([f"dc{i}" for i in range(20)], seed=1)

    def test_needs_enough_dcs(self):
        with pytest.raises(ValueError):
            WorkloadGenerator(["a", "b"], seed=0)

    def test_generate_by_count(self, generator):
        requests = generator.generate(count=50)
        assert len(requests) == 50
        assert all(r.arrival_time >= 0 for r in requests)

    def test_generate_by_duration(self):
        generator = WorkloadGenerator(
            [f"dc{i}" for i in range(5)], seed=2, mean_interarrival_s=10.0
        )
        requests = generator.generate(duration_s=1000.0)
        assert all(r.arrival_time <= 1000.0 for r in requests)
        assert 50 <= len(requests) <= 200  # ~100 expected

    def test_needs_a_bound(self, generator):
        with pytest.raises(ValueError):
            generator.generate()

    def test_arrivals_monotonic(self, generator):
        requests = generator.generate(count=30)
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)

    def test_multicast_dominates(self, generator):
        requests = generator.generate(count=300)
        share = sum(r.is_multicast for r in requests) / len(requests)
        assert share > 0.85  # Table 1: ~91%

    def test_destinations_exclude_source(self, generator):
        for request in generator.generate(count=100):
            assert request.src_dc not in request.dst_dcs

    def test_multicasts_have_many_destinations(self, generator):
        requests = [r for r in generator.generate(count=200) if r.is_multicast]
        mean_frac = sum(len(r.dst_dcs) for r in requests) / len(requests) / 20
        assert mean_frac > 0.5  # Fig 2a: most target over half the DCs


class TestRequestValidation:
    def test_multicast_needs_two_destinations(self):
        with pytest.raises(ValueError):
            TransferRequest(
                request_id="r",
                app="blog-articles",
                src_dc="a",
                dst_dcs=("b",),
                size_bytes=1.0,
                arrival_time=0.0,
                is_multicast=True,
            )

    def test_source_not_destination(self):
        with pytest.raises(ValueError):
            TransferRequest(
                request_id="r",
                app="x",
                src_dc="a",
                dst_dcs=("a", "b"),
                size_bytes=1.0,
                arrival_time=0.0,
                is_multicast=True,
            )


class TestToJobs:
    def test_conversion_and_scaling(self):
        topo = Topology.full_mesh(5, 2, 1 * GB, 10 * MBps)
        generator = WorkloadGenerator(topo.dc_names(), seed=3)
        requests = generator.generate(count=20)
        jobs = to_jobs(requests, topo, block_size=2 * MB, size_scale=1e-6)
        assert jobs
        for job in jobs:
            assert job.is_bound()
            assert job.total_bytes >= 2 * MB  # floored at one block

    def test_relative_arrivals_shift_to_zero(self):
        topo = Topology.full_mesh(5, 2, 1 * GB, 10 * MBps)
        generator = WorkloadGenerator(topo.dc_names(), seed=4)
        requests = generator.generate(count=10)
        jobs = to_jobs(requests, topo, size_scale=1e-6)
        assert min(j.arrival_time for j in jobs) == pytest.approx(0.0)

    def test_unknown_source_rejected(self):
        topo = Topology.full_mesh(3, 1, 1 * GB, 1 * MBps)
        request = TransferRequest(
            request_id="r",
            app="x",
            src_dc="elsewhere",
            dst_dcs=("dc0", "dc1"),
            size_bytes=10 * MB,
            arrival_time=0.0,
            is_multicast=True,
        )
        with pytest.raises(ValueError):
            to_jobs([request], topo)


class TestTraces:
    def test_save_load_roundtrip(self, tmp_path):
        generator = WorkloadGenerator([f"dc{i}" for i in range(8)], seed=5)
        requests = generator.generate(count=25)
        path = tmp_path / "trace.jsonl"
        save_trace(requests, path)
        loaded = load_trace(path)
        assert loaded == sorted(requests, key=lambda r: r.arrival_time)

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace(
            WorkloadGenerator([f"dc{i}" for i in range(5)], seed=6).generate(count=3),
            path,
        )
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 3

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="bad trace line 1"):
            load_trace(path)

    def test_replay_as_jobs(self, tmp_path):
        topo = Topology.full_mesh(6, 2, 1 * GB, 10 * MBps)
        generator = WorkloadGenerator(topo.dc_names(), seed=7)
        path = tmp_path / "trace.jsonl"
        save_trace(generator.generate(count=15), path)
        jobs = replay_as_jobs(path, topo, size_scale=1e-6)
        assert jobs
        assert all(j.is_bound() for j in jobs)

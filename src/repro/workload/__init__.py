"""Synthetic inter-DC multicast workloads matching the paper's §2 study."""

from repro.workload.distributions import (
    APP_PROFILES,
    OVERALL_MULTICAST_SHARE,
    PiecewiseLinearCDF,
    destination_fraction_cdf,
    transfer_size_cdf,
)
from repro.workload.generator import TransferRequest, WorkloadGenerator
from repro.workload.traces import load_trace, save_trace, replay_as_jobs

__all__ = [
    "APP_PROFILES",
    "OVERALL_MULTICAST_SHARE",
    "PiecewiseLinearCDF",
    "destination_fraction_cdf",
    "transfer_size_cdf",
    "TransferRequest",
    "WorkloadGenerator",
    "load_trace",
    "save_trace",
    "replay_as_jobs",
]

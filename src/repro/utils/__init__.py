"""Shared low-level helpers: unit handling, seeded randomness, validation."""

from repro.utils.units import (
    KB,
    MB,
    GB,
    TB,
    Mbps,
    MBps,
    GBps,
    Gbps,
    format_bytes,
    format_rate,
    format_duration,
    parse_size,
    parse_rate,
)
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_fraction,
    check_type,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "Mbps",
    "MBps",
    "GBps",
    "Gbps",
    "format_bytes",
    "format_rate",
    "format_duration",
    "parse_size",
    "parse_rate",
    "make_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_type",
]

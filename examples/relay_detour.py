#!/usr/bin/env python3
"""Scenario: routing around a congested WAN path with a relay datacenter.

The paper's Fig. 1 in miniature: the network-layer route from the source
region to a remote destination is thin (an expensive transcontinental
link), but two fat legs exist through an intermediate datacenter that is
*not* a destination of the replication. BDS's relay placements
store-and-forward blocks through the intermediate DC, multiplying
throughput over what the direct IP route allows.

Run:  python examples/relay_detour.py
"""

from repro import BDSConfig, BDSController, MulticastJob, SimConfig, Simulation, Topology
from repro.utils.units import MB, MBps, format_duration


def build_topology() -> Topology:
    topo = Topology()
    for name in ("us-west", "eu-central", "ap-south"):
        topo.add_dc(name)
        for j in range(3):
            topo.add_server(
                f"{name}-s{j}", name, uplink=60 * MBps, downlink=60 * MBps
            )
    # Fat legs through Europe; thin direct Pacific route.
    topo.add_bidirectional_link("us-west", "eu-central", 150 * MBps)
    topo.add_bidirectional_link("eu-central", "ap-south", 150 * MBps)
    topo.add_bidirectional_link("us-west", "ap-south", 8 * MBps)
    return topo


def run(with_relay: bool) -> float:
    topo = build_topology()
    job = MulticastJob(
        job_id="dataset",
        src_dc="us-west",
        dst_dcs=("ap-south",),
        total_bytes=480 * MB,
        block_size=4 * MB,
        relay_dcs=("eu-central",) if with_relay else (),
    )
    job.bind(topo)
    controller = BDSController(config=BDSConfig(use_relays=with_relay), seed=3)
    result = Simulation(
        topo, [job], controller, SimConfig(max_cycles=5000), seed=3
    ).run()
    return result.completion_time("dataset")


def main() -> None:
    print("replicating 480 MB us-west -> ap-south")
    print("(direct route: 8 MB/s; legs via eu-central: 150 MB/s)\n")
    direct = run(with_relay=False)
    relayed = run(with_relay=True)
    print(f"direct WAN route only : {format_duration(direct)}")
    print(f"with eu-central relay : {format_duration(relayed)}")
    print(f"speedup               : {direct / relayed:.1f}x")


if __name__ == "__main__":
    main()

"""Unit tests for the deterministic job→shard partitioner.

The assignment must be platform-stable: the same job id, shard count,
and seed map to the same shard on every run, interpreter, and machine
(no reliance on Python's per-process ``hash()`` randomization). The
golden values below pin that contract — they may only change with an
explicit format break.
"""

from __future__ import annotations

import pytest

from repro.core.sharding import (
    _hash64,
    partition_indices,
    partition_jobs,
    rebalance_moves,
    stable_shard,
)


class _FakeJob:
    def __init__(self, job_id: str) -> None:
        self.job_id = job_id


class TestStableShard:
    def test_golden_values(self):
        # Pinned platform-stable assignments (blake2b keyed by the seed).
        assert _hash64("job0", 0) == 9770455428314747166
        assert _hash64("job1", 0) == 12121382172694623555
        assert stable_shard("job0", 4) == 2
        assert stable_shard("job1", 4) == 3
        assert stable_shard("alpha", 4) == 3
        assert stable_shard("alpha", 4, seed=7) == 1
        # Non-ASCII ids hash their UTF-8 bytes.
        assert stable_shard("β-job", 4) == 1

    def test_stable_across_calls(self):
        ids = [f"job{i}" for i in range(200)]
        first = [stable_shard(j, 8, seed=3) for j in ids]
        second = [stable_shard(j, 8, seed=3) for j in ids]
        assert first == second

    def test_single_shard_short_circuit(self):
        assert stable_shard("anything", 1) == 0
        assert stable_shard("anything", 1, seed=99) == 0

    def test_range(self):
        for i in range(100):
            assert 0 <= stable_shard(f"j{i}", 5) < 5

    def test_seed_respreads(self):
        ids = [f"job{i}" for i in range(100)]
        base = [stable_shard(j, 4, seed=0) for j in ids]
        reseeded = [stable_shard(j, 4, seed=1) for j in ids]
        assert base != reseeded

    def test_roughly_balanced(self):
        ids = [f"job{i}" for i in range(1000)]
        counts = [0] * 4
        for j in ids:
            counts[stable_shard(j, 4)] += 1
        # A keyed cryptographic hash spreads uniformly; allow wide slack.
        assert min(counts) > 150

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            stable_shard("x", 0)
        with pytest.raises(ValueError):
            stable_shard("x", -2)


class TestPartition:
    def test_partition_jobs_preserves_order(self):
        jobs = [_FakeJob(f"job{i}") for i in range(50)]
        buckets = partition_jobs(jobs, 4)
        assert len(buckets) == 4
        seen = [job for bucket in buckets for job in bucket]
        assert sorted(j.job_id for j in seen) == sorted(j.job_id for j in jobs)
        for s, bucket in enumerate(buckets):
            ids = [j.job_id for j in bucket]
            # Within a bucket, original arrival order is preserved.
            positions = [int(i[3:]) for i in ids]
            assert positions == sorted(positions)
            for jid in ids:
                assert stable_shard(jid, 4) == s

    def test_partition_indices_matches_jobs(self):
        ids = [f"job{i}" for i in range(30)]
        jobs = [_FakeJob(j) for j in ids]
        mapping = partition_indices(ids, 3)
        buckets = partition_jobs(jobs, 3)
        for s in range(3):
            assert [j.job_id for j in buckets[s]] == [
                jid for jid in ids if mapping[jid] == s
            ]


class TestRebalance:
    def test_moves_only_reassigned_jobs(self):
        ids = [f"job{i}" for i in range(100)]
        moves = rebalance_moves(ids, old_shards=2, new_shards=4)
        for jid, (old, new) in moves.items():
            assert old == stable_shard(jid, 2)
            assert new == stable_shard(jid, 4)
            assert old != new
        unmoved = set(ids) - set(moves)
        for jid in unmoved:
            assert stable_shard(jid, 2) == stable_shard(jid, 4)

    def test_same_shards_no_moves(self):
        ids = [f"job{i}" for i in range(20)]
        assert rebalance_moves(ids, 3, 3) == {}

"""Controller replication and leader election."""

import pytest

from repro.core.fault import ControllerReplicaSet


class TestReplicaSet:
    def test_starts_with_leader(self):
        replicas = ControllerReplicaSet()
        assert replicas.has_leader()
        assert replicas.leader == "controller-0"
        assert replicas.up_count() == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ControllerReplicaSet(["a", "a"])

    def test_unknown_replica_rejected(self):
        with pytest.raises(KeyError):
            ControllerReplicaSet().fail("ghost")

    def test_leader_failure_triggers_election(self):
        replicas = ControllerReplicaSet()
        replicas.fail("controller-0")
        assert not replicas.has_leader()
        replicas.tick()
        assert replicas.has_leader()
        assert replicas.leader == "controller-1"

    def test_follower_failure_keeps_leader(self):
        replicas = ControllerReplicaSet()
        replicas.fail("controller-2")
        replicas.tick()
        assert replicas.leader == "controller-0"

    def test_election_takes_configured_cycles(self):
        replicas = ControllerReplicaSet(election_cycles=3)
        replicas.fail("controller-0")
        replicas.tick()
        assert not replicas.has_leader()
        replicas.tick()
        assert not replicas.has_leader()
        replicas.tick()
        assert replicas.has_leader()

    def test_fail_all_and_recover_all(self):
        replicas = ControllerReplicaSet()
        replicas.fail_all()
        replicas.tick()
        assert not replicas.has_leader()
        assert replicas.up_count() == 0
        replicas.recover_all()
        replicas.tick()
        assert replicas.has_leader()

    def test_cascading_failures(self):
        replicas = ControllerReplicaSet()
        replicas.fail("controller-0")
        replicas.tick()
        replicas.fail("controller-1")
        replicas.tick()
        assert replicas.leader == "controller-2"
        replicas.fail("controller-2")
        replicas.tick()
        assert not replicas.has_leader()

    def test_recovered_replica_rejoins_as_follower(self):
        replicas = ControllerReplicaSet()
        replicas.fail("controller-0")
        replicas.tick()
        replicas.recover("controller-0")
        replicas.tick()
        # controller-1 keeps the lead; no disruptive re-election.
        assert replicas.leader == "controller-1"

    def test_leader_detected_down_on_tick(self):
        replicas = ControllerReplicaSet()
        # Kill the leader via the replica state without the fail() helper's
        # immediate leadership clearing: tick must still notice.
        replicas.replicas["controller-0"].up = False
        replicas.tick()  # notices, starts election
        replicas.tick()
        assert replicas.leader == "controller-1"

    def test_invalid_election_cycles(self):
        with pytest.raises(ValueError):
            ControllerReplicaSet(election_cycles=0)

"""Event-engine A/B — decision reuse + fast-forward vs the fixed-tick loop.

Three horizon scales, all with bit-identity asserted between arms via
:meth:`SimResult.fingerprint`:

* **steady-short** — a single steady drain over ~2 simulated hours; the
  warm-up scale where per-run overheads still matter.
* **steady-day** — the same drain stretched to a 24 h horizon (28,800
  cycles at ΔT = 3 s). Long constant-rate stretches are the event
  engine's home turf; this is the headline ≥50× wall-clock claim.
* **diurnal-24h** — a full day of diurnally-modulated Poisson arrivals
  with a flash crowd, over stepped diurnal background traffic. Quiet
  valleys fast-forward, busy peaks execute; the scenario a fixed-tick
  loop cannot finish interactively.

Run as a script to emit ``BENCH_event.json``::

    PYTHONPATH=src python benchmarks/bench_event_engine.py [--quick]

or through pytest like the other benchmarks (quick scale).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.analysis.runner import make_strategy
from repro.net.background import BackgroundTraffic
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps
from repro.workload.generator import WorkloadGenerator, to_jobs

RESULT_FORMAT_VERSION = 1
SEED = 18
DT = 3.0
DAY_CYCLES = 28_800  # 24 h at the paper's 3 s update interval

#: Acceptance floor for the steady day-scale run (full mode only).
STEADY_DAY_SPEEDUP_FLOOR = 50.0


def _steady_scenario(max_cycles: int, event_engine: bool) -> Simulation:
    """One long constant-rate drain sized to occupy ~90% of the horizon."""
    topo = Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=2 * MBps, uplink=1 * MBps
    )
    # Effective delivered throughput of this mesh is ~2 MB/s across both
    # destinations; size the job to keep flows draining most of the run.
    total = 0.9 * max_cycles * DT * 1 * MBps
    job = MulticastJob(
        job_id="steady",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=total,
        block_size=min(1 * GB, max(16 * MB, total / 80)),
    )
    job.bind(topo)
    return Simulation(
        topology=topo,
        jobs=[job],
        strategy=make_strategy("direct", seed=SEED),
        config=SimConfig(
            max_cycles=max_cycles, cycle_seconds=DT, event_engine=event_engine
        ),
        seed=SEED,
    )


def _diurnal_scenario(max_cycles: int, event_engine: bool) -> Simulation:
    """A day of diurnal arrivals + flash crowd over stepped background."""
    horizon_s = max_cycles * DT
    dc_names = [f"dc{i}" for i in range(5)]
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=2, wan_capacity=50 * MBps, uplink=25 * MBps
    )
    generator = WorkloadGenerator(
        dc_names, seed=SEED, mean_interarrival_s=horizon_s / 30.0
    )
    requests = generator.generate_diurnal(
        duration_s=0.9 * horizon_s,
        diurnal_amplitude=0.6,
        flash_crowd_at=0.55,
        flash_crowd_size=8,
    )
    jobs = to_jobs(
        requests,
        topo,
        block_size=16 * MB,
        size_scale=1e-4,
        relative_arrivals=False,
    )
    # The trace size CDF has a heavy tail; clamp so a single tail job
    # cannot dominate the whole day (the benchmark measures the engine,
    # not one 10 GB transfer).
    clamped = []
    for job in jobs:
        if job.total_bytes > 512 * MB:
            job = MulticastJob(
                job_id=job.job_id,
                src_dc=job.src_dc,
                dst_dcs=job.dst_dcs,
                total_bytes=512 * MB,
                block_size=job.block_size,
                arrival_time=job.arrival_time,
            )
            job.bind(topo)
        clamped.append(job)
    jobs = clamped
    background = BackgroundTraffic(
        base_fraction=0.25,
        diurnal_fraction=0.2,
        noise_fraction=0.03,
        seed=SEED,
        step_seconds=1800.0,  # 30 min steps: 600-cycle constant stretches
    )
    return Simulation(
        topology=topo,
        jobs=jobs,
        strategy=make_strategy("bds", seed=SEED),
        config=SimConfig(
            max_cycles=max_cycles, cycle_seconds=DT, event_engine=event_engine
        ),
        background=background,
        seed=SEED,
    )


def _measure(name: str, factory, max_cycles: int) -> dict:
    """Run one scale point with both engines and compare fingerprints."""
    t0 = time.perf_counter()
    event = factory(max_cycles, True).run()
    event_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    tick = factory(max_cycles, False).run()
    tick_s = time.perf_counter() - t0
    return {
        "scale": name,
        "horizon_cycles": max_cycles,
        "horizon_hours": max_cycles * DT / 3600.0,
        "cycles_run": event.cycles_run,
        "all_complete": event.all_complete,
        "cycles_decision_reused": event.cycles_decision_reused,
        "cycles_fast_forwarded": event.cycles_fast_forwarded,
        "event_wall_s": event_s,
        "tick_wall_s": tick_s,
        "speedup": tick_s / event_s if event_s > 0 else float("inf"),
        "identical_results": event.fingerprint() == tick.fingerprint(),
    }


def run_benchmark(quick: bool) -> dict:
    if quick:
        points = [
            ("steady-short", _steady_scenario, 600),
            ("steady-day", _steady_scenario, 2_880),
            ("diurnal-24h", _diurnal_scenario, 2_880),
        ]
    else:
        points = [
            ("steady-short", _steady_scenario, 2_400),
            ("steady-day", _steady_scenario, DAY_CYCLES),
            ("diurnal-24h", _diurnal_scenario, DAY_CYCLES),
        ]
    scales = [_measure(*p) for p in points]
    by_name = {s["scale"]: s for s in scales}
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "dt_seconds": DT,
        "scales": scales,
        "steady_day_speedup": by_name["steady-day"]["speedup"],
        "diurnal_24h_event_wall_s": by_name["diurnal-24h"]["event_wall_s"],
        "identical_results": all(s["identical_results"] for s in scales),
    }


def format_report(payload: dict) -> str:
    rows = [
        [
            s["scale"],
            f"{s['horizon_cycles']}",
            f"{s['horizon_hours']:.1f}h",
            f"{s['cycles_decision_reused']}",
            f"{s['cycles_fast_forwarded']}",
            f"{s['event_wall_s']:.3f}",
            f"{s['tick_wall_s']:.3f}",
            f"{s['speedup']:.1f}x",
            str(s["identical_results"]),
        ]
        for s in payload["scales"]
    ]
    return (
        f"[event engine] steady day-scale speedup: "
        f"{payload['steady_day_speedup']:.1f}x, 24h diurnal in "
        f"{payload['diurnal_24h_event_wall_s']:.2f}s\n"
        + format_table(
            [
                "scale",
                "cycles",
                "horizon",
                "reused",
                "ffwd",
                "event (s)",
                "tick (s)",
                "speedup",
                "identical",
            ],
            rows,
        )
        + f"\nidentical results: {payload['identical_results']}"
    )


def test_event_engine(benchmark, report):
    """Pytest entry: quick-scale A/B; results must be bit-identical."""
    payload = benchmark.pedantic(
        lambda: run_benchmark(quick=True), rounds=1, iterations=1
    )
    report("\n" + format_report(payload))
    assert payload["identical_results"]
    for s in payload["scales"]:
        assert s["cycles_fast_forwarded"] > 0
    # The >=50x steady day-scale floor is asserted at full scale by the
    # script / recorded in BENCH_event.json; quick scale only checks the
    # A/B bit-identity and that fast-forward engages everywhere.


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small horizons for CI smoke runs (no speedup floor asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_event.json",
        help="where to write the JSON result (default: ./BENCH_event.json)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(quick=args.quick)
    print(format_report(payload))
    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"results written to {args.output}")

    if not payload["identical_results"]:
        print("FAIL: engines disagree on at least one scale", file=sys.stderr)
        return 1
    if not args.quick:
        if payload["steady_day_speedup"] < STEADY_DAY_SPEEDUP_FLOOR:
            print(
                f"FAIL: steady day-scale speedup "
                f"{payload['steady_day_speedup']:.1f}x below "
                f"{STEADY_DAY_SPEEDUP_FLOOR:.0f}x floor",
                file=sys.stderr,
            )
            return 1
        diurnal = next(
            s for s in payload["scales"] if s["scale"] == "diurnal-24h"
        )
        if not diurnal["all_complete"]:
            print("FAIL: 24h diurnal scenario did not complete", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

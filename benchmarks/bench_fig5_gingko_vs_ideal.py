"""Fig. 5 — Gingko's per-server completion CDF vs the ideal solution.

Paper: with a 30 GB file striped over 640 servers per DC, servers took on
average 4.75x the ideal completion time, and 5 % waited over 6x. The
reproduction scales servers and file size down (see EXPERIMENTS.md) and
shows the same multi-x gap with a long straggler tail.
"""

import statistics

from repro.analysis.experiments import exp_fig5_gingko_vs_ideal
from repro.analysis.plots import ascii_cdf
from repro.analysis.reporting import format_cdf_rows


def test_fig5_gingko_vs_ideal_cdf(benchmark, report):
    result = benchmark.pedantic(
        lambda: exp_fig5_gingko_vs_ideal(seed=7), rounds=1, iterations=1
    )
    report(
        "\n[Fig. 5] Per-server completion time (seconds)\n"
        + "-- Gingko (current solution) --\n"
        + format_cdf_rows(result.gingko_times, unit="s")
        + "\n-- Ideal solution --\n"
        + format_cdf_rows(result.ideal_times, unit="s")
        + f"\n  median gingko/ideal ratio: {result.median_ratio:.2f}x (paper 4.75x)\n"
        + ascii_cdf(
            {"current (gingko)": result.gingko_times, "ideal": result.ideal_times},
            x_label="completion (s)",
        )
    )
    assert result.median_ratio > 2.0
    # Straggler tail: the slowest servers wait far beyond the median.
    tail = sorted(result.gingko_times)[int(0.95 * len(result.gingko_times))]
    assert tail > 1.5 * statistics.median(result.gingko_times)

"""Configuration for the BDS controller.

Defaults follow §5.4: 2 MB blocks, 3-second update cycles, 80 % safety
threshold (20 % of every link reserved for latency-sensitive traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.overlay.blocks import DEFAULT_BLOCK_SIZE
from repro.utils.validation import check_fraction, check_positive

ROUTING_BACKENDS = ("fptas", "lp", "greedy")
SHARD_MODES = ("inprocess", "process")
SHARD_PARTITIONS = ("hash", "affinity")
#: Sentinel value of ``shard_stride`` selecting the adaptive controller.
SHARD_STRIDE_AUTO = "auto"


@dataclass
class BDSConfig:
    """Tunable parameters of the centralized control loop.

    ``cycle_seconds`` is the §5.2 ΔT the whole decide→deliver loop must
    fit inside for centralized control to be feasible; the data-plane
    benchmarks (``benchmarks/bench_flow_kernel.py``) measure full cycles
    against exactly this budget. The per-directive rates the controller
    assigns are enforced downstream by the shared rate kernel
    (:func:`repro.net.flow.clip_rates_to_capacity`), which proportionally
    scales any resource the (possibly stale, §5.1) allocation
    oversubscribed — the controller itself never needs to re-check
    physics.

    Under the event-driven simulator core (``SimConfig.event_engine``,
    see :mod:`repro.net.simulator`) the loop is not re-run every ΔT:
    §5.2's observation that decisions stay valid until state changes is
    made operational through a validity key plus the router's
    :attr:`~repro.core.routing.RoutingDiagnostics.reuse_horizon`
    certificate, and jobs may request a coarser per-job cadence via
    :attr:`repro.overlay.job.MulticastJob.cycle_seconds` (a multiple of
    this ΔT).
    """

    block_size: float = DEFAULT_BLOCK_SIZE
    cycle_seconds: float = 3.0
    safety_threshold: float = 0.8
    routing_backend: str = "greedy"
    epsilon: float = 0.1
    max_blocks_per_cycle: int = 0  # 0 = unlimited
    max_sources_per_group: int = 3
    merge_blocks: bool = True
    # §5.1 non-blocking update: feed the algorithm a delivery state that
    # speculates the completion of in-flight transfers over this horizon
    # (seconds). 0 disables speculation.
    speculation_horizon: float = 0.0
    # Schedule placements onto jobs' relay DCs (Type I path diversity
    # through non-destination DCs).
    use_relays: bool = True
    # Sharded control plane (ROADMAP "sharded multi-controller
    # scale-out"): partition the job set across this many controller
    # shards by a platform-stable seeded hash of job id
    # (repro.core.sharding). Each shard runs the full vectorized
    # schedule+route pipeline on its own partition with its own
    # CycleCache and FPTAS warm store; the shared link budgets are
    # reconciled by one outer max-min waterfill over all shards'
    # directives (repro.net.flow.max_min_fair_rates, the data plane's
    # own allocator). 1 keeps the single-controller path, bit-identical
    # to before the shards knob existed.
    shards: int = 1
    # Seed of the job→shard hash (re-spreads a colliding workload
    # without renaming jobs).
    shard_seed: int = 0
    # Shard decide cadence: shard s re-runs schedule+route only on
    # cycles with cycle % stride == s % stride and replays its cached
    # directives (demands refreshed by the simulator) in between. 1 =
    # every shard decides every cycle (no staleness). Strides > 1 cap
    # the per-cycle controller wall at roughly ceil(shards/stride)
    # shards' worth of work — the knob that fits 10⁷ pairs inside ΔT on
    # one core — at the cost of newly pending work waiting up to
    # stride-1 cycles for its shard's turn. The string "auto" hands the
    # knob to the controller's adaptive stride: it starts at 1 and
    # widens only when the EWMA of the measured per-shard wall
    # (time_shard_max) projects the per-cycle controller wall past
    # shard_stride_target × cycle_seconds, narrowing back (with
    # hysteresis) when slack returns.
    shard_stride: Union[int, str] = 1
    # Fraction of cycle_seconds the adaptive stride keeps the projected
    # per-cycle controller wall under (only read when
    # shard_stride == "auto").
    shard_stride_target: float = 0.5
    # Shard execution: "inprocess" loops over shards in index order;
    # "process" fans decides over one persistent single-worker process
    # per shard (pickle-pure payloads, deterministic shard-order
    # gather). Results are identical either way.
    shard_mode: str = "inprocess"
    # Job→shard partitioning policy: "hash" is the platform-stable
    # seeded hash of job id (PR 7 behaviour, the default); "affinity"
    # co-locates jobs sharing a source DC onto the same shard (greedy,
    # balanced by pair-count weight, hash tie-breaks — see
    # repro.core.sharding.AffinityAssigner) so shards contend less on
    # the same WAN links and the outer reconciliation clips fewer
    # directives.
    shard_partition: str = "hash"
    # Shard-local state ownership (the default): each shard decides
    # against a partition-scoped mirror — its own PossessionIndex
    # (shard-local block interning), CandidateTable, and CycleCache fed
    # by delivery-log watermark replay — so per-shard memory and
    # cold-build work are O(pairs/shards). False restores the PR 7
    # shared-store sub-views (results are identical either way; the
    # equivalence tests assert it).
    shard_local_state: bool = True

    def __post_init__(self) -> None:
        if self.speculation_horizon < 0:
            raise ValueError("speculation_horizon must be >= 0")
        check_positive("block_size", self.block_size)
        check_positive("cycle_seconds", self.cycle_seconds)
        check_fraction("safety_threshold", self.safety_threshold)
        check_positive("epsilon", self.epsilon)
        check_positive("max_sources_per_group", self.max_sources_per_group)
        if self.max_blocks_per_cycle < 0:
            raise ValueError("max_blocks_per_cycle must be >= 0 (0 = unlimited)")
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ValueError(
                f"routing_backend must be one of {ROUTING_BACKENDS}, "
                f"got {self.routing_backend!r}"
            )
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if isinstance(self.shard_stride, str):
            if self.shard_stride != SHARD_STRIDE_AUTO:
                raise ValueError(
                    f"shard_stride must be an int >= 1 or "
                    f"{SHARD_STRIDE_AUTO!r}, got {self.shard_stride!r}"
                )
        elif self.shard_stride < 1:
            raise ValueError("shard_stride must be >= 1")
        check_positive("shard_stride_target", self.shard_stride_target)
        check_fraction("shard_stride_target", self.shard_stride_target)
        if self.shard_mode not in SHARD_MODES:
            raise ValueError(
                f"shard_mode must be one of {SHARD_MODES}, "
                f"got {self.shard_mode!r}"
            )
        if self.shard_partition not in SHARD_PARTITIONS:
            raise ValueError(
                f"shard_partition must be one of {SHARD_PARTITIONS}, "
                f"got {self.shard_partition!r}"
            )

"""The BDS controller: fully centralized overlay control (§3, §5.1, Fig. 8).

Each cycle the controller (1) reads the global data-delivery view, (2) runs
the scheduling step, (3) runs the routing step, and (4) emits rate-capped
transfer directives for the agents. When the controller is unreachable
(all replicas down or the DC partitioned away), agents *fall back to the
decentralized overlay protocol* — Gingko — ensuring graceful degradation
(§5.3); performance recovers the cycle the controller returns (Fig. 12a).
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.base import OverlayStrategy
from repro.baselines.gingko import GingkoStrategy
from repro.core.config import BDSConfig
from repro.core.decisions import ControlDecision
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.core.speculation import DeliverySpeculator, SpeculatedView
from repro.net.simulator import ClusterView, TransferDirective
from repro.utils.rng import SeedLike


class BDSController(OverlayStrategy):
    """Centralized scheduler + router with decentralized fallback."""

    uses_controller_rates = True
    respects_safety_threshold = True
    # The controller is a deterministic function of the view while the
    # event engine's validity key holds; the per-decision reuse_horizon
    # below narrows that claim where demands drain (§5.2 decision reuse).
    decisions_reusable = True

    def __init__(
        self,
        config: Optional[BDSConfig] = None,
        fallback: Optional[OverlayStrategy] = None,
        seed: SeedLike = None,
        controller_dc: Optional[str] = None,
    ) -> None:
        """``controller_dc`` locates the controller for §5.3 partition
        handling: when WAN link failures cut DCs off from it, those DCs'
        transfers run on the decentralized fallback while the rest stay
        centrally controlled. ``None`` (default) treats the controller as
        reachable from everywhere."""
        self.config = config or BDSConfig()
        self.controller_dc = controller_dc
        self.scheduler = RarestFirstScheduler(
            max_blocks_per_cycle=self.config.max_blocks_per_cycle,
            use_relays=self.config.use_relays,
        )
        self.router = BDSRouter(
            backend=self.config.routing_backend,
            epsilon=self.config.epsilon,
            max_sources_per_group=self.config.max_sources_per_group,
            merge_blocks=self.config.merge_blocks,
        )
        self.fallback = fallback or GingkoStrategy(seed=seed)
        self.decisions: List[ControlDecision] = []
        self._fallback_active = False
        self._speculator = (
            DeliverySpeculator(self.config.speculation_horizon)
            if self.config.speculation_horizon > 0
            else None
        )
        self._previous_directives: List[TransferDirective] = []

    @property
    def fallback_active(self) -> bool:
        """Whether the last cycle ran on the decentralized fallback."""
        return self._fallback_active

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        """One control cycle: schedule, route, emit directives.

        When ``view.controller_available`` is false the decentralized
        fallback decides instead; its flows are *not* rate-capped by the
        simulator because ``uses_controller_rates`` only applies while the
        controller is reachable (the simulator checks both).
        """
        if not view.controller_available:
            self._fallback_active = True
            return self.fallback.decide(view)
        self._fallback_active = False

        # §5.3 partition handling: DCs severed from the controller's DC run
        # on the fallback; the controller only commands its own partition.
        fallback_directives: List[TransferDirective] = []
        if self.controller_dc is not None and view.failed_links:
            reachable = view.topology.reachable_dcs(
                self.controller_dc, view.failed_links
            )
            severed_servers = {
                server.server_id
                for server in view.topology.servers.values()
                if server.dc not in reachable
            }
            if severed_servers:
                fallback_directives = [
                    d
                    for d in self.fallback.decide(view)
                    if view.store.dc_of(d.dst_server) not in reachable
                ]
                view = view.with_extra_failed_agents(severed_servers)

        if self._speculator is not None and self._previous_directives:
            block_sizes = {
                block.block_id: block.size
                for job in view.jobs
                for block in job.blocks
            }
            speculated = self._speculator.speculate(
                view, self._previous_directives, block_sizes
            )
            if speculated:
                view = SpeculatedView(view, speculated)

        selections = self.scheduler.select(view)
        directives, diagnostics = self.router.route(
            view,
            selections,
            batch=getattr(self.scheduler, "last_batch", None),
        )
        # A partition-fallback slice runs the RNG-bearing decentralized
        # protocol and a speculation overlay perturbs next cycle's view
        # from this cycle's directives — neither output is a pure function
        # of the validity key, so both veto reuse outright.
        reuse_horizon = (
            0
            if (fallback_directives or self._speculator is not None)
            else diagnostics.reuse_horizon
        )
        self.decisions.append(
            ControlDecision(
                cycle=view.cycle,
                directives=directives,
                scheduled_blocks=len(selections),
                num_commodities=diagnostics.num_commodities,
                schedule_runtime=getattr(self.scheduler, "last_runtime", 0.0),
                routing_runtime=diagnostics.runtime,
                objective=diagnostics.objective,
                routing_iterations=diagnostics.iterations,
                routing_phases=diagnostics.phases,
                routing_warm_start=diagnostics.warm_start,
                reuse_horizon=reuse_horizon,
            )
        )
        self._previous_directives = directives
        return directives + fallback_directives

    def last_decision(self) -> Optional[ControlDecision]:
        return self.decisions[-1] if self.decisions else None

    def mean_runtime(self) -> float:
        """Mean controller running time across cycles (Fig. 11a metric)."""
        if not self.decisions:
            return 0.0
        return sum(d.total_runtime for d in self.decisions) / len(self.decisions)

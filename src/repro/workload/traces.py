"""Trace persistence and replay.

Traces are stored as JSON lines — one :class:`TransferRequest` per line —
so that experiments can replay the exact chronological request order, as
the paper's trace-driven simulations do ("replay inter-DC multicast data
requests in the same chronological order as in the pilot deployment").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.net.topology import Topology
from repro.overlay.blocks import DEFAULT_BLOCK_SIZE
from repro.overlay.job import MulticastJob
from repro.workload.generator import TransferRequest, to_jobs

PathLike = Union[str, Path]


def save_trace(requests: Sequence[TransferRequest], path: PathLike) -> None:
    """Write requests as JSON lines (sorted by arrival time)."""
    ordered = sorted(requests, key=lambda r: r.arrival_time)
    with open(path, "w", encoding="utf-8") as handle:
        for request in ordered:
            handle.write(
                json.dumps(
                    {
                        "request_id": request.request_id,
                        "app": request.app,
                        "src_dc": request.src_dc,
                        "dst_dcs": list(request.dst_dcs),
                        "size_bytes": request.size_bytes,
                        "arrival_time": request.arrival_time,
                        "is_multicast": request.is_multicast,
                    }
                )
                + "\n"
            )


def load_trace(path: PathLike) -> List[TransferRequest]:
    """Read a JSON-lines trace back into requests (chronological order)."""
    requests: List[TransferRequest] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"bad trace line {line_no}: {exc}") from exc
            requests.append(
                TransferRequest(
                    request_id=raw["request_id"],
                    app=raw["app"],
                    src_dc=raw["src_dc"],
                    dst_dcs=tuple(raw["dst_dcs"]),
                    size_bytes=float(raw["size_bytes"]),
                    arrival_time=float(raw["arrival_time"]),
                    is_multicast=bool(raw["is_multicast"]),
                )
            )
    requests.sort(key=lambda r: r.arrival_time)
    return requests


def replay_as_jobs(
    path: PathLike,
    topology: Topology,
    block_size: float = DEFAULT_BLOCK_SIZE,
    size_scale: float = 1.0,
) -> List[MulticastJob]:
    """Load a trace and convert its multicasts into bound simulator jobs."""
    return to_jobs(
        load_trace(path), topology, block_size=block_size, size_scale=size_scale
    )

"""Failure schedules and their cycle-driven application."""

import pytest

from repro.net.failures import FailureEvent, FailureSchedule


class TestFailureEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown failure kind"):
            FailureEvent(cycle=0, kind="explode")

    def test_negative_cycle_rejected(self):
        with pytest.raises(ValueError):
            FailureEvent(cycle=-1, kind="controller_fail")

    def test_agent_event_needs_target(self):
        with pytest.raises(ValueError, match="requires a target"):
            FailureEvent(cycle=0, kind="agent_fail")

    def test_controller_event_needs_no_target(self):
        FailureEvent(cycle=0, kind="controller_fail")  # does not raise


class TestFailureSchedule:
    def test_events_apply_in_order(self):
        schedule = FailureSchedule(
            [
                FailureEvent(cycle=2, kind="agent_fail", target="s1"),
                FailureEvent(cycle=5, kind="agent_recover", target="s1"),
            ]
        )
        schedule.advance_to(1)
        assert schedule.agent_is_up("s1")
        schedule.advance_to(2)
        assert not schedule.agent_is_up("s1")
        schedule.advance_to(5)
        assert schedule.agent_is_up("s1")

    def test_advance_is_idempotent(self):
        schedule = FailureSchedule(
            [FailureEvent(cycle=1, kind="agent_fail", target="s1")]
        )
        applied_first = schedule.advance_to(3)
        applied_again = schedule.advance_to(3)
        assert len(applied_first) == 1
        assert applied_again == []

    def test_controller_toggle(self):
        schedule = FailureSchedule(
            [
                FailureEvent(cycle=1, kind="controller_fail"),
                FailureEvent(cycle=3, kind="controller_recover"),
            ]
        )
        schedule.advance_to(1)
        assert schedule.controller_down
        schedule.advance_to(3)
        assert not schedule.controller_down

    def test_link_failure(self):
        schedule = FailureSchedule(
            [FailureEvent(cycle=0, kind="link_fail", target=("a", "b"))]
        )
        schedule.advance_to(0)
        assert not schedule.link_is_up("a", "b")
        assert schedule.link_is_up("b", "a")  # directed

    def test_add_rejects_past_cycles(self):
        schedule = FailureSchedule()
        schedule.advance_to(5)
        with pytest.raises(ValueError, match="already applied"):
            schedule.add(FailureEvent(cycle=3, kind="controller_fail"))

    def test_add_future_event_ok(self):
        schedule = FailureSchedule()
        schedule.advance_to(5)
        schedule.add(FailureEvent(cycle=10, kind="controller_fail"))
        schedule.advance_to(10)
        assert schedule.controller_down

    def test_paper_fig12a_shape(self):
        schedule = FailureSchedule.paper_fig12a(agent="s0")
        schedule.advance_to(10)
        assert not schedule.agent_is_up("s0")
        schedule.advance_to(15)
        assert schedule.agent_is_up("s0")  # recovers next cycle
        assert not schedule.controller_down
        schedule.advance_to(20)
        assert schedule.controller_down
        schedule.advance_to(30)
        assert not schedule.controller_down

"""Multicast jobs: validation, striping, placement."""

import pytest

from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


@pytest.fixture
def topo() -> Topology:
    return Topology.full_mesh(
        num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
    )


def make_job(**overrides) -> MulticastJob:
    params = dict(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=10 * MB,
        block_size=2 * MB,
    )
    params.update(overrides)
    return MulticastJob(**params)


class TestValidation:
    def test_needs_destination(self):
        with pytest.raises(ValueError):
            make_job(dst_dcs=())

    def test_source_cannot_be_destination(self):
        with pytest.raises(ValueError):
            make_job(dst_dcs=("dc0",))

    def test_relay_cannot_overlap_endpoints(self):
        with pytest.raises(ValueError, match="relay"):
            make_job(relay_dcs=("dc1",))

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            make_job(total_bytes=0)

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            make_job(arrival_time=-1)

    def test_blocks_created(self):
        job = make_job()
        assert job.num_blocks == 5


class TestStriping:
    def test_bind_required_before_assignment(self):
        job = make_job()
        with pytest.raises(RuntimeError, match="not bound"):
            job.assigned_server("dc1", ("j", 0))

    def test_round_robin_striping(self, topo):
        job = make_job()
        job.bind(topo)
        assert job.assigned_server("dc1", ("j", 0)) == "dc1-s0"
        assert job.assigned_server("dc1", ("j", 1)) == "dc1-s1"
        assert job.assigned_server("dc1", ("j", 2)) == "dc1-s0"

    def test_initial_placement_covers_all_blocks(self, topo):
        job = make_job()
        job.bind(topo)
        placement = job.initial_placement()
        placed = [b for blocks in placement.values() for b in blocks]
        assert sorted(placed) == sorted(job.blocks)
        assert set(placement) <= {"dc0-s0", "dc0-s1"}

    def test_destination_servers_partition_blocks(self, topo):
        job = make_job()
        job.bind(topo)
        shard = job.destination_servers("dc1")
        counts = {s: len(bs) for s, bs in shard.items()}
        assert sum(counts.values()) == job.num_blocks
        # 5 blocks over 2 servers: 3 + 2.
        assert sorted(counts.values()) == [2, 3]

    def test_relay_dc_striped_too(self, topo):
        job = make_job(dst_dcs=("dc1",), relay_dcs=("dc2",))
        job.bind(topo)
        assert job.assigned_server("dc2", ("j", 0)) == "dc2-s0"

    def test_bind_rejects_empty_dc(self):
        topo = Topology()
        topo.add_dc("dc0")
        topo.add_dc("dc1")
        topo.add_server("dc0-s0", "dc0", 1, 1)
        topo.add_bidirectional_link("dc0", "dc1", 1)
        job = make_job(dst_dcs=("dc1",))
        with pytest.raises(ValueError, match="no servers"):
            job.bind(topo)

    def test_block_by_id(self, topo):
        job = make_job()
        assert job.block_by_id(("j", 2)).index == 2
        with pytest.raises(KeyError):
            job.block_by_id(("other", 0))
        with pytest.raises(KeyError):
            job.block_by_id(("j", 99))

"""The appendix theorem: balanced replica distributions finish faster."""

import pytest

from repro.analysis.appendix import (
    balanced_completion_time,
    completion_time_derivative_sign,
    imbalanced_completion_time,
    theorem_holds,
)


class TestClosedForms:
    def test_balanced_formula(self):
        # V = N(m-k)rho; rate = kR/(m-k); t = (m-k)^2 N rho / (k R).
        t = balanced_completion_time(num_blocks=10, m=5, k=2, rho=1.0, rate=1.0)
        assert t == pytest.approx((5 - 2) ** 2 * 10 / 2)

    def test_link_capacity_can_dominate(self):
        slow_link = balanced_completion_time(
            10, 5, 2, 1.0, 1.0, link_capacity=0.1
        )
        free_link = balanced_completion_time(10, 5, 2, 1.0, 1.0)
        assert slow_link > free_link

    def test_imbalanced_dominated_by_rare_half(self):
        t = imbalanced_completion_time(10, m=5, k1=1, k2=3, rho=1.0, rate=1.0)
        # Serving rate of the rare half: k1*R/(m-k1) = 1/4.
        volume = 5 * 4 * 1.0 + 5 * 2 * 1.0
        assert t == pytest.approx(volume / (1 / 4))

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_completion_time(10, 5, 5, 1.0, 1.0)  # k >= m
        with pytest.raises(ValueError):
            imbalanced_completion_time(10, 5, 3, 2, 1.0, 1.0)  # k1 >= k2
        with pytest.raises(ValueError):
            imbalanced_completion_time(10, 5, 1, 5, 1.0, 1.0)  # k2 >= m


class TestTheorem:
    @pytest.mark.parametrize(
        "m,k1,k2",
        [(5, 1, 3), (10, 2, 4), (10, 1, 7), (20, 3, 9), (8, 2, 6)],
    )
    def test_balanced_always_faster(self, m, k1, k2):
        assert theorem_holds(num_blocks=100, m=m, k1=k1, k2=k2, rho=2.0, rate=1.5)

    def test_requires_integral_k(self):
        with pytest.raises(ValueError):
            theorem_holds(10, 5, 1, 2, 1.0, 1.0)

    def test_derivative_always_negative(self):
        for m in (3, 5, 10, 50):
            for k in range(1, m):
                assert completion_time_derivative_sign(m, k) < 0

    def test_derivative_validation(self):
        with pytest.raises(ValueError):
            completion_time_derivative_sign(5, 5)

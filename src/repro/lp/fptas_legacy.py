"""Reference Garg–Könemann FPTAS (the pre-Fleischer scalar loop).

This is the original implementation of :func:`max_multicommodity_flow`,
kept verbatim as the correctness yardstick and benchmark baseline for the
vectorized Fleischer rewrite in :mod:`repro.lp.fptas`. Its oracle rescans
every commodity×path per iteration in pure Python, which is exactly the
cost the rewrite amortizes away — ``benchmarks/bench_routing_solver.py``
measures the two against each other, and the parity tests assert their
objectives agree within the ε-approximation tolerance.

Two bug fixes are applied relative to the historical version (both also
covered by tests against the rewrite):

* duplicate candidate paths no longer alias onto the first occurrence's
  index — the stripped-path→index mapping is positional, not value-based
  (``list.index`` returned the first match for every duplicate, silently
  merging their flows);
* the dead ``worst = 1.0`` store in the re-clip pass is gone.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.lp.fptas import FPTASResult
from repro.lp.mcf import Commodity
from repro.net.topology import ResourceKey
from repro.utils.validation import check_positive


def legacy_max_multicommodity_flow(
    commodities: Sequence[Commodity],
    capacities: Mapping[ResourceKey, float],
    epsilon: float = 0.1,
    max_iterations: Optional[int] = None,
) -> FPTASResult:
    """ε-approximate max total multicommodity flow, scalar-loop variant.

    Runs Garg–Könemann with a global lightest-path argmin per iteration:
    every resource carries a length that grows exponentially with its
    congestion; each iteration routes along the currently *lightest* path
    and inflates the lengths of the resources it used. After termination
    the accumulated flow is scaled by ``log_{1+ε}(1/δ)`` to restore
    feasibility, then numerically re-clipped.
    """
    check_positive("epsilon", epsilon)
    if epsilon >= 1:
        raise ValueError("epsilon must be < 1")
    if not commodities:
        raise ValueError("need at least one commodity")

    # Build the working capacity map with virtual demand resources.
    caps: Dict[ResourceKey, float] = dict(capacities)
    # Normalize so the smallest positive capacity is 1: Garg-Konemann's
    # initial length delta/c(e) must stay below 1 on every usable edge, and
    # raw byte units mix 1e-6-byte demand remainders with 1e9-byte/s links.
    positive = [c for c in caps.values() if c > 0]
    demands_positive = [
        c.demand for c in commodities if c.demand is not None and c.demand > 0
    ]
    cap_scale = min(positive + demands_positive) if (positive or demands_positive) else 1.0
    if cap_scale <= 0:
        cap_scale = 1.0
    caps = {k: v / cap_scale for k, v in caps.items()}
    commodities = [
        Commodity(
            name=c.name,
            paths=c.paths,
            demand=None if c.demand is None else c.demand / cap_scale,
        )
        for c in commodities
    ]
    paths: List[List[Tuple[ResourceKey, ...]]] = []
    for ci, commodity in enumerate(commodities):
        extended: List[Tuple[ResourceKey, ...]] = []
        if commodity.demand is not None:
            virtual: ResourceKey = ("demand", str(ci))
            caps[virtual] = commodity.demand
            for path in commodity.paths:
                extended.append(tuple(path) + (virtual,))
        else:
            extended = [tuple(p) for p in commodity.paths]
        paths.append(extended)

    # Commodities with zero demand or a zero-capacity resource on all paths
    # can never carry flow; drop their paths to avoid division by zero.
    # Unlike the historical version the original index of each kept path is
    # recorded positionally, so duplicate candidate paths stay distinct.
    usable: List[List[Tuple[ResourceKey, ...]]] = []
    usable_orig: List[List[int]] = []
    for plist in paths:
        good: List[Tuple[ResourceKey, ...]] = []
        good_orig: List[int] = []
        for pi, p in enumerate(plist):
            if all(caps[r] > 0 for r in p):
                good.append(p)
                good_orig.append(pi)
        usable.append(good)
        usable_orig.append(good_orig)
    if not any(usable):
        return FPTASResult(
            objective=0.0, path_flows={}, iterations=0, epsilon=epsilon
        )

    num_resources = len({r for plist in usable for p in plist for r in p})
    delta = (1 + epsilon) * ((1 + epsilon) * num_resources) ** (-1.0 / epsilon)
    length: Dict[ResourceKey, float] = {
        res: delta / caps[res]
        for plist in usable
        for p in plist
        for res in p
    }

    raw_flow: Dict[Tuple[int, int], float] = {}
    iterations = 0
    limit = max_iterations or int(
        10 * num_resources * math.log(num_resources + 2) / (epsilon**2) + 1000
    )

    while iterations < limit:
        # Oracle: lightest path across all commodities.
        best: Optional[Tuple[int, int]] = None
        best_len = math.inf
        for ci, plist in enumerate(usable):
            for pi, path in enumerate(plist):
                plen = sum(length[r] for r in path)
                if plen < best_len:
                    best_len = plen
                    best = (ci, pi)
        if best is None or best_len >= 1.0:
            break
        ci, pi = best
        path = usable[ci][pi]
        bottleneck = min(caps[r] for r in path)
        raw_flow[(ci, pi)] = raw_flow.get((ci, pi), 0.0) + bottleneck
        for res in path:
            length[res] *= 1.0 + epsilon * bottleneck / caps[res]
        iterations += 1

    if not raw_flow:
        return FPTASResult(
            objective=0.0, path_flows={}, iterations=iterations, epsilon=epsilon
        )

    # Scale to feasibility: Garg–Könemann's flow violates each capacity by at
    # most log_{1+eps}(1/delta).
    scale = math.log((1 + epsilon) / delta) / math.log(1 + epsilon)
    flows: Dict[Tuple[int, int], float] = {
        key: value / scale for key, value in raw_flow.items()
    }

    # Numerical re-clip: uniform scale per oversubscribed resource.
    usage: Dict[ResourceKey, float] = {}
    for (ci, pi), rate in flows.items():
        for res in usable[ci][pi]:
            usage[res] = usage.get(res, 0.0) + rate
    shrink: Dict[ResourceKey, float] = {}
    for res, used in usage.items():
        if used > caps[res] > 0:
            shrink[res] = caps[res] / used
    if shrink:
        for key in list(flows):
            ci, pi = key
            factor = min(
                (shrink.get(res, 1.0) for res in usable[ci][pi]), default=1.0
            )
            flows[key] *= factor

    # Translate internal (ci, pi-over-usable) indices back to the caller's
    # (commodity name, original path index).
    path_flows: Dict[Tuple[Hashable, int], float] = {}
    for ci, plist in enumerate(usable):
        for pi, _path in enumerate(plist):
            rate = flows.get((ci, pi), 0.0)
            if rate > 1e-12:
                key = (commodities[ci].name, usable_orig[ci][pi])
                path_flows[key] = path_flows.get(key, 0.0) + rate * cap_scale

    objective = sum(path_flows.values())
    return FPTASResult(
        objective=objective,
        path_flows=path_flows,
        iterations=iterations,
        epsilon=epsilon,
    )

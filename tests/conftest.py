"""Shared fixtures: small topologies, jobs, and cluster views."""

from __future__ import annotations

import pytest

from repro.core import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


@pytest.fixture
def small_topology() -> Topology:
    """3 fully meshed DCs x 3 servers; WAN far fatter than NICs."""
    return Topology.full_mesh(
        num_dcs=3, servers_per_dc=3, wan_capacity=200 * MBps, uplink=20 * MBps
    )


@pytest.fixture
def small_job(small_topology: Topology) -> MulticastJob:
    """A 40 MB multicast from dc0 to dc1+dc2 in 4 MB blocks, bound."""
    job = MulticastJob(
        job_id="job",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2"),
        total_bytes=40 * MB,
        block_size=4 * MB,
    )
    job.bind(small_topology)
    return job


@pytest.fixture
def bds_simulation(small_topology: Topology, small_job: MulticastJob) -> Simulation:
    """A ready-to-run BDS simulation over the small scenario."""
    return Simulation(
        topology=small_topology,
        jobs=[small_job],
        strategy=BDSController(seed=0),
        config=SimConfig(cycle_seconds=3.0, max_cycles=500),
        seed=0,
    )


def make_view(simulation: Simulation, cycle: int = 0):
    """Convenience for tests needing a ClusterView."""
    return simulation.snapshot_view(cycle)

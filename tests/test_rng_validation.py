"""Seeded RNG plumbing and argument validation helpers."""

import numpy as np
import pytest

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_type,
)


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(42).integers(0, 1000, size=5)
        b = make_rng(42).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(1, 5)) == 5

    def test_streams_are_independent(self):
        streams = spawn_rngs(7, 2)
        a = streams[0].integers(0, 10**9, size=10)
        b = streams[1].integers(0, 10**9, size=10)
        assert not (a == b).all()

    def test_deterministic_across_calls(self):
        a = spawn_rngs(3, 3)[2].integers(0, 10**9, size=4)
        b = spawn_rngs(3, 3)[2].integers(0, 10**9, size=4)
        assert (a == b).all()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []


class TestValidation:
    def test_check_positive_passes_through(self):
        assert check_positive("x", 3.5) == 3.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("y", 0.0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError, match="y"):
            check_non_negative("y", -1)

    def test_check_fraction_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ValueError):
            check_fraction("f", 1.01)
        with pytest.raises(ValueError):
            check_fraction("f", -0.01)

    def test_check_type_single(self):
        assert check_type("t", 5, int) == 5
        with pytest.raises(TypeError, match="t must be int"):
            check_type("t", "no", int)

    def test_check_type_tuple(self):
        assert check_type("t", 5.0, (int, float)) == 5.0
        with pytest.raises(TypeError):
            check_type("t", [], (int, float))

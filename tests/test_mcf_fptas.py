"""Multi-commodity flow: exact LP vs the Garg-Konemann FPTAS."""

import pytest

from repro.lp.fptas import max_multicommodity_flow
from repro.lp.mcf import Commodity, MCFResult, PathMCF


def commodity(name, *paths, demand=None):
    return Commodity(name=name, paths=tuple(tuple(p) for p in paths), demand=demand)


class TestCommodity:
    def test_requires_paths(self):
        with pytest.raises(ValueError):
            Commodity(name="c", paths=())

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            Commodity(name="c", paths=((),))

    def test_rejects_negative_demand(self):
        with pytest.raises(ValueError):
            commodity("c", ["l"], demand=-1)


class TestPathMCFLP:
    def test_single_commodity_single_path(self):
        problem = PathMCF([commodity("c", ["l"])], {"l": 10})
        result = problem.solve_lp()
        assert result.objective == pytest.approx(10)
        assert result.commodity_flow("c") == pytest.approx(10)

    def test_demand_caps_flow(self):
        problem = PathMCF([commodity("c", ["l"], demand=4)], {"l": 10})
        assert problem.solve_lp().objective == pytest.approx(4)

    def test_two_paths_split(self):
        problem = PathMCF(
            [commodity("c", ["l1"], ["l2"])], {"l1": 3, "l2": 5}
        )
        result = problem.solve_lp()
        assert result.objective == pytest.approx(8)

    def test_shared_link_contention(self):
        problem = PathMCF(
            [
                commodity("a", ["shared", "pa"]),
                commodity("b", ["shared", "pb"]),
            ],
            {"shared": 6, "pa": 10, "pb": 10},
        )
        result = problem.solve_lp()
        assert result.objective == pytest.approx(6)

    def test_resource_usage_consistent(self):
        commodities = [commodity("a", ["x", "y"]), commodity("b", ["y", "z"])]
        caps = {"x": 4, "y": 5, "z": 3}
        problem = PathMCF(commodities, caps)
        result = problem.solve_lp()
        usage = result.resource_usage(commodities)
        for res, used in usage.items():
            assert used <= caps[res] + 1e-6

    def test_unknown_resource_rejected(self):
        with pytest.raises(KeyError):
            PathMCF([commodity("c", ["ghost"])], {"l": 1})

    def test_needs_commodities(self):
        with pytest.raises(ValueError):
            PathMCF([], {"l": 1})


class TestFPTAS:
    def test_matches_lp_single_commodity(self):
        caps = {"l": 10.0}
        commodities = [commodity("c", ["l"])]
        lp = PathMCF(commodities, caps).solve_lp()
        approx = max_multicommodity_flow(commodities, caps, epsilon=0.05)
        assert approx.objective >= (1 - 0.05) ** 3 * lp.objective
        assert approx.objective <= lp.objective + 1e-6

    def test_matches_lp_with_demands(self):
        caps = {"l1": 8.0, "l2": 4.0, "shared": 5.0}
        commodities = [
            commodity("a", ["shared", "l1"], demand=3),
            commodity("b", ["shared", "l2"]),
        ]
        lp = PathMCF(commodities, caps).solve_lp()
        approx = max_multicommodity_flow(commodities, caps, epsilon=0.05)
        assert approx.objective >= 0.85 * lp.objective

    def test_feasibility_exact(self):
        caps = {"x": 3.0, "y": 7.0, "z": 2.0}
        commodities = [
            commodity("a", ["x", "y"], ["z"]),
            commodity("b", ["y"], demand=5),
            commodity("c", ["x"], ["y", "z"]),
        ]
        result = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        usage = {}
        for (name, pi), rate in result.path_flows.items():
            com = next(c for c in commodities if c.name == name)
            for res in com.paths[pi]:
                usage[res] = usage.get(res, 0.0) + rate
        for res, used in usage.items():
            assert used <= caps[res] + 1e-6

    def test_zero_demand_commodity(self):
        result = max_multicommodity_flow(
            [commodity("c", ["l"], demand=0)], {"l": 5}, epsilon=0.1
        )
        assert result.objective == 0.0

    def test_zero_capacity_resource(self):
        result = max_multicommodity_flow(
            [commodity("c", ["dead"], ["live"])], {"dead": 0.0, "live": 4.0}
        )
        assert result.objective == pytest.approx(4.0, rel=0.2)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            max_multicommodity_flow([commodity("c", ["l"])], {"l": 1}, epsilon=0)
        with pytest.raises(ValueError):
            max_multicommodity_flow([commodity("c", ["l"])], {"l": 1}, epsilon=1.0)

    def test_no_commodities_rejected(self):
        with pytest.raises(ValueError):
            max_multicommodity_flow([], {"l": 1})

    def test_solve_fptas_via_problem(self):
        problem = PathMCF([commodity("c", ["l"], demand=2)], {"l": 10})
        result = problem.solve_fptas(epsilon=0.1)
        assert isinstance(result, MCFResult)
        assert result.objective == pytest.approx(2.0, rel=0.05)

    def test_tiny_demands_not_lost(self):
        # Regression: sub-nanobyte-scale demands must still route.
        caps = {"l": 2.0e7}
        commodities = [commodity("c", ["l"], demand=1e-6)]
        result = max_multicommodity_flow(commodities, caps, epsilon=0.1)
        assert result.objective == pytest.approx(1e-6, rel=0.1)

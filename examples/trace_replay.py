#!/usr/bin/env python3
"""Scenario: replaying a week of synthetic Baidu-like multicast traffic.

Generates a trace matching the paper's published workload distributions
(Table 1 application mix, Fig. 2a destination fan-out, Fig. 2b sizes),
saves it to JSON lines, replays the multicasts through the simulator with
BDS, and reports fleet-level statistics — the closest offline analogue of
the paper's trace-driven evaluation methodology (§6.1.1).

Sizes are scaled down by 10^-4 so the replay finishes in seconds; relative
job sizes and the arrival process are preserved.

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import Topology, WorkloadGenerator
from repro.analysis.metrics import summarize
from repro.analysis.runner import run_simulation
from repro.utils.units import MB, MBps, format_bytes, format_duration
from repro.workload.traces import replay_as_jobs, save_trace

SIZE_SCALE = 1e-4
NUM_REQUESTS = 30


def main() -> None:
    topology = Topology.full_mesh(
        num_dcs=10,
        servers_per_dc=4,
        wan_capacity=500 * MBps,
        uplink=25 * MBps,
    )

    generator = WorkloadGenerator(
        topology.dc_names(), seed=2024, mean_interarrival_s=60.0
    )
    requests = generator.generate(count=NUM_REQUESTS)
    multicasts = [r for r in requests if r.is_multicast]
    total = sum(r.size_bytes for r in multicasts)
    print(
        f"generated {len(requests)} requests "
        f"({len(multicasts)} multicasts, {format_bytes(total)} of bulk data)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "week.jsonl"
        save_trace(requests, trace_path)
        jobs = replay_as_jobs(
            trace_path, topology, block_size=4 * MB, size_scale=SIZE_SCALE
        )

    print(f"replaying {len(jobs)} multicast jobs (sizes scaled {SIZE_SCALE:g}x)\n")
    result = run_simulation(
        topology, jobs, "bds", seed=2024, max_cycles=20000
    )

    completed = len(result.job_completion)
    print(f"jobs completed : {completed}/{len(jobs)}")
    durations = [
        result.job_completion[j.job_id] - j.arrival_time
        for j in jobs
        if j.job_id in result.job_completion
    ]
    stats = summarize(durations)
    print(f"job durations  : median {format_duration(stats.median)}, "
          f"p90 {format_duration(stats.p90)}, max {format_duration(stats.maximum)}")
    print(f"simulated time : {format_duration(result.sim_time)}")
    print(f"wall time      : {result.wall_time:.1f}s")

    by_fanout = {}
    for job in jobs:
        if job.job_id in result.job_completion:
            by_fanout.setdefault(len(job.dst_dcs), []).append(
                result.job_completion[job.job_id] - job.arrival_time
            )
    print("\nduration by destination fan-out:")
    for fanout in sorted(by_fanout):
        stats = summarize(by_fanout[fanout])
        print(
            f"  {fanout:2d} DCs: {len(by_fanout[fanout]):2d} jobs, "
            f"median {format_duration(stats.median)}"
        )


if __name__ == "__main__":
    main()

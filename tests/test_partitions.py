"""Failure-aware WAN rerouting and §5.3 partition handling."""

import pytest

from repro.core import BDSController
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology, wan_key
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def triangle(thin_direct=False):
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_dc(name)
        for j in range(2):
            topo.add_server(f"{name}-s{j}", name, uplink=20 * MBps, downlink=20 * MBps)
    topo.add_bidirectional_link("A", "B", 100 * MBps)
    topo.add_bidirectional_link("B", "C", 100 * MBps)
    topo.add_bidirectional_link("A", "C", 5 * MBps if thin_direct else 100 * MBps)
    return topo


class TestFailureAwareRouting:
    def test_route_detours_around_failed_link(self):
        topo = triangle()
        direct = topo.route("A", "C")
        assert direct == (wan_key("A", "C"),)
        detour = topo.route("A", "C", frozenset({("A", "C")}))
        assert detour == (wan_key("A", "B"), wan_key("B", "C"))

    def test_unreachable_raises(self):
        topo = triangle()
        cut = frozenset({("A", "C"), ("A", "B")})
        with pytest.raises(ValueError, match="no WAN route"):
            topo.route("A", "C", cut)

    def test_flow_resources_respects_exclusions(self):
        topo = triangle()
        resources = topo.flow_resources(
            "A-s0", "C-s0", frozenset({("A", "C")})
        )
        assert wan_key("A", "B") in resources
        assert wan_key("A", "C") not in resources

    def test_reachable_dcs(self):
        topo = triangle()
        assert topo.reachable_dcs("A") == frozenset({"A", "B", "C"})
        cut = frozenset({("A", "B"), ("A", "C")})
        assert topo.reachable_dcs("A", cut) == frozenset({"A"})

    def test_reachable_unknown_dc(self):
        with pytest.raises(ValueError):
            triangle().reachable_dcs("X")

    def test_route_cache_consistency(self):
        topo = triangle()
        cut = frozenset({("A", "C")})
        first = topo.route("A", "C", cut)
        second = topo.route("A", "C", cut)
        assert first == second
        # The unfailed table is untouched.
        assert topo.route("A", "C") == (wan_key("A", "C"),)


class TestReroutingInSimulation:
    def test_transfer_survives_link_failure_via_detour(self):
        """The A->C link dies mid-transfer; flows detour through B."""
        topo = triangle()
        job = MulticastJob(
            job_id="j", src_dc="A", dst_dcs=("C",),
            total_bytes=120 * MB, block_size=4 * MB,
        )
        job.bind(topo)
        failures = FailureSchedule(
            [FailureEvent(cycle=1, kind="link_fail", target=("A", "C"))]
        )
        result = Simulation(
            topo,
            [job],
            BDSController(seed=0),
            SimConfig(max_cycles=2000),
            failures=failures,
            seed=0,
        ).run()
        assert result.all_complete

    def test_full_partition_stalls_then_recovers(self):
        topo = triangle()
        job = MulticastJob(
            job_id="j", src_dc="A", dst_dcs=("C",),
            total_bytes=60 * MB, block_size=4 * MB,
        )
        job.bind(topo)
        failures = FailureSchedule(
            [
                FailureEvent(cycle=0, kind="link_fail", target=("A", "C")),
                FailureEvent(cycle=0, kind="link_fail", target=("B", "C")),
                FailureEvent(cycle=4, kind="link_recover", target=("B", "C")),
            ]
        )
        result = Simulation(
            topo,
            [job],
            BDSController(seed=0),
            SimConfig(max_cycles=2000),
            failures=failures,
            seed=0,
        ).run()
        assert result.all_complete
        # Nothing could reach C during the partition (cycles 0-3).
        assert all(s.blocks_delivered == 0 for s in result.cycle_stats[:4])
        assert result.completion_time("j") >= 4 * 3.0


class TestControllerPartitionHandling:
    def make_setup(self):
        topo = Topology.full_mesh(
            num_dcs=4, servers_per_dc=2, wan_capacity=100 * MBps, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2", "dc3"),
            total_bytes=60 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        return topo, job

    def _sever_dc3_events(self):
        # Cut every link touching dc3 in both directions.
        events = []
        for other in ("dc0", "dc1", "dc2"):
            events.append(
                FailureEvent(cycle=0, kind="link_fail", target=(other, "dc3"))
            )
            events.append(
                FailureEvent(cycle=0, kind="link_fail", target=("dc3", other))
            )
        for event in list(events):
            events.append(
                FailureEvent(
                    cycle=5, kind="link_recover", target=event.target
                )
            )
        return [e for e in events if e.kind == "link_fail"] + [
            FailureEvent(cycle=5, kind="link_recover", target=(o, "dc3"))
            for o in ("dc0", "dc1", "dc2")
        ] + [
            FailureEvent(cycle=5, kind="link_recover", target=("dc3", o))
            for o in ("dc0", "dc1", "dc2")
        ]

    def test_partitioned_dc_falls_back_others_centralized(self):
        topo, job = self.make_setup()
        controller = BDSController(seed=0, controller_dc="dc0")
        failures = FailureSchedule(self._sever_dc3_events())
        result = Simulation(
            topo,
            [job],
            controller,
            SimConfig(max_cycles=2000),
            failures=failures,
            seed=0,
        ).run()
        assert result.all_complete
        # Reachable DCs finished before the partition healed at cycle 5;
        # dc3 could only start after.
        assert result.dc_completion[("j", "dc1")] < 15.0
        assert result.dc_completion[("j", "dc3")] >= 15.0

    def test_no_controller_dc_means_global_control(self):
        topo, job = self.make_setup()
        controller = BDSController(seed=0)  # controller_dc=None
        failures = FailureSchedule(self._sever_dc3_events())
        result = Simulation(
            topo,
            [job],
            controller,
            SimConfig(max_cycles=2000),
            failures=failures,
            seed=0,
        ).run()
        # Still completes (directives to dc3 are dropped until links heal).
        assert result.all_complete

"""Overlay paths: enumeration, throughput, bottleneck-disjointness."""

import pytest

from repro.net.paths import (
    OverlayPath,
    are_bottleneck_disjoint,
    bottleneck_resources,
    build_overlay_path,
    enumerate_dc_paths,
    enumerate_overlay_paths,
    path_throughput,
    throughput_ratio_samples,
)
from repro.net.topology import Topology
from repro.utils.units import GB, MBps


@pytest.fixture
def mesh() -> Topology:
    return Topology.full_mesh(
        num_dcs=4, servers_per_dc=2, wan_capacity=1 * GB, uplink=50 * MBps
    )


class TestOverlayPath:
    def test_requires_two_servers(self):
        with pytest.raises(ValueError):
            OverlayPath(servers=("a",), resources=())

    def test_rejects_revisit(self):
        with pytest.raises(ValueError):
            OverlayPath(servers=("a", "b", "a"), resources=())

    def test_endpoints_and_hops(self, mesh):
        path = build_overlay_path(mesh, ("dc0-s0", "dc1-s0", "dc2-s0"))
        assert path.source == "dc0-s0"
        assert path.destination == "dc2-s0"
        assert path.num_hops == 2

    def test_resources_accumulate_per_hop(self, mesh):
        path = build_overlay_path(mesh, ("dc0-s0", "dc1-s0"))
        assert ("up", "dc0-s0") in path.resources
        assert ("wan", "dc0", "dc1") in path.resources
        assert ("down", "dc1-s0") in path.resources


class TestThroughput:
    def test_bottleneck_is_min_capacity(self, mesh):
        caps = mesh.resource_capacities()
        path = build_overlay_path(mesh, ("dc0-s0", "dc1-s0"))
        assert path_throughput(path, caps) == 50 * MBps  # NIC-bound

    def test_bottleneck_resources_identify_nics(self, mesh):
        caps = mesh.resource_capacities()
        path = build_overlay_path(mesh, ("dc0-s0", "dc1-s0"))
        bn = bottleneck_resources(path, caps)
        assert ("up", "dc0-s0") in bn
        assert ("down", "dc1-s0") in bn
        assert ("wan", "dc0", "dc1") not in bn


class TestDisjointness:
    def test_disjoint_when_no_shared_resources(self, mesh):
        caps = mesh.resource_capacities()
        a = build_overlay_path(mesh, ("dc0-s0", "dc1-s0"))
        b = build_overlay_path(mesh, ("dc2-s0", "dc3-s0"))
        assert are_bottleneck_disjoint(a, b, caps)

    def test_not_disjoint_with_shared_bottleneck(self, mesh):
        caps = mesh.resource_capacities()
        a = build_overlay_path(mesh, ("dc0-s0", "dc1-s0"))
        b = build_overlay_path(mesh, ("dc0-s0", "dc2-s0"))
        # Shared uplink of dc0-s0 is the bottleneck of both.
        assert not are_bottleneck_disjoint(a, b, caps)

    def test_shared_non_bottleneck_is_still_disjoint(self):
        topo = Topology()
        for dc in ("A", "B", "C"):
            topo.add_dc(dc)
        topo.add_server("A-s0", "A", uplink=100 * MBps, downlink=100 * MBps)
        topo.add_server("B-s0", "B", uplink=1 * MBps, downlink=1 * MBps)
        topo.add_server("C-s0", "C", uplink=2 * MBps, downlink=2 * MBps)
        topo.add_bidirectional_link("A", "B", 1 * GB)
        topo.add_bidirectional_link("A", "C", 1 * GB)
        caps = topo.resource_capacities()
        a = build_overlay_path(topo, ("A-s0", "B-s0"))  # bottleneck: B NIC
        b = build_overlay_path(topo, ("A-s0", "C-s0"))  # bottleneck: C NIC
        # They share A-s0's uplink, but it bottlenecks neither.
        assert are_bottleneck_disjoint(a, b, caps)


class TestEnumeration:
    def test_dc_paths_include_direct(self, mesh):
        paths = enumerate_dc_paths(mesh, "dc0", "dc1", max_intermediate=1)
        assert ("dc0", "dc1") in paths

    def test_dc_paths_one_intermediate(self, mesh):
        paths = enumerate_dc_paths(mesh, "dc0", "dc1", max_intermediate=1)
        assert ("dc0", "dc2", "dc1") in paths
        assert ("dc0", "dc3", "dc1") in paths
        assert len(paths) == 3

    def test_dc_paths_two_intermediates(self, mesh):
        paths = enumerate_dc_paths(mesh, "dc0", "dc1", max_intermediate=2)
        assert ("dc0", "dc2", "dc3", "dc1") in paths
        assert len(paths) == 3 + 2  # direct + 2 one-hop + 2 two-hop

    def test_same_dc_rejected(self, mesh):
        with pytest.raises(ValueError):
            enumerate_dc_paths(mesh, "dc0", "dc0")

    def test_overlay_paths_same_dc(self, mesh):
        paths = enumerate_overlay_paths(mesh, "dc0-s0", "dc0-s1", seed=0)
        assert len(paths) == 1
        assert paths[0].servers == ("dc0-s0", "dc0-s1")

    def test_overlay_paths_have_relays(self, mesh):
        paths = enumerate_overlay_paths(
            mesh, "dc0-s0", "dc1-s0", max_intermediate=1, seed=0
        )
        hops = sorted(p.num_hops for p in paths)
        assert hops[0] == 1  # direct
        assert hops[-1] == 2  # through a relay DC
        assert len(paths) == 3  # direct + dc2 relay + dc3 relay

    def test_overlay_paths_multiple_relays_per_dc(self, mesh):
        paths = enumerate_overlay_paths(
            mesh,
            "dc0-s0",
            "dc1-s0",
            max_intermediate=1,
            servers_per_relay_dc=2,
            seed=0,
        )
        assert len(paths) == 1 + 2 * 2  # direct + 2 servers x 2 relay DCs


class TestRatioSampling:
    def test_samples_produced(self):
        topo = Topology.random_mesh(
            num_dcs=6,
            servers_per_dc=2,
            wan_capacity_range=(1 * GB, 10 * GB),
            uplink_range=(10 * MBps, 100 * MBps),
            seed=4,
        )
        ratios = throughput_ratio_samples(topo, 100, seed=4)
        assert len(ratios) == 100
        assert all(r > 0 for r in ratios)

    def test_needs_three_dcs(self):
        topo = Topology.full_mesh(2, 1, 1 * GB, 1 * MBps)
        with pytest.raises(ValueError):
            throughput_ratio_samples(topo, 10, seed=0)

    def test_heterogeneous_capacities_make_disjoint_pairs(self):
        topo = Topology.random_mesh(
            num_dcs=8,
            servers_per_dc=2,
            wan_capacity_range=(1 * GB, 10 * GB),
            uplink_range=(10 * MBps, 200 * MBps),
            seed=11,
        )
        ratios = throughput_ratio_samples(topo, 300, seed=11)
        disjoint = sum(1 for r in ratios if abs(r - 1) > 0.01) / len(ratios)
        # The paper's Fig. 4: >95% of pairs have different throughput.
        assert disjoint > 0.9

"""Parallel experiment engine: fan-out, failure containment, run cache."""

from __future__ import annotations

import json

import pytest

from repro.analysis.export import result_from_dict, result_to_dict
from repro.analysis.parallel import RunSpec, run_many
from repro.analysis.runcache import RunCache, spec_fingerprint
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import make_rng
from repro.utils.units import MB, MBps

SEED = 17


def small_scenario(size=32 * MB, block=4 * MB):
    def _scenario():
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=3, wan_capacity=200 * MBps, uplink=20 * MBps
        )
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=size,
            block_size=block,
        )
        job.bind(topo)
        return topo, [job]

    return _scenario


def spec(strategy="bds", **kwargs):
    kwargs.setdefault("scenario", small_scenario())
    kwargs.setdefault("seed", SEED)
    return RunSpec(strategy=strategy, **kwargs)


class TestRunSpec:
    def test_needs_exactly_one_input_form(self):
        with pytest.raises(ValueError):
            RunSpec(strategy="bds")  # neither form
        topo, jobs = small_scenario()()
        with pytest.raises(ValueError):
            RunSpec(
                strategy="bds",
                scenario=small_scenario(),
                topology=topo,
                jobs=jobs,
            )

    def test_prebuilt_objects_are_copied_per_materialization(self):
        topo, jobs = small_scenario()()
        s = RunSpec(strategy="bds", topology=topo, jobs=jobs)
        t1, j1 = s.materialize()
        t2, j2 = s.materialize()
        assert t1 is not topo and t1 is not t2
        assert j1[0] is not jobs[0] and j1[0] is not j2[0]

    def test_label_defaults_to_strategy(self):
        assert spec(strategy="gingko").label == "gingko"


class TestRunMany:
    def test_outcomes_in_spec_order(self):
        names = ["gingko", "bds", "direct"]
        outcomes = run_many([spec(strategy=n) for n in names])
        assert [o.spec.strategy for o in outcomes] == names
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok and o.result.all_complete for o in outcomes)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            run_many([spec()], workers=0)

    def test_failed_spec_does_not_kill_the_batch(self):
        outcomes = run_many(
            [spec(), spec(strategy="no-such-strategy"), spec(strategy="direct")]
        )
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert "no-such-strategy" in outcomes[1].error

    def test_failed_spec_contained_in_pool_mode(self):
        outcomes = run_many(
            [
                spec(),
                spec(strategy="no-such-strategy"),
                spec(strategy="direct"),
                spec(strategy="gingko"),
            ],
            workers=2,
        )
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert "ValueError" in outcomes[1].error

    def test_scenario_errors_propagate_from_parent(self):
        # Factory exceptions surface to the caller (the old serial
        # contract for e.g. "scenario produced no jobs").
        def broken():
            raise ValueError("scenario produced no jobs for x=1")

        with pytest.raises(ValueError, match="no jobs"):
            run_many([RunSpec(strategy="bds", scenario=broken)])

    def test_progress_callback_sees_final_counts(self):
        seen = []
        run_many(
            [spec(), spec(strategy="direct")],
            on_progress=lambda stats: seen.append(stats.as_dict()),
        )
        assert seen[-1]["done"] == 2
        assert seen[-1]["total"] == 2


class TestSpecFingerprint:
    def args_for(self, s: RunSpec):
        topo, jobs = s.materialize()
        return topo, jobs, s.strategy, s.sim_knobs(), s.seed, s.config

    def test_stable_across_materializations(self):
        a = spec_fingerprint(*self.args_for(spec()))
        b = spec_fingerprint(*self.args_for(spec()))
        assert a is not None and a == b

    def test_sensitive_to_seed_strategy_and_knobs(self):
        base = spec_fingerprint(*self.args_for(spec()))
        assert base != spec_fingerprint(*self.args_for(spec(seed=SEED + 1)))
        assert base != spec_fingerprint(*self.args_for(spec(strategy="gingko")))
        assert base != spec_fingerprint(
            *self.args_for(spec(cycle_seconds=1.5))
        )

    def test_rng_object_seed_is_uncacheable(self):
        s = spec(seed=make_rng(3))
        assert spec_fingerprint(*self.args_for(s)) is None


class TestRunCache:
    def test_hit_after_identical_spec(self, tmp_path):
        cache = RunCache(root=tmp_path)
        first = run_many([spec()], cache=cache)
        second = run_many([spec()], cache=cache)
        assert not first[0].cached and second[0].cached
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert first[0].result.fingerprint() == second[0].result.fingerprint()

    def test_miss_after_config_change(self, tmp_path):
        cache = RunCache(root=tmp_path)
        run_many([spec()], cache=cache)
        changed = run_many([spec(cycle_seconds=1.5)], cache=cache)
        assert not changed[0].cached
        assert cache.stats.hits == 0 and cache.stats.misses == 2

    def test_corrupted_entry_recovers(self, tmp_path):
        cache = RunCache(root=tmp_path)
        original = run_many([spec()], cache=cache)
        entry = next(iter(cache._entry_files()))
        entry.write_text("{ not json", encoding="utf-8")

        fresh = RunCache(root=tmp_path)
        again = run_many([spec()], cache=fresh)
        assert not again[0].cached  # corrupt entry treated as a miss
        assert fresh.stats.invalid == 1 and fresh.stats.stores == 1
        assert again[0].result.fingerprint() == original[0].result.fingerprint()
        # The overwritten entry serves the next lookup.
        warm = run_many([spec()], cache=fresh)
        assert warm[0].cached

    def test_wrong_format_version_invalidated(self, tmp_path):
        cache = RunCache(root=tmp_path)
        run_many([spec()], cache=cache)
        entry = next(iter(cache._entry_files()))
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["format_version"] = 99
        entry.write_text(json.dumps(payload), encoding="utf-8")

        fresh = RunCache(root=tmp_path)
        again = run_many([spec()], cache=fresh)
        assert not again[0].cached and fresh.stats.invalid == 1

    def test_in_flight_dedup_executes_once(self, tmp_path):
        cache = RunCache(root=tmp_path)
        outcomes = run_many([spec(), spec(), spec()], cache=cache)
        assert outcomes[0].ok and not outcomes[0].deduped
        assert outcomes[1].deduped and outcomes[2].deduped
        assert outcomes[1].result is outcomes[0].result
        assert cache.stats.stores == 1

    def test_uncacheable_spec_still_runs(self, tmp_path):
        cache = RunCache(root=tmp_path)
        outcomes = run_many([spec(seed=make_rng(3))], cache=cache)
        assert outcomes[0].ok
        assert outcomes[0].fingerprint is None
        assert cache.entry_count() == 0

    def test_purge_removes_entries(self, tmp_path):
        cache = RunCache(root=tmp_path)
        run_many([spec(), spec(strategy="direct")], cache=cache)
        assert cache.entry_count() == 2
        assert cache.purge() == 2
        assert cache.entry_count() == 0 and cache.size_bytes() == 0


class TestResultRoundTrip:
    def test_fingerprint_survives_export_import(self):
        result = run_many([spec()])[0].result
        restored = result_from_dict(result_to_dict(result, include_cycles=True))
        assert restored.fingerprint() == result.fingerprint()
        assert restored.job_completion == result.job_completion
        assert restored.dc_completion == result.dc_completion
        assert restored.server_completion == result.server_completion
        assert restored.blocks_per_cycle() == result.blocks_per_cycle()
        assert restored.completion_time("j") == result.completion_time("j")

    def test_store_origin_fractions_survive(self):
        result = run_many([spec()])[0].result
        restored = result_from_dict(result_to_dict(result, include_cycles=True))
        assert (
            restored.store.origin_fraction_by_server()
            == result.store.origin_fraction_by_server()
        )

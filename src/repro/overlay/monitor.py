"""The Agent Monitor: the controller's messaging layer (§5.1, Fig. 8).

Models the control-plane round trip the paper measures in Fig. 11b/11c:

1. agents report local status to the controller (one-way delay per agent;
   the controller waits for the slowest report),
2. the controller runs the decision algorithm (its running time is an
   input here, measured by the caller),
3. decision *diffs* are pushed back to agents (again one-way delays).

The sum is the **feedback-loop delay**; the paper reports it below 200 ms
in over 80 % of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.net.latency import LatencyModel
from repro.overlay.agent import AgentSnapshot, ServerAgent

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class FeedbackLoopSample:
    """Timing decomposition of one controller cycle's control plane."""

    collect_delay: float
    algorithm_runtime: float
    push_delay: float

    @property
    def total(self) -> float:
        return self.collect_delay + self.algorithm_runtime + self.push_delay


class AgentMonitor:
    """Simulated control-message transport between agents and controller."""

    def __init__(self, controller_dc: str, latency: LatencyModel) -> None:
        self.controller_dc = controller_dc
        self.latency = latency

    def collect_status(
        self,
        agents: Sequence[ServerAgent],
        blocks_by_server: Dict[str, set],
    ) -> Tuple[List[AgentSnapshot], float]:
        """Gather snapshots from all healthy agents.

        Returns the snapshots and the collection delay — the controller
        proceeds once the slowest healthy agent's report arrives (reports
        are sent in parallel).
        """
        snapshots: List[AgentSnapshot] = []
        worst_delay = 0.0
        for agent in agents:
            if not agent.healthy:
                continue
            delay = self.latency.sample_delay(agent.dc, self.controller_dc)
            worst_delay = max(worst_delay, delay)
            snapshots.append(
                agent.snapshot(blocks_by_server.get(agent.server_id, set()), delay)
            )
        return snapshots, worst_delay

    def push_decisions(self, target_dcs: Iterable[str]) -> float:
        """Push decision diffs to agents; returns the slowest one-way delay."""
        worst = 0.0
        for dc in target_dcs:
            worst = max(worst, self.latency.sample_delay(self.controller_dc, dc))
        return worst

    def feedback_loop(
        self,
        agents: Sequence[ServerAgent],
        blocks_by_server: Dict[str, set],
        algorithm_runtime: float,
    ) -> Tuple[List[AgentSnapshot], FeedbackLoopSample]:
        """One full control-plane round: collect -> compute -> push."""
        snapshots, collect_delay = self.collect_status(agents, blocks_by_server)
        push_delay = self.push_decisions({s.dc for s in snapshots})
        sample = FeedbackLoopSample(
            collect_delay=collect_delay,
            algorithm_runtime=algorithm_runtime,
            push_delay=push_delay,
        )
        return snapshots, sample

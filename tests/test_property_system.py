"""System-level property tests: invariants over randomized scenarios."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BDSController
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.net.flow import Flow, resource_utilization
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


@st.composite
def multicast_scenario(draw):
    """A random small mesh plus a bound multicast job."""
    num_dcs = draw(st.integers(min_value=2, max_value=5))
    servers = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    topo = Topology.random_mesh(
        num_dcs=num_dcs,
        servers_per_dc=servers,
        wan_capacity_range=(20 * MBps, 200 * MBps),
        uplink_range=(2 * MBps, 20 * MBps),
        seed=seed,
        extra_edge_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
    )
    num_blocks = draw(st.integers(min_value=1, max_value=12))
    num_dsts = draw(st.integers(min_value=1, max_value=num_dcs - 1))
    dsts = tuple(f"dc{i}" for i in range(1, 1 + num_dsts))
    job = MulticastJob(
        job_id="p",
        src_dc="dc0",
        dst_dcs=dsts,
        total_bytes=num_blocks * 2 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    return topo, job, seed


@given(multicast_scenario())
@settings(max_examples=40, deadline=None)
def test_bds_always_completes_and_respects_capacity(scenario):
    """On any connected topology, BDS completes the job, never beats the
    physics, and never oversubscribes a resource in its first decision."""
    topo, job, seed = scenario
    controller = BDSController(seed=seed)
    sim = Simulation(
        topo, [job], controller, SimConfig(max_cycles=5000), seed=seed
    )

    # First-decision feasibility.
    view = sim.snapshot_view()
    directives = controller.decide(view)
    flows = [
        Flow(
            flow_id=i,
            resources=topo.flow_resources(d.src_server, d.dst_server),
        )
        for i, d in enumerate(directives)
    ]
    usage = resource_utilization(
        flows, {i: d.rate_cap or 0.0 for i, d in enumerate(directives)}
    )
    for res, used in usage.items():
        assert used <= view.bulk_capacities[res] * (1 + 1e-6)

    result = sim.run()
    assert result.all_complete
    # Conservation: every destination DC needs one full copy, so at least
    # len(dst_dcs) x total_bytes must have moved (relays may add more).
    assert (
        result.total_bytes_transferred()
        >= len(job.dst_dcs) * job.total_bytes * (1 - 1e-9)
    )


@given(multicast_scenario())
@settings(max_examples=25, deadline=None)
def test_simulation_is_deterministic(scenario):
    """Same topology, job, strategy seed => identical results."""
    topo, job, seed = scenario

    def run():
        j = MulticastJob(
            job_id="p",
            src_dc=job.src_dc,
            dst_dcs=job.dst_dcs,
            total_bytes=job.total_bytes,
            block_size=job.block_size,
        )
        j.bind(topo)
        return Simulation(
            topo,
            [j],
            BDSController(seed=seed),
            SimConfig(max_cycles=5000),
            seed=seed,
        ).run()

    a = run()
    b = run()
    assert a.job_completion == b.job_completion
    assert a.blocks_per_cycle() == b.blocks_per_cycle()
    assert a.server_completion == b.server_completion


@given(multicast_scenario())
@settings(max_examples=25, deadline=None)
def test_scheduler_selections_are_valid(scenario):
    topo, job, seed = scenario
    sim = Simulation(
        topo, [job], BDSController(seed=seed), SimConfig(), seed=seed
    )
    view = sim.snapshot_view()
    selections = RarestFirstScheduler().select(view)
    for s in selections:
        # Destination lacks the block, at least one healthy holder exists.
        assert not view.store.has(s.dst_server, s.block.block_id)
        assert view.eligible_sources(s.block.block_id)
        assert s.duplicates >= 1
    # Rarity order is non-decreasing for non-relay selections.
    duplicates = [s.duplicates for s in selections if not s.is_relay]
    assert duplicates == sorted(duplicates)


@given(multicast_scenario(), st.sampled_from(["greedy", "lp"]))
@settings(max_examples=20, deadline=None)
def test_router_directives_reference_true_holders(scenario, backend):
    topo, job, seed = scenario
    sim = Simulation(
        topo, [job], BDSController(seed=seed), SimConfig(), seed=seed
    )
    view = sim.snapshot_view()
    selections = RarestFirstScheduler().select(view)
    router = BDSRouter(backend=backend)
    directives, diag = router.route(view, selections)
    seen = set()
    for d in directives:
        for bid in d.block_ids:
            assert view.store.has(d.src_server, bid)
            assert not view.store.has(d.dst_server, bid)
            # No block is assigned to the same destination twice.
            assert (bid, d.dst_server) not in seen
            seen.add((bid, d.dst_server))
        assert d.rate_cap is not None and d.rate_cap > 0

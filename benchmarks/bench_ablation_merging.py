"""Ablation — §5.1 blocks merging on vs off.

The paper's blocks-merging optimization shrinks the number of subtasks
(and TCP connections): blocks sharing a (source, destination) pair become
one unit of work. The ablation measures the controller's decision runtime
and directive (connection) count with merging enabled and disabled.
"""

import time

from repro.analysis.reporting import format_table
from repro.core import BDSController
from repro.core.routing import BDSRouter
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


def _snapshot():
    topo = Topology.full_mesh(
        num_dcs=4, servers_per_dc=4, wan_capacity=1 * GB, uplink=20 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=512 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
    view = sim.snapshot_view()
    return view, RarestFirstScheduler().select(view)


def _run_both():
    view, selections = _snapshot()
    out = {}
    for merge in (True, False):
        router = BDSRouter(merge_blocks=merge)
        started = time.perf_counter()
        directives, diag = router.route(view, selections)
        out[merge] = (
            time.perf_counter() - started,
            len(directives),
            diag.num_commodities,
        )
    return out


def test_ablation_blocks_merging(benchmark, report):
    out = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    rows = [
        [
            "merged" if merge else "unmerged",
            f"{t * 1000:.1f}ms",
            directives,
            commodities,
        ]
        for merge, (t, directives, commodities) in out.items()
    ]
    report(
        "\n[Ablation] Blocks merging (768 pending block deliveries)\n"
        + format_table(
            ["mode", "decision time", "directives", "commodities"], rows
        )
    )
    merged_time, merged_dirs, merged_coms = out[True]
    unmerged_time, unmerged_dirs, unmerged_coms = out[False]
    assert merged_coms < unmerged_coms
    assert merged_dirs < unmerged_dirs
    assert merged_time < unmerged_time

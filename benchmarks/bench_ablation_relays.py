"""Ablation — relay DCs: Type I overlay paths through non-destination DCs.

Fig. 1's core claim is that store-and-forward through intermediate DCs
circumvents slow WAN paths. This ablation builds the canonical scenario —
a thin direct route from source to destination and a fat two-leg route
through a non-destination relay DC — and measures BDS with relay
placements enabled vs disabled.
"""

from repro.analysis.reporting import format_table
from repro.core import BDSConfig, BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def _scenario(with_relay: bool):
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_dc(name)
        for j in range(2):
            topo.add_server(
                f"{name}-s{j}", name, uplink=50 * MBps, downlink=50 * MBps
            )
    topo.add_bidirectional_link("A", "B", 100 * MBps)
    topo.add_bidirectional_link("B", "C", 100 * MBps)
    topo.add_bidirectional_link("A", "C", 5 * MBps)  # the slow WAN path
    job = MulticastJob(
        job_id="j",
        src_dc="A",
        dst_dcs=("C",),
        total_bytes=240 * MB,
        block_size=4 * MB,
        relay_dcs=("B",) if with_relay else (),
    )
    job.bind(topo)
    return topo, job


def _run_both():
    times = {}
    for with_relay in (False, True):
        topo, job = _scenario(with_relay)
        result = Simulation(
            topo,
            [job],
            BDSController(config=BDSConfig(use_relays=with_relay), seed=0),
            SimConfig(max_cycles=5000),
            seed=0,
        ).run()
        times[with_relay] = result.completion_time("j")
    return times


def test_ablation_relay_dcs(benchmark, report):
    times = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    speedup = times[False] / times[True]
    report(
        "\n[Ablation] Relay DCs (thin 5 MB/s direct path, fat 100 MB/s legs)\n"
        + format_table(
            ["mode", "completion"],
            [
                ["direct WAN route only", f"{times[False]:.0f}s"],
                ["with relay DC", f"{times[True]:.0f}s"],
            ],
        )
        + f"\n  relay speedup: {speedup:.1f}x"
    )
    assert times[True] < times[False]
    assert speedup > 2.0

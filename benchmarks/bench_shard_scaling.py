"""Sharded control plane scaling — per-cycle controller wall vs shards.

Fig. 11a asks whether one controller cycle fits the 3 s update interval
ΔT as state grows. This bench measures the sharded control plane
(``BDSConfig.shards``) at 10^5 / 10^6 / 10^7 (block, destination) pairs
of controller state spread over many concurrent jobs (sharding
partitions by job):

* **shard-scaling curve** — max per-cycle controller wall (decide +
  reconcile) for shards ∈ {1, 2, 4, 8} at 10^6 pairs, uncapped (the
  production config), with the staggered stride cadence
  (``shard_stride = shards``): each cycle runs ~one shard's
  schedule+route over a 1/k working set, so the curve must fall
  monotonically as shards grow. The win is algorithmic (per-shard
  working sets + staggering), not parallelism, so it holds on one core.
* **ΔT headline** — at 10^7 pairs a single controller's cold decide
  blows through ΔT even with its per-cycle selection capped; with
  shards > 1 the max per-cycle wall must come back under 3 s.
* **reconciliation overhead** — the outer max-min waterfill over all
  shards' directives, per cycle, must stay below 10% of the controller
  wall at 10^6 pairs.
* **quality** — sharded completion (stride=1) vs the single controller
  at 10^5 pairs, recorded as the mean relative completion-time delta;
  the stated tolerance is 3% (one-sided: sharding must not be slower
  than that). The only decision the decomposition changes is the rate
  allocation — with uncapped selection both controllers schedule every
  pending pair and pick the same rotation sources — so the delta is
  pure reconciliation error: measured range is -6% (shards=4, *faster*,
  because each shard's fair-rounds router approximates max-min better
  on fewer commodities) to +2.5% (shards=2).
* **process mode** — on hosts with >= 4 CPUs, ``shard_mode="process"``
  must beat in-process wall at 10^6 pairs (skipped on smaller hosts;
  results are bit-identical either way, which the unit suite asserts).

The 10^5 and 10^6 arms run uncapped — the production default, where a
cold cycle's cost is dominated by materializing one directive per
pending pair, which is exactly the work a 1/k shard divides. The 10^7
arms run with ``max_blocks_per_cycle = 20_000`` (:data:`TIMED_ARM_CAP`):
the scenario's network delivers well under a thousand blocks per ΔT, so
an uncapped 10^7 controller would spend tens of seconds materializing
~10^6 directive objects the data plane immediately starves — real
deployments bound per-cycle decision output the same way. The cap
applies to the 10^7 ``shards=1`` baseline too, so that comparison
isolates sharding: what remains is the O(pending pairs) rarity scan +
candidate build. Quality arms run uncapped (a per-shard cap is not
semantically comparable to a global cap).

Shard-local state (this PR) adds three more measurements:

* **per-shard memory** — every timed arm records the peak per-shard
  possession-matrix and candidate-table bytes (from the cycle stats'
  shard-local telemetry) next to the full store's bytes; the floor
  asserts peak possession+candidate state at 10^6 pairs scales ≈ 1/k
  (within 1.5x, the partition-imbalance allowance) for shards ∈
  {2, 4, 8}.
* **partition compare** — hash vs affinity on a *pod* workload (4
  disjoint source→{2 dst} groups; an all-to-all workload contends on
  every link regardless of partition, so it cannot distinguish the
  policies): affinity co-locates each pod on one shard, so the outer
  reconciliation sees no cross-shard link sharing and its clip count
  and wall must come in at or below hash's.
* **adaptive stride** — a 10^7 capped arm with ``shard_stride="auto"``:
  the controller must widen the stride off the measured per-shard walls
  (engaged stride > 1) and keep every cycle under the 3 s ΔT.

Every arm runs in a fresh interpreter (``--arm``, spawned by the
parent): allocator and GC state left by earlier arms measurably
inflates later cold timings when arms share a process (>2x at the 10^7
scale), and a clean process is what the cold-cycle claim is about.
Timed arms additionally repeat 2-3x keeping the best run (the work is
deterministic; run-to-run spread is scheduler/steal noise on a shared
host, so the minimum estimates intrinsic cost — all repeats are
recorded in the JSON).

Run as a script to emit ``BENCH_shards.json``::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--quick]

through pytest like the other benchmarks (quick scale), or as the CI
shard smoke (exit status asserts the memory ratio and the partition
clip comparison at quick scale)::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --shard-smoke
"""

import argparse
import gc
import json
import os
import subprocess
import sys
import time as _time
from pathlib import Path

import repro
from repro.core.config import BDSConfig
from repro.core.controller import BDSController
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps

RESULT_FORMAT_VERSION = 2

#: Stated sharded-quality tolerance: mean relative completion-time delta
#: vs the single controller at the quality scale (measured range is
#: -6% .. +2.5% across shard counts; see the module docstring).
QUALITY_TOLERANCE = 0.03
RECONCILE_OVERHEAD_CEILING = 0.10
DT_SECONDS = 3.0
#: Per-shard peak possession+candidate bytes must be <= this multiple of
#: the fair 1/k share of the single-controller state (partition
#: imbalance allowance).
MEMORY_SCALING_SLACK = 1.5
#: Process-mode floor, asserted only on hosts with >= this many CPUs.
PROCESS_MODE_MIN_CPUS = 4
PROCESS_SPEEDUP_FLOOR = 1.2
#: Per-cycle selection cap for the 10^7 timed arms (all shard counts):
#: far above what the scenario network can deliver per ΔT, so it never
#: binds the physics, but it keeps directive-object churn from
#: swamping the working-set scan those arms measure.
TIMED_ARM_CAP = 20_000

NUM_DCS = 5
SERVERS_PER_DC = 4
DST_DCS = NUM_DCS - 1  # pairs = jobs * blocks_per_job * DST_DCS

# (label, jobs, blocks_per_job) -> pairs = jobs * blocks * 4
FULL_SCALES = {
    "1e5": (16, 1_563),
    "1e6": (32, 7_813),
    "1e7": (64, 39_063),
}
QUICK_SCALES = {
    "2e4": (8, 625),
}


def build_scenario(num_jobs: int, blocks_per_job: int):
    topo = Topology.full_mesh(
        num_dcs=NUM_DCS,
        servers_per_dc=SERVERS_PER_DC,
        wan_capacity=500 * MBps,
        uplink=25 * MBps,
    )
    jobs = []
    for j in range(num_jobs):
        src = f"dc{j % NUM_DCS}"
        job = MulticastJob(
            job_id=f"shard-bench-{j}",
            src_dc=src,
            dst_dcs=tuple(
                f"dc{i}" for i in range(NUM_DCS) if f"dc{i}" != src
            ),
            total_bytes=blocks_per_job * 2 * MB,
            block_size=2 * MB,
        )
        job.bind(topo)
        jobs.append(job)
    return topo, jobs


def timed_cycles(
    num_jobs: int,
    blocks: int,
    shards: int,
    stride,
    cycles: int,
    cap: int = 0,
    partition: str = "hash",
) -> dict:
    """Run ``cycles`` fixed tick cycles; report controller-wall stats.

    ``cap`` is ``max_blocks_per_cycle`` (0 = uncapped, the production
    default; the 10^7 arms cap — see the module docstring). ``stride``
    accepts the literal ``"auto"`` for the adaptive-stride arm.
    """
    topo, jobs = build_scenario(num_jobs, blocks)
    controller = BDSController(
        BDSConfig(
            shards=shards,
            shard_stride=stride,
            shard_partition=partition,
            max_blocks_per_cycle=cap,
        )
    )
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=controller,
        config=SimConfig(
            event_engine=False,
            max_cycles=cycles,
            stop_when_complete=False,
        ),
        seed=0,
    )
    # The scenario heap (10^6+ Block dataclasses plus binding dicts) is
    # immortal for this process; freeze it out of the collector so full
    # generation scans don't alias multi-second pauses into whichever
    # cycle they happen to land on.
    gc.collect()
    gc.freeze()
    started = _time.perf_counter()
    result = sim.run()
    wall = _time.perf_counter() - started
    walls = [s.time_decide for s in result.cycle_stats]
    reconcile = [s.time_reconcile for s in result.cycle_stats]
    # Single-controller candidate-table bytes (the shards=1 baseline the
    # per-shard memory floor divides by); sharded runs skip the global
    # build, so this is 0 there and the mirror telemetry carries instead.
    table = getattr(sim, "_cand_table", None)
    return {
        "shards": shards,
        "stride": stride,
        "partition": partition,
        "cycles": len(result.cycle_stats),
        "max_cycle_wall_s": max(walls, default=0.0),
        "mean_cycle_wall_s": sum(walls) / len(walls) if walls else 0.0,
        "total_decide_s": sum(walls),
        "total_reconcile_s": sum(reconcile),
        "reconcile_fraction": (
            sum(reconcile) / sum(walls) if sum(walls) > 0 else 0.0
        ),
        "run_wall_s": wall,
        "shard_wall_max_s": max(
            (s.time_shard_max for s in result.cycle_stats), default=0.0
        ),
        "total_reconciled_directives": sum(
            d.reconciled_directives for d in controller.decisions
        ),
        "max_effective_stride": max(
            (s.shard_stride for s in result.cycle_stats), default=0
        ),
        "store_state_bytes": result.store.state_bytes(),
        "base_candidate_bytes": (
            table.state_bytes() if table is not None else 0
        ),
        "peak_shard_state_bytes": max(
            (s.shard_state_bytes for s in result.cycle_stats), default=0
        ),
        "peak_shard_candidate_bytes": max(
            (s.shard_candidate_bytes for s in result.cycle_stats), default=0
        ),
        "total_payload_bytes": sum(
            s.shard_payload_bytes for s in result.cycle_stats
        ),
    }


#: Pod workload shape for the partition-compare arm: disjoint
#: source→destination groups, so co-locating a pod on one shard removes
#: that pod's links from cross-shard contention entirely.
PODS = 4


def build_pod_scenario(jobs_per_pod: int, blocks: int):
    """``PODS`` disjoint multicast groups over a 3-DC-per-pod mesh.

    Pod p's jobs all flow ``dc(3p) -> {dc(3p+1), dc(3p+2)}``; no link is
    shared between pods. Jobs arrive round-robin across pods so the
    affinity assigner's home shards land on distinct shards.
    """
    topo = Topology.full_mesh(
        num_dcs=3 * PODS,
        servers_per_dc=SERVERS_PER_DC,
        wan_capacity=500 * MBps,
        uplink=25 * MBps,
    )
    jobs = []
    for i in range(PODS * jobs_per_pod):
        pod = i % PODS
        job = MulticastJob(
            job_id=f"pod-bench-{i}",
            src_dc=f"dc{3 * pod}",
            dst_dcs=(f"dc{3 * pod + 1}", f"dc{3 * pod + 2}"),
            total_bytes=blocks * 2 * MB,
            block_size=2 * MB,
        )
        job.bind(topo)
        jobs.append(job)
    return topo, jobs


def partition_compare_arm(
    jobs_per_pod: int, blocks: int, shards: int, cycles: int
) -> dict:
    """Hash vs affinity reconciliation cost on the pod workload."""
    out = {"pods": PODS, "jobs_per_pod": jobs_per_pod, "shards": shards}
    for partition in ("hash", "affinity"):
        topo, jobs = build_pod_scenario(jobs_per_pod, blocks)
        controller = BDSController(
            BDSConfig(shards=shards, shard_partition=partition)
        )
        result = Simulation(
            topology=topo,
            jobs=jobs,
            strategy=controller,
            config=SimConfig(
                event_engine=False,
                max_cycles=cycles,
                stop_when_complete=False,
            ),
            seed=0,
        ).run()
        out[partition] = {
            "total_reconcile_s": sum(
                s.time_reconcile for s in result.cycle_stats
            ),
            "total_reconciled_directives": sum(
                d.reconciled_directives for d in controller.decisions
            ),
            "total_directives": sum(
                len(d.directives) for d in controller.decisions
            ),
            "peak_shard_state_bytes": max(
                (s.shard_state_bytes for s in result.cycle_stats), default=0
            ),
        }
    return out


def quality_arm(num_jobs: int, blocks: int, shards: int) -> dict:
    """Run to completion (stride=1); report per-job completion times."""
    topo, jobs = build_scenario(num_jobs, blocks)
    controller = BDSController(BDSConfig(shards=shards))
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=controller,
        config=SimConfig(event_engine=True),
        seed=0,
    )
    result = sim.run()
    return {
        "shards": shards,
        "all_complete": result.all_complete,
        "job_completion": dict(result.job_completion),
        "mean_completion_s": (
            sum(result.job_completion.values()) / len(result.job_completion)
            if result.job_completion
            else 0.0
        ),
    }


def quality_delta(base: dict, sharded: dict) -> float:
    """Mean relative per-job completion-time delta vs the baseline."""
    deltas = []
    for job_id, t_base in base["job_completion"].items():
        t_shard = sharded["job_completion"][job_id]
        deltas.append((t_shard - t_base) / t_base if t_base else 0.0)
    return sum(deltas) / len(deltas) if deltas else 0.0


def process_mode_arm(
    num_jobs: int, blocks: int, shards: int, cycles: int
) -> dict:
    """Wall-clock of process fan-out vs in-process at one scale."""
    out = {}
    for mode in ("inprocess", "process"):
        topo, jobs = build_scenario(num_jobs, blocks)
        controller = BDSController(
            BDSConfig(
                shards=shards,
                shard_mode=mode,
                max_blocks_per_cycle=TIMED_ARM_CAP,
            )
        )
        sim = Simulation(
            topology=topo,
            jobs=jobs,
            strategy=controller,
            config=SimConfig(
                event_engine=False,
                max_cycles=cycles,
                stop_when_complete=False,
            ),
            seed=0,
        )
        started = _time.perf_counter()
        result = sim.run()
        controller.shutdown()
        out[mode] = {
            "total_decide_s": sum(s.time_decide for s in result.cycle_stats),
            "run_wall_s": _time.perf_counter() - started,
        }
    out["speedup"] = (
        out["inprocess"]["total_decide_s"] / out["process"]["total_decide_s"]
        if out["process"]["total_decide_s"] > 0
        else 0.0
    )
    return out


#: Arm kind -> callable; each runs in its own interpreter (see below).
ARM_KINDS = {
    "timed": timed_cycles,
    "quality": quality_arm,
    "process_mode": process_mode_arm,
    "partition_compare": partition_compare_arm,
}


def run_arm(kind: str, repeats: int = 1, **kwargs) -> dict:
    """Run one arm in a fresh interpreter and return its result dict.

    Arms measure cold cycles, and a cold cycle only exists in a clean
    process: allocator arenas and GC generations grown by earlier arms
    inflate later cold timings by >2x at the 10^7 scale when everything
    shares one interpreter.

    ``repeats`` > 1 (timed arms) runs the arm that many times and keeps
    the run with the smallest max cycle wall: the work is deterministic,
    so run-to-run spread is pure scheduler/steal noise from the shared
    host and the minimum is the robust estimator of intrinsic cost. All
    repeats' maxima are recorded in the result for inspection.
    """
    spec = {"kind": kind, **kwargs}
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH")) if p
    )
    # Keep glibc from mmap-ing (and returning to the OS on free) the
    # multi-MB numpy temporaries the kernel allocates every cycle: each
    # munmap/mmap round trip re-faults tens of MB of pages per decide,
    # which on a virtualized host costs more than the arithmetic being
    # measured. Raising both thresholds keeps the arena warm so only the
    # first cycle pays the faults — matching how a long-lived controller
    # process behaves.
    env.setdefault("MALLOC_MMAP_THRESHOLD_", str(256 * 1024 * 1024))
    env.setdefault("MALLOC_TRIM_THRESHOLD_", str(256 * 1024 * 1024))
    best = None
    repeat_maxes = []
    for _ in range(max(1, repeats)):
        proc = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--arm",
             json.dumps(spec)],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"bench arm {spec} failed:\n{proc.stderr[-2000:]}"
            )
        result = json.loads(proc.stdout)
        if kind != "timed":
            return result
        repeat_maxes.append(result["max_cycle_wall_s"])
        if (
            best is None
            or result["max_cycle_wall_s"] < best["max_cycle_wall_s"]
        ):
            best = result
    if len(repeat_maxes) > 1:
        best["repeat_max_walls_s"] = repeat_maxes
    return best


def run_bench(quick: bool, with_process_mode: bool = False) -> dict:
    scales = QUICK_SCALES if quick else FULL_SCALES
    payload = {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "dt_seconds": DT_SECONDS,
        "quality_tolerance": QUALITY_TOLERANCE,
        "scales": {},
    }

    for label, (num_jobs, blocks) in scales.items():
        pairs = num_jobs * blocks * DST_DCS
        entry = {"pairs": pairs, "jobs": num_jobs, "blocks_per_job": blocks}
        if label == "1e7":
            # Single-controller baseline: one cold cycle is enough to
            # show the ΔT blow-through; sharded arms run a full stagger.
            entry["curve"] = [
                run_arm(
                    "timed",
                    repeats=3,
                    num_jobs=num_jobs,
                    blocks=blocks,
                    shards=1,
                    stride=1,
                    cycles=1,
                    cap=TIMED_ARM_CAP,
                )
            ]
            for shards in (8, 16):
                entry["curve"].append(
                    run_arm(
                        "timed",
                        repeats=3,
                        num_jobs=num_jobs,
                        blocks=blocks,
                        shards=shards,
                        stride=shards,
                        cycles=shards + 2,
                        cap=TIMED_ARM_CAP,
                    )
                )
            # Adaptive stride at the ΔT-critical scale: starts fully
            # staggered and narrows only as measured walls show slack.
            entry["auto_stride"] = run_arm(
                "timed",
                repeats=2,
                num_jobs=num_jobs,
                blocks=blocks,
                shards=8,
                stride="auto",
                cycles=10,
                cap=TIMED_ARM_CAP,
            )
        else:
            shard_counts = (1, 2, 4) if quick else (1, 2, 4, 8)
            entry["curve"] = [
                run_arm(
                    "timed",
                    repeats=1 if quick else 2,
                    num_jobs=num_jobs,
                    blocks=blocks,
                    shards=shards,
                    stride=max(1, shards),
                    cycles=max(6, shards + 2),
                )
                for shards in shard_counts
            ]
        payload["scales"][label] = entry

    # Quality arms at the smallest scale (stride=1, run to completion).
    label = "2e4" if quick else "1e5"
    num_jobs, blocks = scales[label]
    base = run_arm("quality", num_jobs=num_jobs, blocks=blocks, shards=1)
    quality = {"baseline_mean_completion_s": base["mean_completion_s"]}
    for shards in (2, 4):
        arm = run_arm(
            "quality", num_jobs=num_jobs, blocks=blocks, shards=shards
        )
        quality[f"shards_{shards}"] = {
            "all_complete": arm["all_complete"],
            "mean_completion_s": arm["mean_completion_s"],
            "mean_delta": quality_delta(base, arm),
        }
    payload["quality"] = quality

    # Partition policy compare on the pod workload (see module docstring).
    if quick:
        jobs_per_pod, pod_blocks = 2, 312
    else:
        jobs_per_pod, pod_blocks = 4, 3_125
    payload["partition_compare"] = run_arm(
        "partition_compare",
        jobs_per_pod=jobs_per_pod,
        blocks=pod_blocks,
        shards=PODS,
        cycles=6,
    )

    if with_process_mode:
        num_jobs, blocks = scales["2e4" if quick else "1e6"]
        payload["process_mode"] = run_arm(
            "process_mode",
            num_jobs=num_jobs,
            blocks=blocks,
            shards=4,
            cycles=6,
        )

    return payload


def format_report(payload: dict) -> str:
    lines = [
        f"[shard scaling] quick={payload['quick']} "
        f"cpus={payload['cpu_count']}"
    ]
    for label, entry in payload["scales"].items():
        lines.append(f"scale {label}: {entry['pairs']} pairs")
        for arm in entry["curve"]:
            lines.append(
                f"  shards={arm['shards']:<3} stride={arm['stride']:<3} "
                f"max cycle wall {arm['max_cycle_wall_s']:.3f}s  "
                f"mean {arm['mean_cycle_wall_s']:.3f}s  "
                f"reconcile {arm['total_reconcile_s']*1e3:.2f}ms "
                f"({arm['reconcile_fraction']:.2%} of decide)"
            )
            if arm["shards"] > 1:
                lines.append(
                    f"      peak shard state "
                    f"{arm['peak_shard_state_bytes']/1e6:.2f}MB poss + "
                    f"{arm['peak_shard_candidate_bytes']/1e6:.2f}MB cand "
                    f"(store {arm['store_state_bytes']/1e6:.2f}MB)"
                )
        if "auto_stride" in entry:
            arm = entry["auto_stride"]
            lines.append(
                f"  auto stride (shards={arm['shards']}): max cycle wall "
                f"{arm['max_cycle_wall_s']:.3f}s, effective stride up to "
                f"{arm['max_effective_stride']}"
            )
    if "partition_compare" in payload:
        pc = payload["partition_compare"]
        lines.append(
            f"partition compare (pods={pc['pods']}, shards={pc['shards']}):"
        )
        for policy in ("hash", "affinity"):
            arm = pc[policy]
            lines.append(
                f"  {policy:<9} clips "
                f"{arm['total_reconciled_directives']:<6} "
                f"reconcile {arm['total_reconcile_s']*1e3:.2f}ms  "
                f"peak shard state {arm['peak_shard_state_bytes']/1e6:.2f}MB"
            )
    q = payload["quality"]
    lines.append(
        f"quality: baseline mean completion "
        f"{q['baseline_mean_completion_s']:.1f}s"
    )
    for key, arm in q.items():
        if key.startswith("shards_"):
            lines.append(
                f"  {key}: mean {arm['mean_completion_s']:.1f}s "
                f"(delta {arm['mean_delta']:+.2%}, "
                f"complete={arm['all_complete']})"
            )
    if "process_mode" in payload:
        pm = payload["process_mode"]
        lines.append(
            f"process mode: inprocess {pm['inprocess']['total_decide_s']:.3f}s "
            f"vs process {pm['process']['total_decide_s']:.3f}s "
            f"-> {pm['speedup']:.2f}x"
        )
    return "\n".join(lines)


def check_floors(payload: dict) -> list:
    """Full-scale acceptance floors; returns failure messages."""
    failures = []
    curve_1e6 = payload["scales"]["1e6"]["curve"]
    walls = [arm["max_cycle_wall_s"] for arm in curve_1e6]
    for i in range(1, len(walls)):
        # Monotone shard-scaling curve (10% noise slack).
        if walls[i] > walls[i - 1] * 1.10:
            failures.append(
                f"10^6 curve not monotone: shards="
                f"{curve_1e6[i]['shards']} wall {walls[i]:.3f}s > "
                f"shards={curve_1e6[i-1]['shards']} {walls[i-1]:.3f}s"
            )
    for arm in curve_1e6:
        if arm["shards"] > 1 and (
            arm["reconcile_fraction"] > RECONCILE_OVERHEAD_CEILING
        ):
            failures.append(
                f"reconcile overhead {arm['reconcile_fraction']:.2%} at "
                f"10^6/{arm['shards']} shards exceeds "
                f"{RECONCILE_OVERHEAD_CEILING:.0%}"
            )
    # Per-shard memory floor: possession+candidate state ~ 1/k of the
    # single-controller state, within the imbalance allowance.
    base = curve_1e6[0]
    base_state = base["store_state_bytes"] + base["base_candidate_bytes"]
    for arm in curve_1e6:
        k = arm["shards"]
        if k <= 1:
            continue
        peak = (
            arm["peak_shard_state_bytes"] + arm["peak_shard_candidate_bytes"]
        )
        ceiling = MEMORY_SCALING_SLACK * base_state / k
        if not 0 < peak <= ceiling:
            failures.append(
                f"10^6 shards={k}: peak shard state {peak} bytes outside "
                f"(0, {ceiling:.0f}] = {MEMORY_SCALING_SLACK}x of the "
                f"1/{k} share of {base_state} bytes"
            )
    for arm in payload["scales"]["1e7"]["curve"]:
        if arm["shards"] > 1 and arm["max_cycle_wall_s"] >= DT_SECONDS:
            failures.append(
                f"10^7 pairs with shards={arm['shards']}: max cycle wall "
                f"{arm['max_cycle_wall_s']:.2f}s not under {DT_SECONDS}s dt"
            )
    auto = payload["scales"]["1e7"].get("auto_stride")
    if auto is not None:
        if auto["max_cycle_wall_s"] >= DT_SECONDS:
            failures.append(
                f"auto stride at 10^7: max cycle wall "
                f"{auto['max_cycle_wall_s']:.2f}s not under {DT_SECONDS}s dt"
            )
        if auto["max_effective_stride"] <= 1:
            failures.append(
                "auto stride at 10^7 never widened past 1 "
                "(adaptive control not engaged)"
            )
    pc = payload.get("partition_compare")
    if pc is not None:
        if (
            pc["affinity"]["total_reconciled_directives"]
            > pc["hash"]["total_reconciled_directives"]
        ):
            failures.append(
                f"affinity clips "
                f"{pc['affinity']['total_reconciled_directives']} exceed "
                f"hash clips {pc['hash']['total_reconciled_directives']} "
                "on the pod workload"
            )
    for key, arm in payload["quality"].items():
        if key.startswith("shards_"):
            if not arm["all_complete"]:
                failures.append(f"quality arm {key} did not complete")
            elif arm["mean_delta"] > QUALITY_TOLERANCE:
                failures.append(
                    f"quality {key}: mean completion delta "
                    f"{arm['mean_delta']:+.2%} over the "
                    f"{QUALITY_TOLERANCE:.0%} tolerance"
                )
    if "process_mode" in payload:
        pm = payload["process_mode"]
        if pm["speedup"] < PROCESS_SPEEDUP_FLOOR:
            failures.append(
                f"process-mode speedup {pm['speedup']:.2f}x below "
                f"{PROCESS_SPEEDUP_FLOOR}x on a "
                f"{payload['cpu_count']}-CPU host"
            )
    return failures


def shard_smoke() -> list:
    """CI smoke assertions at quick scale; returns failure messages.

    (a) shard-local memory: with 4 shards each mirror's possession bytes
        stay at or under half the single-controller store;
    (b) partition policy: affinity's reconciliation clip count on the
        pod workload is no worse than hash's.
    """
    failures = []
    num_jobs, blocks = QUICK_SCALES["2e4"]
    base = run_arm("timed", num_jobs=num_jobs, blocks=blocks, shards=1,
                   stride=1, cycles=2)
    sharded = run_arm("timed", num_jobs=num_jobs, blocks=blocks, shards=4,
                      stride=1, cycles=2, partition="affinity")
    peak = sharded["peak_shard_state_bytes"]
    if not 0 < peak <= 0.5 * base["store_state_bytes"]:
        failures.append(
            f"shards=4 peak possession bytes {peak} not within half of "
            f"the shards=1 store ({base['store_state_bytes']} bytes)"
        )
    pc = run_arm("partition_compare", jobs_per_pod=2, blocks=312,
                 shards=PODS, cycles=6)
    if (
        pc["affinity"]["total_reconciled_directives"]
        > pc["hash"]["total_reconciled_directives"]
    ):
        failures.append(
            f"affinity clips {pc['affinity']['total_reconciled_directives']}"
            f" exceed hash clips {pc['hash']['total_reconciled_directives']}"
            " on the smoke pod workload"
        )
    print(
        f"[shard smoke] possession ratio "
        f"{peak / base['store_state_bytes']:.3f} (floor 0.5); clips "
        f"affinity={pc['affinity']['total_reconciled_directives']} vs "
        f"hash={pc['hash']['total_reconciled_directives']}"
    )
    return failures


def test_shard_scaling_quick(benchmark, report):
    """Pytest entry: quick-scale smoke — sharded arms run and complete."""
    payload = benchmark.pedantic(
        lambda: run_bench(quick=True), rounds=1, iterations=1
    )
    report("\n" + format_report(payload))
    curve = payload["scales"]["2e4"]["curve"]
    assert [arm["shards"] for arm in curve] == [1, 2, 4]
    for arm in curve:
        assert arm["cycles"] > 0
        assert arm["reconcile_fraction"] < 0.5
        if arm["shards"] > 1:
            assert arm["peak_shard_state_bytes"] > 0
            assert arm["peak_shard_candidate_bytes"] > 0
    pc = payload["partition_compare"]
    assert (
        pc["affinity"]["total_reconciled_directives"]
        <= pc["hash"]["total_reconciled_directives"]
    )
    for key, arm in payload["quality"].items():
        if key.startswith("shards_"):
            assert arm["all_complete"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small state for CI smoke runs (no floors asserted)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_shards.json",
        help="where to write the JSON result (default: ./BENCH_shards.json)",
    )
    parser.add_argument(
        "--arm",
        metavar="SPEC",
        help="internal: run one arm from a JSON spec and print its result",
    )
    parser.add_argument(
        "--shard-smoke",
        action="store_true",
        help="CI smoke: assert the shard-local memory ratio and the "
        "affinity-vs-hash clip comparison at quick scale, then exit",
    )
    args = parser.parse_args(argv)

    if args.arm:
        spec = json.loads(args.arm)
        fn = ARM_KINDS[spec.pop("kind")]
        print(json.dumps(fn(**spec)))
        return 0

    if args.shard_smoke:
        failures = shard_smoke()
        for message in failures:
            print(f"FAIL: {message}", file=sys.stderr)
        return 1 if failures else 0

    cpus = os.cpu_count() or 1
    with_process = not args.quick and cpus >= PROCESS_MODE_MIN_CPUS
    payload = run_bench(quick=args.quick, with_process_mode=with_process)
    print(format_report(payload))

    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    if args.quick:
        return 0
    failures = check_floors(payload)
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Event-driven simulator core: equivalence, fast-forward, and time grid.

The event engine (``SimConfig.event_engine``, the default) adds decision
reuse and analytic multi-cycle fast-forward on top of the fixed-tick loop.
Both shortcuts claim *bit-identical* results — these tests hold them to it:

* randomized property runs compare :meth:`SimResult.fingerprint` between
  the two engines across failures, background traffic, late arrivals,
  pre-seeded copies, and controller replica elections;
* a steady-state scenario asserts fast-forward actually engages (the
  speedup claim is vacuous otherwise);
* a million-cycle run pins the integer-cycle time grid: completion
  timestamps stay exact multiples of ΔT no matter how far time advances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.runner import make_strategy
from repro.core.fault import ControllerReplicaSet
from repro.net.background import BackgroundTraffic
from repro.net.cycle_cache import DecisionReuseState, first_cycle_at_or_after
from repro.net.failures import FailureEvent, FailureSchedule
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps

SEED = 41


def _scenario(
    seed: int,
    strategy_name: str = "bds",
    event_engine: bool = True,
    with_failures: bool = False,
    background: str = "none",
    late_arrival: bool = False,
    pre_seeded: bool = False,
    replicas: bool = False,
    max_cycles: int = 600,
) -> SimResult:
    """One deterministic run; every knob changes the scenario, not the seed."""
    rng = np.random.default_rng(seed)
    num_dcs = int(rng.integers(3, 6))
    topo = Topology.full_mesh(
        num_dcs=num_dcs,
        servers_per_dc=int(rng.integers(2, 4)),
        wan_capacity=float(rng.uniform(5, 50)) * MBps,
        uplink=float(rng.uniform(3, 25)) * MBps,
    )
    jobs = []
    for j in range(int(rng.integers(1, 3))):
        dsts = tuple(
            f"dc{i}" for i in range(1, num_dcs) if i == 1 or rng.uniform() < 0.7
        )
        job = MulticastJob(
            job_id=f"job{j}",
            src_dc="dc0",
            dst_dcs=dsts,
            total_bytes=float(rng.uniform(16, 96)) * MB,
            block_size=4 * MB,
            arrival_time=float(rng.uniform(30, 120)) if late_arrival and j else 0.0,
        )
        job.bind(topo)
        jobs.append(job)
    failures = None
    if with_failures:
        failures = FailureSchedule(
            [
                FailureEvent(cycle=2, kind="agent_fail", target="dc1-s0"),
                FailureEvent(cycle=3, kind="link_fail", target=("dc0", "dc1")),
                FailureEvent(cycle=8, kind="agent_recover", target="dc1-s0"),
                FailureEvent(cycle=9, kind="link_recover", target=("dc0", "dc1")),
            ]
            + (
                [
                    FailureEvent(cycle=4, kind="replica_fail", target="controller-0"),
                    FailureEvent(cycle=7, kind="replica_recover", target="controller-0"),
                ]
                if replicas
                else []
            )
        )
    bg = None
    if background == "static":
        bg = BackgroundTraffic(
            base_fraction=0.2, diurnal_fraction=0.0, noise_fraction=0.0, seed=seed
        )
    elif background == "stepped":
        bg = BackgroundTraffic(
            base_fraction=0.2,
            diurnal_fraction=0.1,
            noise_fraction=0.02,
            seed=seed,
            step_seconds=30.0,
        )
    elif background == "continuous":
        bg = BackgroundTraffic(
            base_fraction=0.2, diurnal_fraction=0.1, noise_fraction=0.02, seed=seed
        )
    seeded = None
    if pre_seeded:
        # Drop the first job's first two blocks onto a destination server.
        job = jobs[0]
        dst = job.assigned_server(job.dst_dcs[0], job.blocks[0].block_id)
        seeded = {dst: [b for b in job.blocks[:2]]}
    sim = Simulation(
        topology=topo,
        jobs=jobs,
        strategy=make_strategy(strategy_name, seed=SEED),
        config=SimConfig(max_cycles=max_cycles, event_engine=event_engine),
        background=bg,
        failures=failures,
        seed=SEED,
        pre_seeded=seeded,
        replica_set=ControllerReplicaSet() if replicas else None,
    )
    return sim.run()


class TestEngineEquivalence:
    """Event engine ≡ tick loop, fingerprint for fingerprint."""

    @pytest.mark.parametrize("strategy", ["bds", "direct", "chain", "akamai"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_plain_scenarios(self, strategy, seed):
        a = _scenario(seed, strategy, event_engine=True)
        b = _scenario(seed, strategy, event_engine=False)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("strategy", ["bds", "chain"])
    @pytest.mark.parametrize("seed", [3, 4])
    def test_with_failures(self, strategy, seed):
        a = _scenario(seed, strategy, event_engine=True, with_failures=True)
        b = _scenario(seed, strategy, event_engine=False, with_failures=True)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("background", ["static", "stepped", "continuous"])
    @pytest.mark.parametrize("seed", [5, 6])
    def test_with_background(self, background, seed):
        a = _scenario(seed, event_engine=True, background=background)
        b = _scenario(seed, event_engine=False, background=background)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("strategy", ["bds", "direct"])
    @pytest.mark.parametrize("seed", [7, 8])
    def test_late_arrivals(self, strategy, seed):
        a = _scenario(seed, strategy, event_engine=True, late_arrival=True)
        b = _scenario(seed, strategy, event_engine=False, late_arrival=True)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("seed", [9, 10])
    def test_pre_seeded_copies(self, seed):
        a = _scenario(seed, event_engine=True, pre_seeded=True)
        b = _scenario(seed, event_engine=False, pre_seeded=True)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("seed", [11])
    def test_replica_elections(self, seed):
        a = _scenario(
            seed, event_engine=True, with_failures=True, replicas=True
        )
        b = _scenario(
            seed, event_engine=False, with_failures=True, replicas=True
        )
        assert a.fingerprint() == b.fingerprint()

    def test_kitchen_sink(self):
        """Everything at once: the union of invalidation triggers."""
        kwargs = dict(
            with_failures=True,
            background="stepped",
            late_arrival=True,
            pre_seeded=True,
        )
        a = _scenario(12, "bds", event_engine=True, **kwargs)
        b = _scenario(12, "bds", event_engine=False, **kwargs)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("event_engine", [True, False])
    def test_golden_repeatability(self, event_engine):
        """Same engine, same seed, run twice: bit-identical (golden)."""
        a = _scenario(13, "bds", event_engine=event_engine)
        b = _scenario(13, "bds", event_engine=event_engine)
        assert a.fingerprint() == b.fingerprint()


class TestFastForwardEngages:
    """The speedup machinery must actually fire on steady-state runs."""

    def _steady(self, event_engine: bool, strategy: str = "direct"):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=2 * MBps, uplink=1 * MBps
        )
        job = MulticastJob(
            job_id="steady",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=512 * MB,
            block_size=64 * MB,
        )
        job.bind(topo)
        sim = Simulation(
            topology=topo,
            jobs=[job],
            strategy=make_strategy(strategy, seed=SEED),
            config=SimConfig(max_cycles=5000, event_engine=event_engine),
            seed=SEED,
        )
        return sim.run()

    @pytest.mark.parametrize("strategy", ["direct", "bds"])
    def test_fast_forward_counts(self, strategy):
        result = self._steady(True, strategy)
        assert result.all_complete
        assert result.cycles_fast_forwarded > 0
        assert result.cycles_decision_reused > 0
        # Accounting closes: every simulated cycle is executed or skipped.
        assert result.cycles_run == len(result.cycle_stats)

    def test_tick_engine_never_skips(self):
        result = self._steady(False)
        assert result.cycles_fast_forwarded == 0
        assert result.cycles_decision_reused == 0
        assert not any(s.fast_forwarded for s in result.cycle_stats)

    def test_skipped_cycles_marked(self):
        result = self._steady(True)
        flagged = sum(1 for s in result.cycle_stats if s.fast_forwarded)
        assert flagged == result.cycles_fast_forwarded

    def test_fingerprints_match(self):
        assert self._steady(True).fingerprint() == self._steady(False).fingerprint()


class TestIntegerCycleGrid:
    """Satellite: timestamps derive from integer cycle counts, always."""

    def test_completion_times_exact_multiples_at_cycle_1e6(self):
        """A job arriving near cycle 10⁶ still completes on the exact grid.

        The legacy loop accumulated ``now + dt`` float additions; after a
        million cycles ``now`` would have drifted off the grid and
        completion timestamps with it. Deriving every timestamp from the
        integer cycle index keeps ``c * dt`` exact for any c.
        """
        dt = 3.0
        arrival_cycle = 999_990
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=50 * MBps, uplink=25 * MBps
        )
        job = MulticastJob(
            job_id="late",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=16 * MB,
            block_size=4 * MB,
            arrival_time=arrival_cycle * dt,
        )
        job.bind(topo)
        sim = Simulation(
            topology=topo,
            jobs=[job],
            strategy=make_strategy("direct", seed=SEED),
            config=SimConfig(
                max_cycles=1_100_000,
                cycle_seconds=dt,
                event_engine=True,
                record_cycle_stats=False,  # 10⁶ CycleStats would dominate RAM
            ),
            seed=SEED,
        )
        result = sim.run()
        assert result.all_complete
        times = list(result.server_completion.values()) + list(
            result.job_completion.values()
        )
        assert times
        for t in times:
            cycles = t / dt
            # Bitwise on-grid: t is exactly (some integer) * dt.
            assert cycles == int(cycles)
            assert int(cycles) >= arrival_cycle

    def test_arrival_grid_matches_legacy_predicate(self):
        """first_cycle_at_or_after inverts the `arrival <= c*dt` test exactly."""
        for dt in (1.0, 1.5, 3.0, 7.0):
            for arrival in (0.0, 0.1, dt, 2.5 * dt, 1e6 * dt, 1e6 * dt + 1e-7):
                c = first_cycle_at_or_after(arrival, dt)
                assert arrival <= c * dt
                assert c == 0 or arrival > (c - 1) * dt


class TestPerJobCadence:
    """Satellite: jobs may request a coarser decision cadence."""

    def _job(self, cycle_seconds, arrival_time=0.0):
        return MulticastJob(
            job_id="cadence",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=8 * MB,
            block_size=4 * MB,
            arrival_time=arrival_time,
            cycle_seconds=cycle_seconds,
        )

    def _sim(self, job):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=50 * MBps, uplink=25 * MBps
        )
        job.bind(topo)
        return Simulation(
            topology=topo,
            jobs=[job],
            strategy=make_strategy("direct", seed=SEED),
            config=SimConfig(max_cycles=100, cycle_seconds=3.0),
            seed=SEED,
        )

    def test_arrival_quantized_to_cadence(self):
        # Arrives at t=4s; cadence 6s quantizes the first active cycle up
        # to the next multiple of 2 cycles (cycle 2, t=6s).
        sim = self._sim(self._job(6.0, arrival_time=4.0))
        assert sim._arrival_cycle_by_idx == [2]
        result = sim.run()
        assert result.all_complete

    def test_non_multiple_cadence_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            self._sim(self._job(4.0))

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            self._job(-3.0)


class TestBackgroundChangePoints:
    """next_change_after / state_token drive reuse and fast-forward."""

    def test_static_background_never_changes(self):
        bg = BackgroundTraffic(diurnal_fraction=0.0, noise_fraction=0.0, seed=1)
        assert bg.is_static()
        assert bg.next_change_after(0, 3.0) is None
        assert bg.state_token(0, 3.0) == bg.state_token(12345, 3.0)

    def test_continuous_background_changes_every_cycle(self):
        bg = BackgroundTraffic(diurnal_fraction=0.2, noise_fraction=0.05, seed=1)
        assert not bg.is_static()
        assert bg.next_change_after(7, 3.0) == 8
        assert bg.state_token(7, 3.0) != bg.state_token(8, 3.0)

    def test_stepped_background_changes_at_step_boundaries(self):
        bg = BackgroundTraffic(
            diurnal_fraction=0.2, noise_fraction=0.05, seed=1, step_seconds=30.0
        )
        dt = 3.0  # 10 cycles per step
        nxt = bg.next_change_after(0, dt)
        assert nxt == 10
        # All cycles inside a step share a token; steps differ.
        assert bg.state_token(0, dt) == bg.state_token(9, dt)
        assert bg.state_token(9, dt) != bg.state_token(10, dt)

    def test_stepped_usage_is_call_order_independent(self):
        mk = lambda: BackgroundTraffic(
            diurnal_fraction=0.2, noise_fraction=0.05, seed=9, step_seconds=30.0
        )
        link = ("wan", "dc0", "dc1")
        a, b = mk(), mk()
        times = [0.0, 90.0, 30.0, 0.0, 60.0]
        got_a = [a.usage_fraction(link, t) for t in times]
        got_b = [b.usage_fraction(link, t) for t in reversed(times)]
        assert got_a == list(reversed(got_b))

    def test_decision_reuse_state_horizon(self):
        state = DecisionReuseState()
        state.store_decision(("k",), cycle=5, horizon=3, directives=[], resources=[])
        assert state.valid_for(6, ("k",))
        assert state.valid_for(8, ("k",))
        assert not state.valid_for(9, ("k",))  # past the horizon
        assert not state.valid_for(6, ("other",))  # key mismatch


class TestConfigValidation:
    def test_link_stats_require_cycle_stats(self):
        with pytest.raises(ValueError, match="record_cycle_stats"):
            SimConfig(record_link_stats=True, record_cycle_stats=False)

    def test_cycle_stats_off_still_counts(self):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=50 * MBps, uplink=25 * MBps
        )
        job = MulticastJob(
            job_id="nostats",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=16 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        sim = Simulation(
            topology=topo,
            jobs=[job],
            strategy=make_strategy("direct", seed=SEED),
            config=SimConfig(max_cycles=500, record_cycle_stats=False),
            seed=SEED,
        )
        result = sim.run()
        assert result.all_complete
        assert result.cycle_stats == []
        assert result.cycles_run > 0
        assert result.sim_time == result.cycles_run * 3.0

#!/usr/bin/env python3
"""Scenario: capacity planning for a replication deadline.

Operations question the paper's system immediately raises: "we must
replicate tonight's 1 GB build to all regions within a minute — how
much WAN bandwidth do we need to buy, and does the overlay change the
answer?" This example sweeps WAN link capacity under both BDS and direct
replication and reports the cheapest capacity meeting the deadline for
each, quantifying how much provisioning the overlay saves.

Run:  python examples/capacity_planning.py
"""

from repro.analysis.sweeps import compare_sweeps
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps, format_duration, format_rate

DEADLINE_S = 60.0
WAN_CAPACITIES = [10 * MBps, 20 * MBps, 40 * MBps, 80 * MBps, 160 * MBps]


def scenario(wan_capacity: float):
    topo = Topology.full_mesh(
        num_dcs=6,
        servers_per_dc=4,
        wan_capacity=wan_capacity,
        uplink=30 * MBps,
    )
    job = MulticastJob(
        job_id="nightly-build",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 6)),
        total_bytes=1 * GB,
        block_size=4 * MB,
    )
    job.bind(topo)
    return topo, [job]


def main() -> None:
    print(f"deadline: replicate 1 GB to 5 regions within {DEADLINE_S:.0f}s\n")
    sweeps = compare_sweeps(
        "wan_capacity",
        WAN_CAPACITIES,
        scenario,
        strategies=("direct", "bds"),
        seed=11,
    )

    header = f"{'WAN capacity':>14} | {'direct':>10} | {'bds':>10}"
    print(header)
    print("-" * len(header))
    for i, capacity in enumerate(WAN_CAPACITIES):
        direct_t = sweeps["direct"].points[i].completion_time
        bds_t = sweeps["bds"].points[i].completion_time
        print(
            f"{format_rate(capacity):>14} | "
            f"{format_duration(direct_t):>10} | {format_duration(bds_t):>10}"
        )

    print()
    for strategy in ("direct", "bds"):
        cheapest = sweeps[strategy].cheapest_meeting_deadline(DEADLINE_S)
        if cheapest is None:
            print(f"{strategy:>7}: no sampled capacity meets the deadline")
        else:
            print(
                f"{strategy:>7}: needs {format_rate(cheapest.value)} per link "
                f"(finishes in {format_duration(cheapest.completion_time)})"
            )


if __name__ == "__main__":
    main()

"""repro — a from-scratch reproduction of BDS (EuroSys 2018).

BDS is a fully centralized application-level multicast overlay network for
inter-datacenter bulk-data replication. This package implements the
complete system described in the paper — the centralized controller with
decoupled scheduling (rarest-first) and routing (max-throughput MCF with an
FPTAS), dynamic bandwidth separation, fault tolerance — together with the
network/overlay substrates it runs on and the baselines it is evaluated
against (Gingko, Bullet, Akamai, chain, direct).

Quickstart::

    from repro import (
        Topology, MulticastJob, Simulation, SimConfig, BDSController,
    )

    topo = Topology.full_mesh(
        num_dcs=4, servers_per_dc=4, wan_capacity=1e9, uplink=5e7)
    job = MulticastJob(
        job_id="demo", src_dc="dc0", dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=2e8)
    job.bind(topo)
    result = Simulation(topo, [job], BDSController(), SimConfig()).run()
    print(result.completion_time("demo"))
"""

from repro.core import (
    BDSConfig,
    BDSController,
    BandwidthEnforcer,
    ControllerReplicaSet,
    JointFormulation,
    NetworkMonitor,
    RarestFirstScheduler,
    BDSRouter,
    StandardLPRouter,
)
from repro.net import (
    BackgroundTraffic,
    ClusterView,
    FailureEvent,
    FailureSchedule,
    LatencyModel,
    SimConfig,
    SimResult,
    Simulation,
    Topology,
    TransferDirective,
)
from repro.overlay import Block, MulticastJob, PossessionIndex, split_into_blocks
from repro.baselines import (
    AkamaiStrategy,
    BulletStrategy,
    ChainStrategy,
    DirectStrategy,
    GingkoStrategy,
    OverlayStrategy,
    ideal_completion_time,
)
from repro.workload import WorkloadGenerator, TransferRequest

__version__ = "1.0.0"

__all__ = [
    "BDSConfig",
    "BDSController",
    "BandwidthEnforcer",
    "ControllerReplicaSet",
    "JointFormulation",
    "NetworkMonitor",
    "RarestFirstScheduler",
    "BDSRouter",
    "StandardLPRouter",
    "BackgroundTraffic",
    "ClusterView",
    "FailureEvent",
    "FailureSchedule",
    "LatencyModel",
    "SimConfig",
    "SimResult",
    "Simulation",
    "Topology",
    "TransferDirective",
    "Block",
    "MulticastJob",
    "PossessionIndex",
    "split_into_blocks",
    "AkamaiStrategy",
    "BulletStrategy",
    "ChainStrategy",
    "DirectStrategy",
    "GingkoStrategy",
    "OverlayStrategy",
    "ideal_completion_time",
    "WorkloadGenerator",
    "TransferRequest",
    "__version__",
]

#!/usr/bin/env python3
"""Quickstart: replicate one bulk file from one DC to three others with BDS.

Builds a small fully-meshed inter-DC topology, submits a single multicast
job, runs the BDS controller to completion, and prints what happened —
including how much of the data travelled over overlay paths rather than
straight from the origin DC.

Run:  python examples/quickstart.py
"""

from repro import (
    BDSController,
    MulticastJob,
    SimConfig,
    Simulation,
    Topology,
    ideal_completion_time,
)
from repro.analysis.metrics import summarize
from repro.utils.units import GB, MB, MBps, format_bytes, format_duration


def main() -> None:
    # 4 datacenters, 4 servers each; 1 GB/s WAN links, 50 MB/s server NICs.
    topology = Topology.full_mesh(
        num_dcs=4,
        servers_per_dc=4,
        wan_capacity=1 * GB,
        uplink=50 * MBps,
    )

    # Replicate 800 MB from dc0 to every other DC, in 2 MB blocks
    # (the paper's default block size).
    job = MulticastJob(
        job_id="user-logs",
        src_dc="dc0",
        dst_dcs=("dc1", "dc2", "dc3"),
        total_bytes=800 * MB,
    )
    job.bind(topology)

    controller = BDSController(seed=42)
    simulation = Simulation(
        topology=topology,
        jobs=[job],
        strategy=controller,
        config=SimConfig(cycle_seconds=3.0),
        seed=42,
    )
    result = simulation.run()

    completion = result.completion_time("user-logs")
    bound = ideal_completion_time(topology, job)
    print(f"replicated {format_bytes(job.total_bytes)} to {len(job.dst_dcs)} DCs")
    print(f"completion time : {format_duration(completion)}")
    print(f"analytic bound  : {format_duration(bound)}")
    print(f"cycles run      : {result.cycles_run}")

    server_times = result.server_completion_times("user-logs")
    stats = summarize(server_times)
    print(
        f"per-server times: median {stats.median:.1f}s, "
        f"p90 {stats.p90:.1f}s, max {stats.maximum:.1f}s"
    )

    # How much did the overlay help? Blocks fetched from non-origin DCs
    # travelled over overlay paths (the paper's Fig. 13c measurement).
    fractions = result.store.origin_fraction_by_server()
    overlay_share = 1 - sum(fractions.values()) / len(fractions)
    print(f"bytes via overlay paths: {overlay_share:.0%} of deliveries")

    decision = controller.decisions[0]
    print(
        f"first cycle: scheduled {decision.scheduled_blocks} block deliveries "
        f"as {decision.num_commodities} merged subtasks in "
        f"{decision.total_runtime * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()

"""Speculated delivery status (§5.1 non-blocking update)."""

import pytest

from repro.core import BDSConfig, BDSController
from repro.core.speculation import (
    DeliverySpeculator,
    SpeculatedDelivery,
    SpeculatedView,
)
from repro.net.simulator import SimConfig, Simulation, TransferDirective
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import GB, MB, MBps


@pytest.fixture
def setup():
    topo = Topology.full_mesh(
        num_dcs=2, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
    )
    job = MulticastJob(
        job_id="j",
        src_dc="dc0",
        dst_dcs=("dc1",),
        total_bytes=8 * MB,
        block_size=2 * MB,
    )
    job.bind(topo)
    sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
    return sim.snapshot_view(), job


class TestDeliverySpeculator:
    def test_speculates_blocks_within_horizon(self, setup):
        view, job = setup
        directive = TransferDirective(
            job_id="j",
            block_ids=(("j", 0), ("j", 2)),
            src_server="dc0-s0",
            dst_server="dc1-s0",
            rate_cap=2 * MBps,
        )
        sizes = {b.block_id: b.size for b in job.blocks}
        # Horizon of 1.5 s at 2 MB/s moves 3 MB: block 0 (2 MB) completes,
        # block 2 does not.
        speculator = DeliverySpeculator(horizon_seconds=1.5)
        out = speculator.speculate(view, [directive], sizes)
        assert [d.block_id for d in out] == [("j", 0)]

    def test_uncapped_directives_skipped(self, setup):
        view, job = setup
        directive = TransferDirective(
            job_id="j",
            block_ids=(("j", 0),),
            src_server="dc0-s0",
            dst_server="dc1-s0",
        )
        sizes = {b.block_id: b.size for b in job.blocks}
        assert DeliverySpeculator(10.0).speculate(view, [directive], sizes) == []

    def test_already_delivered_blocks_skipped(self, setup):
        view, job = setup
        block = job.blocks[0]
        view.store.record_delivery(block, "dc0-s0", "dc1-s0", 1.0, "dc0")
        directive = TransferDirective(
            job_id="j",
            block_ids=(block.block_id,),
            src_server="dc0-s0",
            dst_server="dc1-s0",
            rate_cap=100 * MBps,
        )
        sizes = {b.block_id: b.size for b in job.blocks}
        assert DeliverySpeculator(10.0).speculate(view, [directive], sizes) == []

    def test_partial_progress_counts(self, setup):
        view, job = setup
        block = job.blocks[0]
        view._partial[(block.block_id, "dc1-s0")] = block.size - 1000
        directive = TransferDirective(
            job_id="j",
            block_ids=(block.block_id,),
            src_server="dc0-s0",
            dst_server="dc1-s0",
            rate_cap=2000.0,
        )
        sizes = {b.block_id: b.size for b in job.blocks}
        out = DeliverySpeculator(1.0).speculate(view, [directive], sizes)
        assert [d.block_id for d in out] == [block.block_id]

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            DeliverySpeculator(-1.0)


class TestSpeculatedView:
    def test_overlay_reflects_speculation(self, setup):
        view, job = setup
        block = job.blocks[0]
        spec = SpeculatedView(
            view,
            [
                SpeculatedDelivery(
                    block_id=block.block_id,
                    dst_server="dc1-s0",
                    src_server="dc0-s0",
                )
            ],
        )
        assert spec.store.has("dc1-s0", block.block_id)
        assert "dc1-s0" in spec.store.holders(block.block_id)
        assert spec.store.duplicate_count(block.block_id) == 2
        assert spec.store.dc_has_block("dc1", block.block_id)

    def test_underlying_store_unchanged(self, setup):
        view, job = setup
        block = job.blocks[0]
        SpeculatedView(
            view,
            [
                SpeculatedDelivery(
                    block_id=block.block_id,
                    dst_server="dc1-s0",
                    src_server="dc0-s0",
                )
            ],
        )
        assert not view.store.has("dc1-s0", block.block_id)

    def test_pending_deliveries_shrink(self, setup):
        view, job = setup
        block = job.blocks[0]
        spec = SpeculatedView(
            view,
            [
                SpeculatedDelivery(
                    block_id=block.block_id,
                    dst_server=job.assigned_server("dc1", block.block_id),
                    src_server="dc0-s0",
                )
            ],
        )
        before = len(view.pending_deliveries(job))
        after = len(spec.pending_deliveries(job))
        assert after == before - 1


class TestControllerIntegration:
    def test_speculating_controller_still_completes(self):
        topo = Topology.full_mesh(
            num_dcs=3, servers_per_dc=2, wan_capacity=1 * GB, uplink=10 * MBps
        )
        job = MulticastJob(
            job_id="j",
            src_dc="dc0",
            dst_dcs=("dc1", "dc2"),
            total_bytes=60 * MB,
            block_size=4 * MB,
        )
        job.bind(topo)
        config = BDSConfig(speculation_horizon=0.3)
        result = Simulation(
            topo,
            [job],
            BDSController(config=config, seed=0),
            SimConfig(max_cycles=2000),
            seed=0,
        ).run()
        assert result.all_complete

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BDSConfig(speculation_horizon=-0.1)

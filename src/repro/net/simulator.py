"""Cycle-driven flow-level simulator for inter-DC multicast.

Time advances in controller cycles of ``ΔT`` seconds (3 s by default, the
paper's update interval). Each cycle:

1. the failure schedule is applied;
2. latency-sensitive background traffic on every WAN link is sampled;
3. the *strategy* (BDS's controller or one of the decentralized baselines)
   inspects a :class:`ClusterView` and emits :class:`TransferDirective`s —
   single-hop block transfers between servers, optionally rate-capped;
4. rates are resolved — controller-assigned rates are clipped to capacity,
   baseline flows get max-min fair shares;
5. flows progress by ``rate × ΔT`` bytes, delivering blocks whose transfer
   completes, updating the possession index and all completion metrics.

Multi-hop overlay paths (store-and-forward) emerge across cycles: once a
block lands on an intermediate server it becomes a candidate source in the
next cycle, exactly like BDS's per-cycle choice of ``w_b,s``.
"""

from __future__ import annotations

import copy
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.net.background import BackgroundTraffic, delay_inflation
from repro.net.cycle_cache import (
    CycleCache,
    DecisionReuseState,
    first_cycle_at_or_after,
)
from repro.net.failures import FailureSchedule
from repro.net.flow import (
    Flow,
    FlowKernelStats,
    clip_rates_to_capacity,
    max_min_fair_rates,
)
from repro.net.topology import ResourceKey, Topology
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob
from repro.overlay.store import PossessionIndex
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive

BlockId = Tuple[str, int]

#: Below this many completed deliveries in a cycle the grouped numpy pass
#: costs more than per-pair application; results are bit-identical either
#: way, so small batches replay through the scalar path.
_DELIVERY_BATCH_MIN = 32

#: Fast-forward chunk cap: at most this many cycles are skipped per
#: analytic pass. Bounds the O(k) cumsum buffers and, with per-cycle stats
#: on, the stats appended per pass.
_FF_CHUNK = 131072


@dataclass(frozen=True)
class TransferDirective:
    """One single-hop transfer order: send ``block_ids`` from src to dst.

    ``rate_cap`` (bytes/s) is set by centralized strategies (BDS) and left
    ``None`` by decentralized ones, whose flows then share bandwidth
    max-min fairly. Blocks are transferred in the listed order, resuming any
    partial progress the destination already accumulated.
    """

    job_id: str
    block_ids: Tuple[BlockId, ...]
    src_server: str
    dst_server: str
    rate_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.block_ids:
            raise ValueError("a directive needs at least one block")
        if self.src_server == self.dst_server:
            raise ValueError("directive endpoints must differ")
        if self.rate_cap is not None and self.rate_cap < 0:
            raise ValueError("rate_cap must be >= 0")


@dataclass
class SimConfig:
    """Simulation knobs.

    ``safety_threshold`` is the §5.2 limit: strategies that declare
    ``respects_safety_threshold`` get at most ``threshold × capacity −
    online traffic`` of each WAN link; others may burst up to the full
    residual capacity (and cause the Fig. 6 interference incidents).
    """

    cycle_seconds: float = 3.0
    max_cycles: int = 100_000
    safety_threshold: float = 0.8
    stop_when_complete: bool = True
    record_link_stats: bool = False
    links_of_interest: Tuple[ResourceKey, ...] = ()
    # Per-cycle control-plane overhead: status collection + decision push
    # eat into every flow's usable transfer window (Fig. 12c's first two
    # overhead sources). 0 disables the effect.
    control_overhead_seconds: float = 0.0
    # TCP (re-)establishment cost: a flow whose (src, dst) pair was not
    # active in the previous cycle loses this much of the cycle before
    # transferring (Fig. 12c's third overhead source).
    flow_setup_seconds: float = 0.0
    # Incremental cycle-state engine: thread the simulator's pending-
    # delivery bookkeeping and a CycleCache into each ClusterView so the
    # per-cycle cost tracks remaining work, not total state size. False
    # reverts to the original O(total work) scan paths — kept as the
    # in-tree baseline for the hot-path benchmark and the determinism
    # A/B regression test; results are identical either way.
    incremental_engine: bool = True
    # Array-native control plane: back the possession index with a packed
    # bitset PossessionMatrix and (with the incremental engine) feed the
    # scheduler/router static candidate arrays + integer server/block ids
    # so selection is a handful of numpy gathers and one stable sort.
    # False reverts to the dict-of-sets store and the scalar scheduler —
    # kept as the in-tree baseline for the scheduler-kernel benchmark and
    # the determinism A/B tests; selections and directives are
    # bit-identical either way.
    vectorized_store: bool = True
    # Array-native data plane: resolve flow rates with the vectorized
    # waterfill/clip kernels (repro.net.flow) and apply each cycle's
    # completed deliveries as one grouped possession pass
    # (store.record_deliveries) instead of per-pair dict updates. False
    # reverts to the scalar kernels and per-delivery bookkeeping — kept
    # as the in-tree baseline for the flow-kernel benchmark and the
    # determinism A/B tests; allocations and results are bit-identical
    # either way. Batched delivery additionally needs the matrix store
    # (vectorized_store=True); without it deliveries stay per-pair.
    vectorized_flow: bool = True
    # Event-driven simulator core (§5.2: decisions stay valid until state
    # changes). When on, the loop (a) replays the previous decision while
    # its validity key — store/topology/partial-membership epochs, failure
    # sets, controller availability, active-job signature, background
    # state token — and the strategy's certified reuse horizon both hold,
    # skipping decide/validate/path lookups; and (b) fast-forwards whole
    # stretches of cycles analytically when rates are provably constant,
    # applying k cycles of delivery in one batched pass bounded by the
    # next event (flow completion, job arrival, failure event, background
    # change-point). False reverts to the fixed-tick loop — kept as the
    # in-tree baseline for the event-engine benchmark and the determinism
    # A/B tests; results are bit-identical either way.
    event_engine: bool = True
    # Per-cycle CycleStats collection. Day-scale horizons (10^6+ cycles)
    # do not want a ~500-byte record per cycle; turning this off keeps
    # only the aggregate counters and completion metrics. Implies no
    # per-cycle link stats.
    record_cycle_stats: bool = True

    def __post_init__(self) -> None:
        check_positive("cycle_seconds", self.cycle_seconds)
        check_positive("max_cycles", self.max_cycles)
        check_fraction("safety_threshold", self.safety_threshold)
        if self.control_overhead_seconds < 0:
            raise ValueError("control_overhead_seconds must be >= 0")
        if self.flow_setup_seconds < 0:
            raise ValueError("flow_setup_seconds must be >= 0")
        if self.control_overhead_seconds >= self.cycle_seconds:
            raise ValueError(
                "control_overhead_seconds must be < cycle_seconds "
                "(the cycle would have no transfer window)"
            )
        if self.record_link_stats and not self.record_cycle_stats:
            raise ValueError(
                "record_link_stats requires record_cycle_stats "
                "(link stats live on the per-cycle records)"
            )


@dataclass
class CycleStats:
    """Aggregates recorded at the end of each simulated cycle.

    The ``time_*`` fields are the per-stage wall-clock breakdown of the
    cycle's control loop (seconds): building the cluster view, the
    strategy's scheduling and routing steps (when the strategy reports
    them — BDS does; decentralized baselines land entirely in
    ``time_schedule``), resolving flow rates against capacities, and
    progressing/delivering flows. ``time_decide`` is the whole strategy
    call and contains schedule + route plus any strategy-private work.
    """

    cycle: int
    time: float
    blocks_delivered: int
    bytes_transferred: float
    active_flows: int
    controller_available: bool
    link_bulk_usage: Dict[ResourceKey, float] = field(default_factory=dict)
    link_online_usage: Dict[ResourceKey, float] = field(default_factory=dict)
    max_delay_inflation: float = 1.0
    # Per-stage wall-clock timing breakdown (seconds).
    time_view_build: float = 0.0
    time_decide: float = 0.0
    time_schedule: float = 0.0
    time_route: float = 0.0
    time_rate_resolve: float = 0.0
    time_deliver: float = 0.0
    # Portion of time_deliver spent applying completed deliveries to the
    # possession store and completion bookkeeping (batched or per-pair);
    # the remainder of time_deliver is budget-loop simulator overhead.
    time_deliver_apply: float = 0.0
    # Progressive-filling iterations this cycle that terminated without
    # freezing any flow (numerical stalemate — see repro.net.flow).
    rate_stalemates: int = 0
    # Routing-solver telemetry, forwarded from the strategy's decision
    # record when it reports one (the FPTAS backend; zero/empty for
    # greedy/LP and for decentralized baselines).
    routing_iterations: int = 0
    routing_phases: int = 0
    routing_warm_start: str = ""
    # Event-engine provenance (diagnostics, never fingerprinted): the
    # cycle replayed the previous decision under an unchanged validity
    # key / was applied analytically inside a fast-forwarded stretch.
    decision_reused: bool = False
    fast_forwarded: bool = False
    # Sharded control-plane telemetry, forwarded from the strategy's
    # decision record (zeros on the single-controller path and for
    # decentralized baselines): configured shard count, max/mean
    # per-shard schedule+route wall over the shards that decided fresh
    # this cycle, and the outer WAN-reconciliation wall.
    shard_count: int = 0
    time_shard_max: float = 0.0
    time_shard_mean: float = 0.0
    time_reconcile: float = 0.0
    # Shard-local state telemetry, forwarded from the strategy's
    # decision record (zeros on the shared-store paths): the effective
    # decide stride this cycle (tracks the adaptive stride under
    # shard_stride="auto"), max per-shard possession-array and
    # candidate-table bytes over the shards that decided fresh, and the
    # summed structural size of the mirror delta payloads.
    shard_stride: int = 0
    shard_state_bytes: int = 0
    shard_candidate_bytes: int = 0
    shard_payload_bytes: int = 0


@dataclass
class SimResult:
    """Everything the experiments need from one simulation run."""

    cycles_run: int
    sim_time: float
    wall_time: float
    job_completion: Dict[str, float]
    dc_completion: Dict[Tuple[str, str], float]
    server_completion: Dict[Tuple[str, str], float]
    cycle_stats: List[CycleStats]
    store: PossessionIndex
    all_complete: bool
    # Control-plane feedback-loop samples (one per cycle) when the
    # simulation ran with an AgentMonitor attached.
    feedback_samples: List = field(default_factory=list)
    # Event-engine accounting (diagnostics, never fingerprinted): cycles
    # that replayed the previous decision, and cycles applied inside
    # analytic fast-forward stretches. Both zero under the tick loop.
    cycles_decision_reused: int = 0
    cycles_fast_forwarded: int = 0

    def completion_time(self, job_id: str) -> float:
        """Completion time of a job; raises if it never completed."""
        try:
            return self.job_completion[job_id]
        except KeyError:
            raise KeyError(f"job {job_id!r} did not complete") from None

    def server_completion_times(self, job_id: str) -> List[float]:
        """Per-destination-server completion times (the Fig. 5/9a CDF data)."""
        return [
            t for (jid, _server), t in self.server_completion.items() if jid == job_id
        ]

    def blocks_per_cycle(self) -> List[int]:
        """Delivered-block counts per cycle (the Fig. 12a series)."""
        return [s.blocks_delivered for s in self.cycle_stats]

    def stage_time_totals(self) -> Dict[str, float]:
        """Summed per-stage wall-clock seconds across all cycles.

        The hot-path benchmark consumes this to show where the control
        loop spends its time (view-build / schedule / route /
        rate-resolve / deliver).
        """
        totals = {
            "view_build": 0.0,
            "decide": 0.0,
            "schedule": 0.0,
            "route": 0.0,
            "rate_resolve": 0.0,
            "deliver": 0.0,
            "deliver_apply": 0.0,
            "reconcile": 0.0,
        }
        for s in self.cycle_stats:
            totals["view_build"] += s.time_view_build
            totals["decide"] += s.time_decide
            totals["schedule"] += s.time_schedule
            totals["route"] += s.time_route
            totals["rate_resolve"] += s.time_rate_resolve
            totals["deliver"] += s.time_deliver
            totals["deliver_apply"] += s.time_deliver_apply
            totals["reconcile"] += s.time_reconcile
        return totals

    def total_rate_stalemates(self) -> int:
        """Waterfill stalemate iterations across the run (diagnostic)."""
        return sum(s.rate_stalemates for s in self.cycle_stats)

    def total_bytes_transferred(self) -> float:
        """Bytes moved across all flows over the whole run."""
        return sum(s.bytes_transferred for s in self.cycle_stats)

    def fingerprint(self) -> str:
        """Stable digest of the run's *deterministic* outputs.

        Covers completion metrics, per-cycle delivery counts, and bytes
        moved — everything that must be bit-identical across reruns of the
        same (topology, jobs, strategy, config, seed), but none of the
        wall-clock timing fields. Two runs with equal fingerprints are
        interchangeable for every analysis consumer; the serial/parallel
        parity tests and ``benchmarks/bench_parallel_suite.py`` compare
        runs through this. Survives the export round-trip
        (:mod:`repro.analysis.export`), cache restores included.
        """
        import hashlib
        import json

        canonical = json.dumps(
            {
                "cycles_run": self.cycles_run,
                "all_complete": self.all_complete,
                "job_completion": sorted(self.job_completion.items()),
                "dc_completion": sorted(
                    (list(k), v) for k, v in self.dc_completion.items()
                ),
                "server_completion": sorted(
                    (list(k), v) for k, v in self.server_completion.items()
                ),
                "blocks_per_cycle": self.blocks_per_cycle(),
                "bytes_per_cycle": [
                    s.bytes_transferred for s in self.cycle_stats
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        """A short human-readable report of the run."""
        lines = [
            f"cycles run      : {self.cycles_run}",
            f"simulated time  : {self.sim_time:.1f}s",
            f"wall time       : {self.wall_time:.2f}s",
            f"jobs completed  : {len(self.job_completion)}",
            f"all complete    : {self.all_complete}",
            f"bytes moved     : {self.total_bytes_transferred():.3g}",
        ]
        for job_id in sorted(self.job_completion):
            lines.append(
                f"  {job_id}: done at {self.job_completion[job_id]:.1f}s"
            )
        return "\n".join(lines)


class ClusterView:
    """Read-only snapshot handed to strategies each cycle.

    This is the "global view" a centralized controller enjoys; decentralized
    baselines deliberately use only slices of it (their local views).

    **Ownership**: the view borrows the simulator's live structures —
    ``bulk_capacities``, the pending-delivery maps, and the partial-bytes
    map are *not* copied. A view is valid for the cycle it was built for;
    strategies must not mutate these mappings or hold a view across
    cycles (the next cycle reuses and mutates them in place).

    When the simulator runs with the incremental engine (the default) it
    also threads in its pending bookkeeping (``pending`` /
    ``relay_pending`` / ``blocks_by_id``) and a :class:`CycleCache`, so
    ``pending_deliveries`` iterates only still-missing entries and the
    rarity/source/path queries are memoized. All fall back to the
    original full scans when absent, with identical results.
    """

    def __init__(
        self,
        topology: Topology,
        store: PossessionIndex,
        jobs: Sequence[MulticastJob],
        cycle: int,
        time: float,
        cycle_seconds: float,
        bulk_capacities: Mapping[ResourceKey, float],
        failed_agents: Set[str],
        controller_available: bool,
        partial_bytes: Mapping[Tuple[BlockId, str], float],
        failed_links: frozenset = frozenset(),
        pending: Optional[Mapping[Tuple[str, str], Set[Tuple[BlockId, str]]]] = None,
        relay_pending: Optional[Mapping[Tuple[str, str], Set[BlockId]]] = None,
        blocks_by_id: Optional[Mapping[BlockId, Block]] = None,
        cache: Optional[CycleCache] = None,
        pending_order: Optional[Dict[Tuple[str, str], List[Tuple[BlockId, str]]]] = None,
        relay_order: Optional[Dict[Tuple[str, str], List[BlockId]]] = None,
        candidates: Optional["CandidateTableLike"] = None,
    ) -> None:
        self.topology = topology
        self.store = store
        self.jobs = list(jobs)
        self.cycle = cycle
        self.time = time
        self.cycle_seconds = cycle_seconds
        self.bulk_capacities = bulk_capacities
        self.failed_agents = set(failed_agents)
        self.controller_available = controller_available
        self.failed_links = frozenset(failed_links)
        self._partial = partial_bytes
        self._pending_map = pending
        self._relay_pending_map = relay_pending
        self._blocks_by_id = blocks_by_id
        self._cache = cache
        self._failed_frozen = frozenset(self.failed_agents)
        # Ordered iteration hints for the pending maps (see the accessors)
        # plus the exactness witness: while the store object is this very
        # one and its epoch is unchanged since view construction, the
        # pending maps are exact and the per-entry possession re-check is
        # skipped. Any out-of-band store mutation bumps the epoch and
        # drops the view back to the re-checking path.
        self._pending_order = pending_order
        self._relay_order = relay_order
        self._map_store = store
        self._map_epoch = getattr(store, "epoch", -1)
        # Static candidate arrays for the vectorized scheduling kernel
        # (see repro.net.candidates); None sends the scheduler down the
        # scalar paths.
        self._candidates = candidates

    def agent_is_up(self, server_id: str) -> bool:
        return server_id not in self.failed_agents

    def with_extra_failed_agents(self, extra: Iterable[str]) -> "ClusterView":
        """A copy of this view treating ``extra`` servers as failed.

        Used by the controller's partition handling (§5.3): servers in DCs
        cut off from the controller cannot receive commands, so the
        centralized logic must not schedule them as sources or sinks.

        The clone shares this view's :class:`CycleCache`; its different
        failed-agent set flushes the source/rarity memos via the cache's
        validity key while the path memos stay warm.
        """
        clone = ClusterView(
            topology=self.topology,
            store=self.store,
            jobs=self.jobs,
            cycle=self.cycle,
            time=self.time,
            cycle_seconds=self.cycle_seconds,
            bulk_capacities=self.bulk_capacities,
            failed_agents=self.failed_agents | set(extra),
            controller_available=self.controller_available,
            partial_bytes=self._partial,
            failed_links=self.failed_links,
            pending=self._pending_map,
            relay_pending=self._relay_pending_map,
            blocks_by_id=self._blocks_by_id,
            cache=self._cache,
            pending_order=self._pending_order,
            relay_order=self._relay_order,
            candidates=self._candidates,
        )
        return clone

    def with_jobs(
        self, jobs: Sequence[MulticastJob], cache: Optional[CycleCache] = None
    ) -> "ClusterView":
        """A shallow clone of this view scoped to ``jobs``.

        Used by the sharded control plane to hand each controller shard
        its job partition: the clone shares every other structure with
        this view (store, pending maps, budgets, candidate table — jobs
        are disjoint in blocks, so a shard simply never looks at another
        shard's rows), and ``cache`` substitutes the shard's own
        :class:`CycleCache` so shards keep independent warm memos.
        Implemented with :func:`copy.copy` so subclasses (notably
        :class:`~repro.core.speculation.SpeculatedView`) keep their
        exactness witnesses — in particular ``_map_store`` — untouched.
        """
        clone = copy.copy(self)
        clone.jobs = list(jobs)
        if cache is not None:
            clone._cache = cache
        return clone

    def flow_resources(
        self, src_server: str, dst_server: str
    ) -> Optional[Tuple[ResourceKey, ...]]:
        """Failure-aware flow resources, or ``None`` when partitioned off.

        Strategies should use this instead of ``topology.flow_resources``
        so their paths detour around failed WAN links (§5.3). Memoized
        per (src, dst) pair while topology and failed links are unchanged.
        """
        cache = self._cache
        if cache is None:
            try:
                return self.topology.flow_resources(
                    src_server, dst_server, self.failed_links
                )
            except ValueError:
                return None
        table = cache.validate_paths(self.topology.epoch, self.failed_links)
        key = (src_server, dst_server)
        try:
            result = table[key]
            cache.hits += 1
            return result
        except KeyError:
            cache.misses += 1
        try:
            result = self.topology.flow_resources(
                src_server, dst_server, self.failed_links
            )
        except ValueError:
            result = None
        table[key] = result
        return result

    def received_bytes(self, block_id: BlockId, dst_server: str) -> float:
        """Bytes of ``block_id`` already buffered at ``dst_server``."""
        return self._partial.get((block_id, dst_server), 0.0)

    def pending_deliveries(
        self, job: MulticastJob
    ) -> List[Tuple[Block, str, str]]:
        """Undelivered (block, dst_dc, assigned dst server) triples.

        With the simulator's pending map attached this iterates only the
        still-missing entries, in ascending block-index order (the scan
        order of the fallback); otherwise it scans every (destination DC,
        block) pair against the store. The order list is a shared
        iteration hint compacted lazily against the live set, so no
        per-cycle sort is needed.
        """
        pending: List[Tuple[Block, str, str]] = []
        pending_map = self._pending_map
        order_map = self._pending_order
        blocks_by_id = self._blocks_by_id
        store = self.store
        # Exactness: the simulator discards entries on every delivery, so
        # while the store is untouched otherwise (same object, same
        # epoch) set membership alone decides pending-ness. A store that
        # shadows the real one (speculation overlay) or an out-of-band
        # mutation (epoch bump) drops us to the re-checking path.
        exact = store is self._map_store and (
            getattr(store, "epoch", -2) == self._map_epoch
        )
        for dc in job.dst_dcs:
            key = (job.job_id, dc)
            entries = pending_map.get(key) if pending_map is not None else None
            if entries is None or blocks_by_id is None or order_map is None:
                for block in job.blocks:
                    server = job.assigned_server(dc, block.block_id)
                    if not self.store.has(server, block.block_id):
                        pending.append((block, dc, server))
                continue
            order = order_map[key]
            if len(order) > 2 * len(entries):
                order = [entry for entry in order if entry in entries]
                order_map[key] = order
            if exact:
                for entry in order:
                    if entry in entries:
                        pending.append(
                            (blocks_by_id[entry[0]], dc, entry[1])
                        )
            else:
                for entry in order:
                    if entry in entries:
                        bid, server = entry
                        if not store.has(server, bid):
                            pending.append((blocks_by_id[bid], dc, server))
        return pending

    def eligible_sources(self, block_id: BlockId) -> List[str]:
        """Healthy servers currently holding the block.

        Memoized per block id while the store and failed-agent set are
        unchanged — the scheduler and router both ask for every pending
        block, so the second and later queries are dict hits.
        """
        cache = self._cache
        if cache is None:
            failed = self.failed_agents
            return [
                s for s in self.store.holders(block_id) if s not in failed
            ]
        cache.validate_sources(self.store.epoch, self._failed_frozen)
        try:
            result = cache.sources[block_id]
            cache.hits += 1
            return result
        except KeyError:
            cache.misses += 1
        failed = self.failed_agents
        holders = self.store.holders(block_id)
        if failed:
            result = [s for s in holders if s not in failed]
        else:
            result = list(holders)
        cache.sources[block_id] = result
        return result

    def duplicate_count(self, block_id: BlockId) -> int:
        """Cluster-wide copy count (§4.3 rarity), memoized per block id."""
        cache = self._cache
        if cache is None:
            return self.store.duplicate_count(block_id)
        cache.validate_sources(self.store.epoch, self._failed_frozen)
        count = cache.rarity.get(block_id)
        if count is None:
            count = self.store.duplicate_count(block_id)
            cache.rarity[block_id] = count
        return count

    def pending_relay_placements(
        self, job: MulticastJob
    ) -> List[Tuple[Block, str, str]]:
        """Relay copies worth creating: (block, relay_dc, relay server).

        Only for jobs configured with ``relay_dcs``. A relay placement is
        pending while the relay DC holds no copy of the block; relays do
        not count toward completion but widen the Type I path diversity
        through non-destination DCs (Fig. 1).
        """
        placements: List[Tuple[Block, str, str]] = []
        relay_map = self._relay_pending_map
        order_map = self._relay_order
        blocks_by_id = self._blocks_by_id
        store = self.store
        exact = store is self._map_store and (
            getattr(store, "epoch", -2) == self._map_epoch
        )
        for dc in job.relay_dcs:
            key = (job.job_id, dc)
            entries = relay_map.get(key) if relay_map is not None else None
            if entries is None or blocks_by_id is None or order_map is None:
                for block in job.blocks:
                    if self.store.dc_has_block(dc, block.block_id):
                        continue
                    server = job.assigned_server(dc, block.block_id)
                    placements.append((block, dc, server))
                continue
            order = order_map[key]
            if len(order) > 2 * len(entries):
                order = [bid for bid in order if bid in entries]
                order_map[key] = order
            for bid in order:
                if bid not in entries:
                    continue
                if not exact and store.dc_has_block(dc, bid):
                    continue
                placements.append(
                    (blocks_by_id[bid], dc, job.assigned_server(dc, bid))
                )
        return placements


class Simulation:
    """Owns the cycle loop, resource accounting, and metric collection."""

    def __init__(
        self,
        topology: Topology,
        jobs: Sequence[MulticastJob],
        strategy: "OverlayStrategyLike",
        config: Optional[SimConfig] = None,
        background: Optional[BackgroundTraffic] = None,
        failures: Optional[FailureSchedule] = None,
        seed: SeedLike = None,
        pre_seeded: Optional[Mapping[str, Sequence[Block]]] = None,
        replica_set: Optional["ControllerReplicaSetLike"] = None,
        agent_monitor: Optional["AgentMonitorLike"] = None,
    ) -> None:
        """``pre_seeded`` places extra block copies on servers before the
        run (e.g. partially replicated states for the appendix experiment);
        copies landing on a destination's assigned server count as already
        delivered.

        ``replica_set`` (a :class:`repro.core.fault.ControllerReplicaSet`)
        makes controller availability follow leader elections: the failure
        schedule's ``replica_fail``/``replica_recover`` events hit
        individual replicas, and the controller is available while a
        leader exists (plus any blanket ``controller_fail`` still applies).

        ``agent_monitor`` (a :class:`repro.overlay.monitor.AgentMonitor`)
        samples the control-plane feedback loop each cycle; samples land in
        ``SimResult.feedback_samples`` (the live Fig. 11c measurement).
        """
        self.topology = topology
        self.jobs = list(jobs)
        self.strategy = strategy
        self.config = config or SimConfig()
        self.background = background
        self.failures = failures
        self.replica_set = replica_set
        self.agent_monitor = agent_monitor
        self.rng = make_rng(seed)
        self._agents: List = []
        if agent_monitor is not None:
            from repro.overlay.agent import ServerAgent

            self._agents = [
                ServerAgent(s) for s in topology.servers.values()
            ]

        if not self.jobs:
            raise ValueError("need at least one job")
        server_dc = {s.server_id: s.dc for s in topology.servers.values()}
        self.store = PossessionIndex(
            server_dc, vectorized=self.config.vectorized_store
        )
        for job in self.jobs:
            if not job.is_bound():
                job.bind(topology)
            for server, blocks in job.initial_placement().items():
                self.store.seed(server, blocks)
        if pre_seeded:
            for server, blocks in pre_seeded.items():
                self.store.seed(server, blocks)

        # (block_id, dst_server) -> bytes buffered so far.
        self._partial: Dict[Tuple[BlockId, str], float] = {}
        # Pending (job, dc) -> set of (block_id, server) still missing,
        # plus an ordered list of the same entries (ascending block index,
        # the legacy scan order). The set is the source of truth (_deliver
        # discards from it); the list is an iteration hint the view
        # compacts lazily, so pending iteration needs no per-cycle sort.
        self._pending: Dict[Tuple[str, str], Set[Tuple[BlockId, str]]] = {}
        self._pending_order: Dict[
            Tuple[str, str], List[Tuple[BlockId, str]]
        ] = {}
        # (job, server) -> number of shard blocks still missing.
        self._server_missing: Dict[Tuple[str, str], int] = {}
        for job in self.jobs:
            for dc in job.dst_dcs:
                ordered: List[Tuple[BlockId, str]] = []
                for block in job.blocks:
                    server = job.assigned_server(dc, block.block_id)
                    if self.store.has(server, block.block_id):
                        continue  # pre-seeded copies count as delivered
                    ordered.append((block.block_id, server))
                    key = (job.job_id, server)
                    self._server_missing[key] = self._server_missing.get(key, 0) + 1
                self._pending[(job.job_id, dc)] = set(ordered)
                self._pending_order[(job.job_id, dc)] = ordered

        # (job, relay dc) -> block ids the relay DC holds no copy of yet.
        # Mirrors what pending_relay_placements would compute by scanning;
        # maintained incrementally by _deliver.
        self._relay_pending: Dict[Tuple[str, str], Set[BlockId]] = {}
        self._relay_order: Dict[Tuple[str, str], List[BlockId]] = {}
        self._relay_dcs_by_job: Dict[str, Tuple[str, ...]] = {}
        for job in self.jobs:
            self._relay_dcs_by_job[job.job_id] = job.relay_dcs
            for dc in job.relay_dcs:
                ordered_ids = [
                    block.block_id
                    for block in job.blocks
                    if not self.store.dc_has_block(dc, block.block_id)
                ]
                self._relay_pending[(job.job_id, dc)] = set(ordered_ids)
                self._relay_order[(job.job_id, dc)] = ordered_ids

        self._blocks_by_id: Dict[BlockId, Block] = {}
        self._origin_dc: Dict[str, str] = {}
        # Job lookup for the delivery bookkeeping: _deliver used to do an
        # O(jobs) linear scan per completed DC. First-wins like the scan,
        # should duplicate job ids ever appear.
        self._jobs_by_id: Dict[str, MulticastJob] = {}
        for job in self.jobs:
            self._origin_dc[job.job_id] = job.src_dc
            self._jobs_by_id.setdefault(job.job_id, job)
            for block in job.blocks:
                self._blocks_by_id[block.block_id] = block

        # Static candidate arrays for the vectorized scheduling kernel:
        # every (block, destination/relay DC) pair of every job, as
        # parallel int arrays. Built once, after seeding (so pre-seeded
        # copies compact out on the first cycle's gather). Skipped when
        # the strategy decides against partition-scoped shard mirrors
        # (BDSController with shards > 1 and shard_local_state): the
        # mirrors build their own shard-scoped tables, O(pairs/shards)
        # each, and a global O(pairs) build would be dead weight — only
        # speculation-overlay cycles would miss it, on their
        # already-scalar fallback path.
        self._cand_table = None
        if (
            self.config.incremental_engine
            and self.store.matrix is not None
            and not getattr(strategy, "wants_shard_local_state", False)
        ):
            from repro.net.candidates import CandidateTable

            self._cand_table = CandidateTable(self.jobs, self.store.matrix)

        # Incremental-engine state: the persistent per-cycle query cache
        # and the memoized capacity maps (see _bulk_capacities).
        self._cycle_cache = CycleCache()
        self._wan_keys: Tuple[ResourceKey, ...] = tuple(topology.links)
        self._bulk_cache: Dict[float, Dict[ResourceKey, float]] = {}
        self._caps_ref: Optional[Dict[ResourceKey, float]] = None

        # Partial-bytes *membership* epoch: bumped whenever a (block, dst)
        # key appears in or vanishes from self._partial. Routing reads
        # partial membership (the partial-first reorder) but never the
        # byte values, so this epoch — not the values — belongs in the
        # event engine's decision validity key.
        self._partial_epoch = 0

        # Integer arrival grid (event engine + O(changes) job filtering):
        # per-job first active cycle, exact on the c*dt float grid so
        # "arrived by cycle c" matches the legacy arrival_time <= c*dt
        # predicate bit-for-bit, plus a stable arrival-sorted index. Jobs
        # requesting a coarser per-job cadence (MulticastJob.cycle_seconds,
        # a positive multiple of ΔT) have their arrival quantized up to
        # their own cadence boundary.
        dt = self.config.cycle_seconds
        self._arrival_cycle_by_idx: List[int] = []
        for job in self.jobs:
            arrival = first_cycle_at_or_after(job.arrival_time, dt)
            period = getattr(job, "cycle_seconds", None)
            if period is not None:
                multiple = int(round(period / dt))
                if multiple < 1 or multiple * dt != period:
                    raise ValueError(
                        f"job {job.job_id!r} cycle_seconds ({period}) must "
                        f"be a positive integer multiple of the simulation "
                        f"cycle_seconds ({dt})"
                    )
                if multiple > 1 and arrival % multiple:
                    arrival = (arrival // multiple + 1) * multiple
            self._arrival_cycle_by_idx.append(arrival)
        self._arrival_order: List[int] = sorted(
            range(len(self.jobs)),
            key=self._arrival_cycle_by_idx.__getitem__,
        )

    # -- per-cycle resource budgets ------------------------------------------

    def _bulk_capacities(self, now: float, respect_threshold: bool) -> Tuple[
        Dict[ResourceKey, float], Dict[ResourceKey, float]
    ]:
        """(bulk capacity, online usage) per resource for this cycle.

        The static part (server NICs, WAN capacity × threshold) is built
        once per threshold and reused; only WAN entries are rewritten per
        cycle, and only when background traffic or failures can change
        them. The returned dicts are owned by the simulator and reused
        across cycles — consumers must not mutate or retain them.
        """
        if not self.config.incremental_engine:
            return self._bulk_capacities_legacy(now, respect_threshold)
        caps = self.topology.resource_capacities()
        if caps is not self._caps_ref:
            self._bulk_cache.clear()
            self._caps_ref = caps
            self._wan_keys = tuple(self.topology.links)
        threshold = self.config.safety_threshold if respect_threshold else 1.0
        bulk = self._bulk_cache.get(threshold)
        if bulk is None:
            bulk = {
                key: threshold * cap if key[0] == "wan" else cap
                for key, cap in caps.items()
            }
            self._bulk_cache[threshold] = bulk
        if self.background is None and self.failures is None:
            # Steady state: WAN entries are exactly threshold × capacity
            # every cycle; nothing to recompute.
            return bulk, {}
        online: Dict[ResourceKey, float] = {}
        for key in self._wan_keys:
            cap = caps[key]
            used = (
                self.background.usage(key, now, cap) if self.background else 0.0
            )
            online[key] = used
            usable = max(0.0, threshold * cap - used)
            if self.failures and not self.failures.link_is_up(key[1], key[2]):
                usable = 0.0
            bulk[key] = usable
        return bulk, online

    def _bulk_capacities_legacy(
        self, now: float, respect_threshold: bool
    ) -> Tuple[Dict[ResourceKey, float], Dict[ResourceKey, float]]:
        """The original full per-cycle rebuild (baseline reference)."""
        caps = self.topology.resource_capacities()
        online: Dict[ResourceKey, float] = {}
        threshold = self.config.safety_threshold if respect_threshold else 1.0
        bulk: Dict[ResourceKey, float] = {}
        for key, cap in caps.items():
            if key[0] == "wan":
                used = (
                    self.background.usage(key, now, cap) if self.background else 0.0
                )
                online[key] = used
                bulk[key] = max(0.0, threshold * cap - used)
                if self.failures and not self.failures.link_is_up(key[1], key[2]):
                    bulk[key] = 0.0
            else:
                bulk[key] = cap
        return bulk, online

    # -- directive validation ----------------------------------------------------

    def _valid_directives(
        self, directives: Iterable[TransferDirective], failed: Set[str]
    ) -> List[TransferDirective]:
        """Drop directives that violate physics or reference failed agents."""
        valid: List[TransferDirective] = []
        for d in directives:
            if d.src_server in failed or d.dst_server in failed:
                continue
            if d.src_server not in self.topology.servers:
                raise KeyError(f"unknown source server {d.src_server!r}")
            if d.dst_server not in self.topology.servers:
                raise KeyError(f"unknown destination server {d.dst_server!r}")
            useful_blocks = tuple(
                bid
                for bid in d.block_ids
                if self.store.has(d.src_server, bid)
                and not self.store.has(d.dst_server, bid)
            )
            if not useful_blocks:
                continue
            if useful_blocks != d.block_ids:
                d = TransferDirective(
                    job_id=d.job_id,
                    block_ids=useful_blocks,
                    src_server=d.src_server,
                    dst_server=d.dst_server,
                    rate_cap=d.rate_cap,
                )
            valid.append(d)
        return valid

    def snapshot_view(self, cycle: int = 0) -> ClusterView:
        """A :class:`ClusterView` of the current state without simulating.

        Used by the controller micro-benchmarks (Fig. 11a, Fig. 13a) to time
        a single decision over a state of a given size.
        """
        respects = getattr(self.strategy, "respects_safety_threshold", False)
        bulk_caps, _online = self._bulk_capacities(cycle * self.config.cycle_seconds, respects)
        incremental = self.config.incremental_engine
        return ClusterView(
            topology=self.topology,
            store=self.store,
            jobs=[
                j
                for i, j in enumerate(self.jobs)
                if self._arrival_cycle_by_idx[i] <= cycle
            ],
            cycle=cycle,
            time=cycle * self.config.cycle_seconds,
            cycle_seconds=self.config.cycle_seconds,
            bulk_capacities=bulk_caps,
            failed_agents=set(self.failures.failed_agents) if self.failures else set(),
            controller_available=True,
            partial_bytes=self._partial,
            failed_links=frozenset(self.failures.failed_links)
            if self.failures
            else frozenset(),
            pending=self._pending if incremental else None,
            relay_pending=self._relay_pending if incremental else None,
            blocks_by_id=self._blocks_by_id if incremental else None,
            cache=self._cycle_cache if incremental else None,
            pending_order=self._pending_order if incremental else None,
            relay_order=self._relay_order if incremental else None,
            candidates=self._cand_table if incremental else None,
        )

    # -- main loop -------------------------------------------------------------

    def run(self) -> SimResult:
        """Run until all jobs complete or ``max_cycles`` elapse.

        Two engines share this loop. The fixed-tick engine
        (``event_engine=False``) executes every stage of every cycle. The
        event engine adds two provably-exact shortcuts on top of the same
        stage code:

        * **decision reuse** — while the validity key (epochs, failure
          sets, controller availability, active-job signature, background
          token) and the strategy's certified reuse horizon both hold,
          the previous decision's validated directives are replayed and
          the view/decide/validate stages are skipped. Rates are still
          resolved fresh each cycle (they are in the tick loop too), so
          replayed cycles are bit-identical by construction.
        * **analytic fast-forward** — after a replayable cycle that
          delivered nothing and changed no partial membership, the next
          k cycles are applied in one pass when rates are certifiably
          constant: k is bounded by the earliest flow completion
          (remaining/rate), the next job arrival, the next failure event,
          the next background change-point, the reuse horizon, and
          ``max_cycles``. Per-flow byte accumulation uses the same
          left-fold float additions the tick loop performs (numpy cumsum
          is a sequential fold), so the skipped cycles' partial bytes,
          per-cycle transferred totals, and eventual completion times are
          bit-identical to ticking through them.
        """
        cfg = self.config
        dt = cfg.cycle_seconds
        job_completion: Dict[str, float] = {}
        dc_completion: Dict[Tuple[str, str], float] = {}
        server_completion: Dict[Tuple[str, str], float] = {}
        cycle_stats: List[CycleStats] = []
        feedback_samples: List = []
        started = _time.perf_counter()

        # Pre-seeded copies may have satisfied shards before the run starts.
        for job in self.jobs:
            for dc in job.dst_dcs:
                for server in job.destination_servers(dc):
                    if self._server_missing.get((job.job_id, server), 0) == 0:
                        server_completion[(job.job_id, server)] = 0.0
                if not self._pending[(job.job_id, dc)]:
                    dc_completion[(job.job_id, dc)] = 0.0
            if all((job.job_id, dc) in dc_completion for dc in job.dst_dcs):
                job_completion[job.job_id] = 0.0

        uses_rates = getattr(self.strategy, "uses_controller_rates", False)
        respects = getattr(self.strategy, "respects_safety_threshold", False)

        # (src, dst) pairs with an active flow last cycle: reused pairs skip
        # the TCP re-establishment cost.
        prev_pairs: Set[Tuple[str, str]] = set()
        incremental = cfg.incremental_engine
        record_stats = cfg.record_cycle_stats

        # Event-engine gates. Reuse needs a strategy that certifies its
        # decide as a pure function of the validity key, and no per-cycle
        # observers that a skipped decide would starve (monitor, hook).
        # Fast-forward additionally requires nothing that must run every
        # cycle: replica elections tick per cycle, and link stats sample
        # per cycle.
        can_reuse = (
            cfg.event_engine
            and getattr(self.strategy, "decisions_reusable", False)
            and self.agent_monitor is None
            and getattr(self.strategy, "on_cycle_complete", None) is None
        )
        can_ffwd = (
            can_reuse
            and self.replica_set is None
            and not cfg.record_link_stats
        )
        reuse = DecisionReuseState()
        cycles_reused = 0
        cycles_ffwd = 0
        cycles_done = 0
        last_decision_fn = getattr(self.strategy, "last_decision", None)
        if not callable(last_decision_fn):
            last_decision_fn = None

        # O(changes) active-job maintenance: a pointer over the
        # arrival-sorted index plus a completion-count watermark; the
        # (jobs-ordered) active list is rebuilt only when either moves.
        arr_order = self._arrival_order
        arr_cycles = [self._arrival_cycle_by_idx[i] for i in arr_order]
        num_arrivals = len(arr_cycles)
        arrival_ptr = 0
        arrived: List[int] = []
        active_jobs: List[MulticastJob] = []
        last_completed = -1

        cycle = 0
        while cycle < cfg.max_cycles:
            now = cycle * dt
            # All timestamps derive from integer cycle counts: the cycle's
            # end is (cycle+1)*dt, never now + dt, so fast-forwarding to
            # cycle c and ticking to cycle c produce the same floats.
            cycle_end = (cycle + 1) * dt
            stage_started = _time.perf_counter()
            if self.failures:
                applied = self.failures.advance_to(cycle)
                failed = set(self.failures.failed_agents)
                controller_ok = not self.failures.controller_down
                failed_links = frozenset(self.failures.failed_links)
                if self.replica_set is not None:
                    for event in applied:
                        if event.kind == "replica_fail":
                            self.replica_set.fail(str(event.target))
                        elif event.kind == "replica_recover":
                            self.replica_set.recover(str(event.target))
            else:
                failed = set()
                controller_ok = True
                failed_links = frozenset()
            if self.replica_set is not None:
                self.replica_set.tick()
                controller_ok = controller_ok and self.replica_set.has_leader()

            bulk_caps, online = self._bulk_capacities(now, respects)

            moved = False
            while (
                arrival_ptr < num_arrivals
                and arr_cycles[arrival_ptr] <= cycle
            ):
                arrived.append(arr_order[arrival_ptr])
                arrival_ptr += 1
                moved = True
            if moved or len(job_completion) != last_completed:
                arrived.sort()
                active_jobs = [
                    self.jobs[i]
                    for i in arrived
                    if self.jobs[i].job_id not in job_completion
                ]
                last_completed = len(job_completion)

            vkey = None
            if can_reuse:
                bg = self.background
                vkey = (
                    self.topology.epoch,
                    self.store.epoch,
                    self._partial_epoch,
                    frozenset(failed),
                    failed_links,
                    controller_ok,
                    arrival_ptr,
                    len(job_completion),
                    -1 if bg is None else bg.state_token(cycle, dt),
                    # Sharded control plane: decisions cached under one
                    # shard layout must not replay under another. The
                    # signature sits at the END — earlier entries are
                    # indexed positionally (vkey[0..2]) by the
                    # fast-forward gate below.
                    getattr(self.strategy, "shard_signature", None),
                )

            reused = vkey is not None and reuse.valid_for(cycle, vkey)
            if reused:
                # Replay path: the stored directives were validated under
                # this exact key (same possession, failures, topology), so
                # re-validating and re-probing paths would reproduce them
                # verbatim. Only the flows' demands have moved — rebuild
                # those from the live partial bytes, exactly as the tick
                # loop would.
                view = None
                time_view_build = 0.0
                decide_runtime = 0.0
                directives = reuse.directives
                flow_resources = reuse.resources
                rate_started = _time.perf_counter()
                flows = []
                for i, d in enumerate(directives):
                    remaining = sum(
                        self._blocks_by_id[bid].size
                        - self._partial.get((bid, d.dst_server), 0.0)
                        for bid in d.block_ids
                    )
                    flows.append(
                        Flow(
                            flow_id=i,
                            resources=flow_resources[i],
                            rate_cap=d.rate_cap,
                            demand=remaining / dt,
                        )
                    )
                reuse.reuses += 1
                cycles_reused += 1
            else:
                view = ClusterView(
                    topology=self.topology,
                    store=self.store,
                    jobs=active_jobs,
                    cycle=cycle,
                    time=now,
                    cycle_seconds=dt,
                    bulk_capacities=bulk_caps,
                    failed_agents=failed,
                    controller_available=controller_ok,
                    partial_bytes=self._partial,
                    failed_links=failed_links,
                    pending=self._pending if incremental else None,
                    relay_pending=self._relay_pending if incremental else None,
                    blocks_by_id=self._blocks_by_id if incremental else None,
                    cache=self._cycle_cache if incremental else None,
                    pending_order=self._pending_order if incremental else None,
                    relay_order=self._relay_order if incremental else None,
                    candidates=self._cand_table if incremental else None,
                )
                decide_started = _time.perf_counter()
                time_view_build = decide_started - stage_started
                raw_directives = self.strategy.decide(view)
                decide_runtime = _time.perf_counter() - decide_started
                directives = self._valid_directives(raw_directives, failed)

                if self.agent_monitor is not None and controller_ok:
                    for agent in self._agents:
                        agent.healthy = agent.server_id not in failed
                    _snapshots, sample = self.agent_monitor.feedback_loop(
                        self._agents, {}, decide_runtime
                    )
                    feedback_samples.append(sample)

                rate_started = _time.perf_counter()
                flows = []
                routed: List[TransferDirective] = []
                flow_resources = []
                for d in directives:
                    if incremental:
                        resources = view.flow_resources(
                            d.src_server, d.dst_server
                        )
                        if resources is None:
                            continue  # destination partitioned off this cycle
                    else:
                        try:
                            resources = self.topology.flow_resources(
                                d.src_server, d.dst_server, failed_links
                            )
                        except ValueError:
                            continue  # destination partitioned off this cycle
                    i = len(routed)
                    remaining = sum(
                        self._blocks_by_id[bid].size
                        - self._partial.get((bid, d.dst_server), 0.0)
                        for bid in d.block_ids
                    )
                    routed.append(d)
                    flow_resources.append(resources)
                    flows.append(
                        Flow(
                            flow_id=i,
                            resources=resources,
                            rate_cap=d.rate_cap,
                            demand=remaining / dt,
                        )
                    )
                directives = routed
                if vkey is not None:
                    # Certify this decide for reuse. The strategy's own
                    # per-decision horizon governs (0 when it declined or
                    # when the fallback decided — last_decision().cycle
                    # then misses); strategies with no decision log are
                    # pure view functions, unbounded under the key.
                    horizon: Optional[int] = None
                    if last_decision_fn is not None:
                        decision = last_decision_fn()
                        if decision is not None and decision.cycle == cycle:
                            horizon = getattr(decision, "reuse_horizon", 0)
                        else:
                            horizon = 0
                    reuse.store_decision(
                        vkey, cycle, horizon, directives, flow_resources
                    )

            kernel_stats = FlowKernelStats()
            if uses_rates and controller_ok:
                requested = {
                    f.flow_id: min(f.effective_cap(), float("inf")) for f in flows
                }
                # Replace inf (no cap given) with the demand bound.
                for f in flows:
                    if requested[f.flow_id] == float("inf"):
                        requested[f.flow_id] = f.demand or 0.0
                rates = clip_rates_to_capacity(
                    flows, requested, bulk_caps, vectorized=cfg.vectorized_flow
                )
            else:
                rates = max_min_fair_rates(
                    flows,
                    bulk_caps,
                    stats=kernel_stats,
                    vectorized=cfg.vectorized_flow,
                )
            deliver_started = _time.perf_counter()
            time_rate_resolve = deliver_started - rate_started

            delivered = 0
            transferred = 0.0
            apply_seconds = 0.0
            # Batched delivery: completed transfers queue up during the
            # budget loop and land on the store/bookkeeping in one grouped
            # pass afterwards. The budget loop never reads anything
            # _deliver mutates (store, pending maps, completion dicts), so
            # deferring the application is order-equivalent. Needs the
            # matrix store for the grouped bit pass.
            batch_deliver = (
                cfg.vectorized_flow and self.store.matrix is not None
            )
            events: List[Tuple[str, Block, str, str, float]] = []
            current_pairs: Set[Tuple[str, str]] = set()
            for i, d in enumerate(directives):
                rate = rates.get(i, 0.0)
                if rate <= 0:
                    continue
                pair = (d.src_server, d.dst_server)
                window = dt - cfg.control_overhead_seconds
                if pair not in prev_pairs:
                    window = max(0.0, window - cfg.flow_setup_seconds)
                current_pairs.add(pair)
                if window <= 0:
                    continue
                budget = rate * window
                used = 0.0
                for bid in d.block_ids:
                    if budget <= 1e-12:
                        break
                    block = self._blocks_by_id[bid]
                    key = (bid, d.dst_server)
                    have = self._partial.get(key, 0.0)
                    need = block.size - have
                    take = min(need, budget)
                    budget -= take
                    used += take
                    # A microbyte of slack absorbs floating-point dust from
                    # rate multiplications; without it a block can hover at
                    # size - 1e-9 bytes forever (the router will not
                    # schedule sub-nanobyte demands).
                    if take >= need - 1e-6:
                        if have > 0.0:
                            # A stored partial vanished: membership change.
                            self._partial_epoch += 1
                        self._partial.pop(key, None)
                        setup = dt - window
                        finish = now + setup + (used / rate if rate > 0 else dt)
                        when = min(finish, cycle_end)
                        if batch_deliver:
                            events.append(
                                (d.job_id, block, d.src_server, d.dst_server, when)
                            )
                        else:
                            apply_started = _time.perf_counter()
                            self._deliver(
                                d.job_id,
                                block,
                                d.src_server,
                                d.dst_server,
                                when,
                                job_completion,
                                dc_completion,
                                server_completion,
                            )
                            apply_seconds += (
                                _time.perf_counter() - apply_started
                            )
                        delivered += 1
                    else:
                        if have == 0.0:
                            # First bytes of a new partial: membership change.
                            self._partial_epoch += 1
                        self._partial[key] = have + take
                transferred += used

            if events:
                apply_started = _time.perf_counter()
                if len(events) < _DELIVERY_BATCH_MIN:
                    # Tiny batches: the numpy pass costs more than it
                    # saves; replay per pair (bit-identical either way).
                    for job_id, block, src, dst, when in events:
                        self._deliver(
                            job_id,
                            block,
                            src,
                            dst,
                            when,
                            job_completion,
                            dc_completion,
                            server_completion,
                        )
                else:
                    self._apply_deliveries(
                        events, job_completion, dc_completion, server_completion
                    )
                apply_seconds += _time.perf_counter() - apply_started

            if record_stats:
                time_schedule = decide_runtime
                time_route = 0.0
                routing_iterations = 0
                routing_phases = 0
                routing_warm_start = ""
                shard_count = 0
                time_shard_max = 0.0
                time_shard_mean = 0.0
                time_reconcile = 0.0
                shard_stride = 0
                shard_state_bytes = 0
                shard_candidate_bytes = 0
                shard_payload_bytes = 0
                if not reused and last_decision_fn is not None:
                    decision = last_decision_fn()
                    if decision is not None and decision.cycle == cycle:
                        time_schedule = decision.schedule_runtime
                        time_route = decision.routing_runtime
                        routing_iterations = getattr(
                            decision, "routing_iterations", 0
                        )
                        routing_phases = getattr(decision, "routing_phases", 0)
                        routing_warm_start = getattr(
                            decision, "routing_warm_start", ""
                        )
                        shard_count = getattr(decision, "shard_count", 0)
                        time_shard_max = getattr(
                            decision, "shard_wall_max", 0.0
                        )
                        time_shard_mean = getattr(
                            decision, "shard_wall_mean", 0.0
                        )
                        time_reconcile = getattr(
                            decision, "reconcile_runtime", 0.0
                        )
                        shard_stride = getattr(decision, "shard_stride", 0)
                        shard_state_bytes = getattr(
                            decision, "shard_state_bytes", 0
                        )
                        shard_candidate_bytes = getattr(
                            decision, "shard_candidate_bytes", 0
                        )
                        shard_payload_bytes = getattr(
                            decision, "shard_payload_bytes", 0
                        )
                stats = CycleStats(
                    cycle=cycle,
                    time=now,
                    blocks_delivered=delivered,
                    bytes_transferred=transferred,
                    active_flows=len(directives),
                    controller_available=controller_ok,
                    time_view_build=time_view_build,
                    time_decide=decide_runtime,
                    time_schedule=time_schedule,
                    time_route=time_route,
                    time_rate_resolve=time_rate_resolve,
                    time_deliver=_time.perf_counter() - deliver_started,
                    time_deliver_apply=apply_seconds,
                    rate_stalemates=kernel_stats.stalemates,
                    routing_iterations=routing_iterations,
                    routing_phases=routing_phases,
                    routing_warm_start=routing_warm_start,
                    decision_reused=reused,
                    shard_count=shard_count,
                    time_shard_max=time_shard_max,
                    time_shard_mean=time_shard_mean,
                    time_reconcile=time_reconcile,
                    shard_stride=shard_stride,
                    shard_state_bytes=shard_state_bytes,
                    shard_candidate_bytes=shard_candidate_bytes,
                    shard_payload_bytes=shard_payload_bytes,
                )
                if cfg.record_link_stats:
                    usage: Dict[ResourceKey, float] = {}
                    for i, d in enumerate(directives):
                        rate = rates.get(i, 0.0)
                        for res in flow_resources[i]:
                            usage[res] = usage.get(res, 0.0) + rate
                    keys = cfg.links_of_interest or tuple(self.topology.links)
                    caps = self.topology.resource_capacities()
                    worst = 1.0
                    for key in keys:
                        stats.link_bulk_usage[key] = usage.get(key, 0.0)
                        stats.link_online_usage[key] = online.get(key, 0.0)
                        total = (
                            stats.link_bulk_usage[key]
                            + stats.link_online_usage[key]
                        )
                        worst = max(
                            worst,
                            delay_inflation(
                                total / caps[key], cfg.safety_threshold
                            ),
                        )
                    stats.max_delay_inflation = worst
                cycle_stats.append(stats)

            cycles_done += 1
            prev_pairs = current_pairs

            if not reused:
                hook = getattr(self.strategy, "on_cycle_complete", None)
                if hook is not None:
                    hook(view, delivered)

            if cfg.stop_when_complete and len(job_completion) == len(self.jobs):
                cycle += 1
                break

            skipped = 0
            if (
                can_ffwd
                and delivered == 0
                and vkey is not None
                and reuse.key == vkey
                and self.topology.epoch == vkey[0]
                and self.store.epoch == vkey[1]
                and self._partial_epoch == vkey[2]
            ):
                next_arrival = (
                    arr_cycles[arrival_ptr]
                    if arrival_ptr < num_arrivals
                    else None
                )
                skipped = self._attempt_fast_forward(
                    cycle,
                    reuse,
                    next_arrival,
                    directives,
                    rates,
                    uses_rates,
                    controller_ok,
                    cycle_stats,
                    record_stats,
                )
                cycles_ffwd += skipped
                cycles_done += skipped
            cycle += 1 + skipped
        else:
            cycle = cfg.max_cycles

        return SimResult(
            cycles_run=cycle if cycles_done else 0,
            sim_time=cycles_done * dt,
            wall_time=_time.perf_counter() - started,
            job_completion=job_completion,
            dc_completion=dc_completion,
            server_completion=server_completion,
            cycle_stats=cycle_stats,
            store=self.store,
            all_complete=len(job_completion) == len(self.jobs),
            feedback_samples=feedback_samples,
            cycles_decision_reused=cycles_reused,
            cycles_fast_forwarded=cycles_ffwd,
        )

    def _attempt_fast_forward(
        self,
        cycle: int,
        reuse: DecisionReuseState,
        next_arrival: Optional[int],
        directives: Sequence[TransferDirective],
        rates: Mapping[int, float],
        uses_rates: bool,
        controller_ok: bool,
        cycle_stats: List[CycleStats],
        record_stats: bool,
    ) -> int:
        """Skip k cycles analytically after a steady executed cycle.

        Called only when cycle ``cycle`` executed with a reusable decision,
        delivered nothing, and changed no epoch — so cycles
        ``cycle+1 .. cycle+k`` would replay the same directives at the same
        rates as long as nothing external changes and no flow completes a
        block. k is the largest count certified on every axis:

        * **external events** — next job arrival, next failure-schedule
          event, next background-traffic change-point, the strategy's
          reuse horizon, and ``max_cycles`` each cap k so the first cycle
          they affect is executed normally;
        * **rate constancy** — per draining flow, demand must stay above
          the level at which it would start binding in the rate kernel
          (its ``rate_cap`` under the clip kernel, the max-min level
          otherwise) with a float-dust margin, since a binding demand
          would change the resolved rates;
        * **no completion** — a cumsum over the flow's per-cycle budget
          replays the tick loop's exact completion predicate
          (``take >= need - 1e-6``); k stops short of the first hit so
          the completing cycle runs through the real delivery path.

        Byte application is the tick loop's own arithmetic: each skipped
        cycle deposits the full budget into the directive's first block
        (``budget -= take`` is exactly ``0.0`` when ``take == budget``),
        and ``np.cumsum`` is the same sequential left-fold of float adds,
        so the partial bytes after the pass are bit-identical to ticking.
        Returns the number of cycles skipped (0 = no certification).
        """
        cfg = self.config
        dt = cfg.cycle_seconds
        k = _FF_CHUNK
        if reuse.horizon is not None:
            k = min(k, reuse.decided_cycle + reuse.horizon - cycle)
        k = min(k, cfg.max_cycles - 1 - cycle)
        if next_arrival is not None:
            k = min(k, next_arrival - 1 - cycle)
        if self.failures is not None:
            nxt = self.failures.next_change_after(cycle)
            if nxt is not None:
                k = min(k, nxt - 1 - cycle)
        if self.background is not None:
            nxt = self.background.next_change_after(cycle, dt)
            if nxt is not None:
                k = min(k, nxt - 1 - cycle)
        if k <= 0:
            return 0

        # All pairs were active last cycle, so no flow pays setup again.
        window = dt - cfg.control_overhead_seconds
        mm_level = max(rates.values(), default=0.0)
        plan: List[Tuple[Tuple[BlockId, str], float, float, float]] = []
        seen_keys: Set[Tuple[BlockId, str]] = set()
        total = 0.0
        for i, d in enumerate(directives):
            rate = rates.get(i, 0.0)
            if rate <= 0 or window <= 0:
                continue
            budget = rate * window
            if budget <= 1e-12:
                continue
            remaining = sum(
                self._blocks_by_id[bid].size
                - self._partial.get((bid, d.dst_server), 0.0)
                for bid in d.block_ids
            )
            if uses_rates and controller_ok:
                # Clip kernel: requested = min(rate_cap, demand); constant
                # only while the cap, not the demand, is the requested rate.
                bound = d.rate_cap
                if bound is None:
                    return 0
            else:
                # Max-min kernel: demands interact only through
                # effective_cap clamps; all clamps resolve identically
                # while every demand clears the highest fair-share level.
                bound = mm_level
            margin = 1e-6 * bound + 1e-3
            headroom = remaining - (bound + margin) * dt
            if headroom <= 0:
                return 0
            k = min(k, int(headroom / budget))
            if k <= 0:
                return 0
            key0 = (d.block_ids[0], d.dst_server)
            if key0 in seen_keys:
                return 0  # two flows feeding one partial: order-coupled
            seen_keys.add(key0)
            have = self._partial.get(key0, 0.0)
            if have == 0.0:
                return 0  # not draining into its lead block: bail out
            plan.append(
                (key0, have, budget, self._blocks_by_id[d.block_ids[0]].size)
            )
            total += budget

        # First-completion scan: stop before any lead block would finish.
        for _key0, have, budget, size in plan:
            steps = np.empty(k + 1)
            steps[0] = have
            steps[1:] = budget
            acc = np.cumsum(steps)
            comp = budget >= (size - acc[:k]) - 1e-6
            if bool(comp.any()):
                k = int(np.argmax(comp))
                if k <= 0:
                    return 0

        for key0, have, budget, size in plan:
            steps = np.empty(k + 1)
            steps[0] = have
            steps[1:] = budget
            acc = np.cumsum(steps)
            self._partial[key0] = float(acc[k])

        if record_stats:
            n_flows = len(directives)
            for s in range(1, k + 1):
                cycle_stats.append(
                    CycleStats(
                        cycle=cycle + s,
                        time=(cycle + s) * dt,
                        blocks_delivered=0,
                        bytes_transferred=total,
                        active_flows=n_flows,
                        controller_available=controller_ok,
                        decision_reused=True,
                        fast_forwarded=True,
                    )
                )
        if self.failures is not None:
            # No events fall inside the window (k was capped before the
            # next one); advance the watermark so later queries agree.
            self.failures.advance_to(cycle + k)
        return k

    # -- delivery bookkeeping -----------------------------------------------------

    def _apply_deliveries(
        self,
        events: List[Tuple[str, Block, str, str, float]],
        job_completion: Dict[str, float],
        dc_completion: Dict[Tuple[str, str], float],
        server_completion: Dict[Tuple[str, str], float],
    ) -> None:
        """Apply one cycle's completed transfers as a grouped pass.

        Splits :meth:`_deliver` into (a) one batched possession and
        provenance update via ``store.record_deliveries`` and (b) the
        pending/server-missing/completion bookkeeping, replayed per event
        in delivery order. The split is exact: the bookkeeping below
        never reads the store, so landing every bit first is
        indistinguishable from interleaving, and duplicate deliveries
        still run their (idempotent) bookkeeping exactly as the scalar
        path does.
        """
        origin = self._origin_dc
        self.store.record_deliveries(
            [
                (block, src, dst, when, origin[job_id])
                for job_id, block, src, dst, when in events
            ]
        )
        dc_of = self.store.dc_of
        relay_map = self._relay_pending
        pending_map = self._pending
        server_missing = self._server_missing
        jobs_by_id = self._jobs_by_id
        has_relays = bool(relay_map)
        for job_id, block, _src, dst, when in events:
            dst_dc = dc_of(dst)
            bid = block.block_id
            if has_relays:
                relay_pending = relay_map.get((job_id, dst_dc))
                if relay_pending is not None:
                    relay_pending.discard(bid)
            pending = pending_map.get((job_id, dst_dc))
            if pending is None:
                continue  # delivery to a relay DC: not completion-tracked
            entry = (bid, dst)
            if entry not in pending:
                continue  # landed on a non-assigned server of a dest DC
            pending.discard(entry)
            skey = (job_id, dst)
            remaining = server_missing[skey] - 1
            server_missing[skey] = remaining
            if remaining == 0:
                server_completion[skey] = when
            if not pending:
                dc_completion[(job_id, dst_dc)] = when
                job = jobs_by_id[job_id]
                if all((job_id, dc) in dc_completion for dc in job.dst_dcs):
                    job_completion[job_id] = max(
                        dc_completion[(job_id, dc)] for dc in job.dst_dcs
                    )

    def _deliver(
        self,
        job_id: str,
        block: Block,
        src_server: str,
        dst_server: str,
        when: float,
        job_completion: Dict[str, float],
        dc_completion: Dict[Tuple[str, str], float],
        server_completion: Dict[Tuple[str, str], float],
    ) -> None:
        self.store.record_delivery(
            block, src_server, dst_server, when, self._origin_dc[job_id]
        )
        dst_dc = self.store.dc_of(dst_server)
        relay_pending = self._relay_pending.get((job_id, dst_dc))
        if relay_pending is not None:
            relay_pending.discard(block.block_id)
        pending = self._pending.get((job_id, dst_dc))
        if pending is None:
            return  # delivery to a relay DC: useful, but not completion-tracked
        entry = (block.block_id, dst_server)
        if entry not in pending:
            return  # block landed on a non-assigned server of a dest DC
        pending.discard(entry)
        skey = (job_id, dst_server)
        self._server_missing[skey] -= 1
        if self._server_missing[skey] == 0:
            server_completion[skey] = when
        if not pending:
            dc_completion[(job_id, dst_dc)] = when
            job = self._jobs_by_id[job_id]
            if all((job_id, dc) in dc_completion for dc in job.dst_dcs):
                job_completion[job_id] = max(
                    dc_completion[(job_id, dc)] for dc in job.dst_dcs
                )


class OverlayStrategyLike:
    """Typing helper documenting the strategy duck-type the simulator uses.

    Real strategies subclass :class:`repro.baselines.base.OverlayStrategy`.
    """

    uses_controller_rates: bool = False
    respects_safety_threshold: bool = False

    def decide(self, view: ClusterView) -> List[TransferDirective]:
        raise NotImplementedError


class CandidateTableLike:
    """Duck-type of :class:`repro.net.candidates.CandidateTable`."""

    groups_by_job: Dict[str, List] = {}


class ControllerReplicaSetLike:
    """Duck-type of :class:`repro.core.fault.ControllerReplicaSet`."""

    def fail(self, name: str) -> None:
        raise NotImplementedError

    def recover(self, name: str) -> None:
        raise NotImplementedError

    def tick(self) -> None:
        raise NotImplementedError

    def has_leader(self) -> bool:
        raise NotImplementedError


class AgentMonitorLike:
    """Duck-type of :class:`repro.overlay.monitor.AgentMonitor`."""

    def feedback_loop(self, agents, blocks_by_server, algorithm_runtime):
        raise NotImplementedError

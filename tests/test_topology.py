"""Topology model: construction, routing, resource accounting."""

import pytest

from repro.net.topology import (
    Topology,
    downlink_key,
    uplink_key,
    wan_key,
)
from repro.utils.units import GB, MBps


@pytest.fixture
def triangle() -> Topology:
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_dc(name)
        topo.add_server(f"{name}-s0", name, uplink=10 * MBps, downlink=20 * MBps)
    topo.add_bidirectional_link("A", "B", 1 * GB)
    topo.add_bidirectional_link("B", "C", 1 * GB)
    return topo


class TestConstruction:
    def test_duplicate_dc_rejected(self, triangle):
        with pytest.raises(ValueError, match="duplicate DC"):
            triangle.add_dc("A")

    def test_duplicate_server_rejected(self, triangle):
        with pytest.raises(ValueError, match="duplicate server"):
            triangle.add_server("A-s0", "A", 1, 1)

    def test_server_requires_existing_dc(self, triangle):
        with pytest.raises(ValueError, match="unknown DC"):
            triangle.add_server("X-s0", "X", 1, 1)

    def test_duplicate_link_rejected(self, triangle):
        with pytest.raises(ValueError, match="duplicate link"):
            triangle.add_link("A", "B", 1 * GB)

    def test_self_link_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link("A", "A", 1 * GB)

    def test_nonpositive_capacity_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.add_link("A", "C", 0)

    def test_servers_in(self, triangle):
        assert [s.server_id for s in triangle.servers_in("A")] == ["A-s0"]

    def test_neighbors(self, triangle):
        assert set(triangle.neighbors("B")) == {"A", "C"}


class TestRouting:
    def test_direct_route(self, triangle):
        assert triangle.route("A", "B") == (wan_key("A", "B"),)

    def test_two_hop_route(self, triangle):
        assert triangle.route("A", "C") == (
            wan_key("A", "B"),
            wan_key("B", "C"),
        )

    def test_same_dc_route_is_empty(self, triangle):
        assert triangle.route("A", "A") == ()

    def test_route_dcs_includes_endpoints(self, triangle):
        assert triangle.route_dcs("A", "C") == ("A", "B", "C")

    def test_unreachable_raises(self):
        topo = Topology()
        topo.add_dc("A")
        topo.add_dc("B")
        topo.add_server("A-s0", "A", 1, 1)
        topo.add_server("B-s0", "B", 1, 1)
        with pytest.raises(ValueError, match="no WAN route"):
            topo.route("A", "B")

    def test_route_prefers_fewer_hops(self, triangle):
        triangle.add_bidirectional_link("A", "C", 1 * MBps)  # thin but direct
        assert triangle.route("A", "C") == (wan_key("A", "C"),)

    def test_route_prefers_fat_links_among_equal_hops(self):
        topo = Topology()
        for name in ("A", "B", "C", "D"):
            topo.add_dc(name)
            topo.add_server(f"{name}-s0", name, 1, 1)
        topo.add_bidirectional_link("A", "B", 10 * GB)
        topo.add_bidirectional_link("B", "D", 10 * GB)
        topo.add_bidirectional_link("A", "C", 1 * MBps)
        topo.add_bidirectional_link("C", "D", 1 * MBps)
        assert topo.route_dcs("A", "D") == ("A", "B", "D")

    def test_routes_invalidated_by_new_link(self, triangle):
        assert len(triangle.route("A", "C")) == 2
        triangle.add_bidirectional_link("A", "C", 1 * GB)
        assert len(triangle.route("A", "C")) == 1


class TestFlowResources:
    def test_cross_dc_flow(self, triangle):
        resources = triangle.flow_resources("A-s0", "C-s0")
        assert resources == (
            uplink_key("A-s0"),
            wan_key("A", "B"),
            wan_key("B", "C"),
            downlink_key("C-s0"),
        )

    def test_intra_dc_flow_skips_wan(self, triangle):
        triangle.add_server("A-s1", "A", 1 * MBps, 1 * MBps)
        resources = triangle.flow_resources("A-s0", "A-s1")
        assert resources == (uplink_key("A-s0"), downlink_key("A-s1"))

    def test_same_server_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.flow_resources("A-s0", "A-s0")

    def test_resource_capacities_cover_everything(self, triangle):
        caps = triangle.resource_capacities()
        assert caps[uplink_key("A-s0")] == 10 * MBps
        assert caps[downlink_key("A-s0")] == 20 * MBps
        assert caps[wan_key("A", "B")] == 1 * GB
        # 4 directed links + 2 NICs per server x 3 servers.
        assert len(caps) == 4 + 6


class TestBuilders:
    def test_full_mesh_counts(self):
        topo = Topology.full_mesh(
            num_dcs=4, servers_per_dc=2, wan_capacity=1 * GB, uplink=1 * MBps
        )
        assert len(topo.dcs) == 4
        assert len(topo.servers) == 8
        assert len(topo.links) == 4 * 3  # directed

    def test_full_mesh_downlink_defaults_to_uplink(self):
        topo = Topology.full_mesh(2, 1, 1 * GB, 5 * MBps)
        server = topo.servers["dc0-s0"]
        assert server.downlink == server.uplink == 5 * MBps

    def test_line_topology_routes_through_middle(self):
        topo = Topology.line(["X", "Y", "Z"], 1, 1 * GB, 1 * MBps)
        assert topo.route_dcs("X", "Z") == ("X", "Y", "Z")

    def test_random_mesh_connected_and_deterministic(self):
        kwargs = dict(
            num_dcs=8,
            servers_per_dc=2,
            wan_capacity_range=(1 * GB, 2 * GB),
            uplink_range=(1 * MBps, 2 * MBps),
            seed=13,
        )
        a = Topology.random_mesh(**kwargs)
        b = Topology.random_mesh(**kwargs)
        for src in a.dc_names():
            for dst in a.dc_names():
                if src != dst:
                    assert a.route(src, dst)  # connected
        assert set(a.links) == set(b.links)
        for key in a.links:
            assert a.links[key].capacity == b.links[key].capacity

"""Static candidate arrays for the vectorized scheduling kernel.

The rarest-first scheduler's decision space is fixed at job-bind time:
every (block, destination DC) pair of every job is a potential delivery,
and every (block, relay DC) pair a potential relay placement. What varies
per cycle is only *which* of those candidates are still pending and which
pass the health filters — both answerable straight from the possession
matrix with array gathers.

:class:`CandidateTable` materializes that decision space once per
simulation as parallel int arrays (block column id, block index, assigned
destination server id), grouped per (job, DC) in the exact enumeration
order of the legacy scalar scan: for each job, destination DCs first (in
``job.dst_dcs`` order), then relay DCs, each group in ascending block
index. The vectorized ``select`` concatenates the groups' still-alive
rows, which reproduces the legacy insertion order — the tie-breaker of
the stable rarity sort — by construction.

Groups track an ``alive`` row subset that is compacted lazily: when more
than half of a group's alive rows turn out possession-dead during a
cycle's gather, the dead rows are dropped for good. Possession is
monotone while a simulation runs (the simulator never drops copies
mid-run; disk-loss enters as *agent* failure), so a dead candidate can
never come back — the same never-re-add reasoning the incremental
engine's pending maps rely on. Steady-state per-cycle cost therefore
tracks remaining work, not total state size.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.overlay.job import MulticastJob
from repro.overlay.store import PossessionMatrix


class CandidateGroup:
    """All candidate rows for one (job, DC) — deliveries or relays."""

    __slots__ = (
        "job",
        "dc",
        "dc_gid",
        "is_relay",
        "gids",
        "indices",
        "dst_sids",
        "alive",
        "objs",
        "objs_dup",
    )

    def __init__(
        self,
        job: MulticastJob,
        dc: str,
        dc_gid: int,
        is_relay: bool,
        gids: np.ndarray,
        indices: np.ndarray,
        dst_sids: np.ndarray,
    ) -> None:
        self.job = job
        self.dc = dc
        self.dc_gid = dc_gid
        self.is_relay = is_relay
        self.gids = gids
        self.indices = indices
        self.dst_sids = dst_sids
        # Row positions not yet known to be possession-dead. Starts full;
        # the kernel shrinks it when a cycle's gather finds >50% dead.
        self.alive = np.arange(len(indices), dtype=np.int64)
        # Per-row ScheduledBlock cache, indexed by *original* row position
        # (compaction shrinks ``alive`` but never renumbers rows). Every
        # field of a row's ScheduledBlock is static except ``duplicates``,
        # so the kernel reuses the cached object while ``objs_dup`` still
        # matches the cycle's rarity gather and rebuilds it otherwise —
        # steady-state cycles then construct no objects at all.
        self.objs: List[object] = [None] * len(indices)
        self.objs_dup: List[int] = [-1] * len(indices)


class CandidateTable:
    """Per-job candidate groups, keyed by job id.

    Built once after initial seeding (all of a job's blocks are interned
    into the matrix by then; :meth:`PossessionMatrix.intern` is still
    called defensively so the table never depends on seeding order).
    Owned by the :class:`~repro.net.simulator.Simulation` and shared by
    every cycle's view — including partition clones, whose extra failed
    agents are a per-cycle mask, not a table property. Speculation
    overlays must *not* carry the table (their store shadows the matrix
    with phantom copies); :class:`~repro.core.speculation.SpeculatedView`
    drops it, which sends the scheduler down the scalar path.
    """

    def __init__(
        self, jobs: Sequence[MulticastJob], matrix: PossessionMatrix
    ) -> None:
        self.matrix = matrix
        self.groups_by_job: Dict[str, List[CandidateGroup]] = {}
        server_ids = matrix.server_ids
        for job in jobs:
            gids = np.fromiter(
                (matrix.intern(b.block_id) for b in job.blocks),
                dtype=np.int64,
                count=len(job.blocks),
            )
            indices = np.arange(len(job.blocks), dtype=np.int64)
            groups: List[CandidateGroup] = []
            for dc, is_relay in [(d, False) for d in job.dst_dcs] + [
                (d, True) for d in job.relay_dcs
            ]:
                dst_sids = np.fromiter(
                    (
                        server_ids[job.assigned_server(dc, b.block_id)]
                        for b in job.blocks
                    ),
                    dtype=np.int64,
                    count=len(job.blocks),
                )
                groups.append(
                    CandidateGroup(
                        job=job,
                        dc=dc,
                        dc_gid=matrix.dc_ids[dc],
                        is_relay=is_relay,
                        gids=gids,
                        indices=indices,
                        dst_sids=dst_sids,
                    )
                )
            self.groups_by_job[job.job_id] = groups

"""Named topology presets modeled on real inter-DC deployments.

The paper's pilot ran on 10 geo-distributed DCs; its trace covered 30+.
These presets give examples and experiments realistic starting points
without hand-building topologies:

* :func:`baidu_like` — 10 DCs in three metro clusters (the pilot's scale):
  fat intra-metro links, thinner long-haul links, uniform server NICs.
* :func:`global_regions` — 6 named continental regions with
  distance-tiered link capacities (metro / continental / transoceanic).
* :func:`dumbbell` — two server-rich DCs joined through two thin transit
  DCs; the classic stress topology for store-and-forward relays.

All capacities scale with one ``scale`` factor so the same shape can run
as a quick test (small scale) or a longer evaluation.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.net.topology import Topology
from repro.utils.units import MBps
from repro.utils.validation import check_positive

# (metro cluster) -> DC names; clusters are fully meshed internally.
_BAIDU_LIKE_CLUSTERS: Tuple[Tuple[str, ...], ...] = (
    ("bj1", "bj2", "bj3", "bj4"),  # north
    ("sh1", "sh2", "sh3"),         # east
    ("gz1", "gz2", "gz3"),         # south
)

_GLOBAL_REGIONS = (
    "us-west",
    "us-east",
    "eu-west",
    "eu-central",
    "ap-south",
    "ap-east",
)

# Coarse geography tiers for global_regions: 0 = same continent-pair
# shorthand below, capacities in multiples of the base long-haul rate.
_CONTINENT: Dict[str, str] = {
    "us-west": "na",
    "us-east": "na",
    "eu-west": "eu",
    "eu-central": "eu",
    "ap-south": "ap",
    "ap-east": "ap",
}


def baidu_like(
    servers_per_dc: int = 7,
    scale: float = 1.0,
) -> Topology:
    """Ten DCs in three metros, mirroring the pilot deployment's scale.

    Intra-metro links are 4× the long-haul capacity; NICs are uniform.
    Baseline rates (scale=1): long-haul 200 MB/s, NIC 25 MB/s.
    """
    check_positive("servers_per_dc", servers_per_dc)
    check_positive("scale", scale)
    long_haul = 200 * MBps * scale
    nic = 25 * MBps * scale
    topo = Topology()
    for cluster in _BAIDU_LIKE_CLUSTERS:
        for name in cluster:
            topo.add_dc(name)
            for j in range(servers_per_dc):
                topo.add_server(f"{name}-s{j}", name, uplink=nic, downlink=nic)
    all_names = [name for cluster in _BAIDU_LIKE_CLUSTERS for name in cluster]
    cluster_of = {
        name: i
        for i, cluster in enumerate(_BAIDU_LIKE_CLUSTERS)
        for name in cluster
    }
    for i, a in enumerate(all_names):
        for b in all_names[i + 1 :]:
            capacity = (
                4 * long_haul if cluster_of[a] == cluster_of[b] else long_haul
            )
            topo.add_bidirectional_link(a, b, capacity)
    return topo


def global_regions(
    servers_per_dc: int = 5,
    scale: float = 1.0,
) -> Topology:
    """Six continental regions with distance-tiered WAN capacities.

    Same-continent links are 3× the base; transoceanic links 1×.
    Baseline rates (scale=1): transoceanic 100 MB/s, NIC 40 MB/s.
    """
    check_positive("servers_per_dc", servers_per_dc)
    check_positive("scale", scale)
    ocean = 100 * MBps * scale
    nic = 40 * MBps * scale
    topo = Topology()
    for name in _GLOBAL_REGIONS:
        topo.add_dc(name)
        for j in range(servers_per_dc):
            topo.add_server(f"{name}-s{j}", name, uplink=nic, downlink=nic)
    for i, a in enumerate(_GLOBAL_REGIONS):
        for b in _GLOBAL_REGIONS[i + 1 :]:
            same_continent = _CONTINENT[a] == _CONTINENT[b]
            topo.add_bidirectional_link(a, b, 3 * ocean if same_continent else ocean)
    return topo


def dumbbell(
    servers_per_end: int = 6,
    transit_capacity: float = 50 * MBps,
    end_nic: float = 30 * MBps,
) -> Topology:
    """Two fat endpoint DCs connected only through two thin transit DCs.

    ``left`` and ``right`` carry the servers; ``transit-a`` / ``transit-b``
    have a single relay server each. There is no direct left–right link,
    so all traffic store-and-forwards — the stress case for relay
    scheduling and bottleneck-disjoint path use.
    """
    check_positive("servers_per_end", servers_per_end)
    check_positive("transit_capacity", transit_capacity)
    check_positive("end_nic", end_nic)
    topo = Topology()
    for name in ("left", "right"):
        topo.add_dc(name)
        for j in range(servers_per_end):
            topo.add_server(f"{name}-s{j}", name, uplink=end_nic, downlink=end_nic)
    for name in ("transit-a", "transit-b"):
        topo.add_dc(name)
        topo.add_server(
            f"{name}-s0", name, uplink=transit_capacity, downlink=transit_capacity
        )
        topo.add_bidirectional_link("left", name, transit_capacity)
        topo.add_bidirectional_link(name, "right", transit_capacity)
    return topo

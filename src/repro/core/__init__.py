"""BDS's centralized decision-making logic (paper §4 and §5).

The controller decouples per-cycle control into a **scheduling** step
(which blocks to send — generalized rarest-first, §4.3) and a **routing**
step (which paths and rates — max-throughput MCF with blocks merging and an
FPTAS backend, §4.4), which is what makes near-real-time centralized
control feasible at the paper's scale.
"""

from repro.core.config import BDSConfig
from repro.core.decisions import ControlDecision, ScheduledBlock
from repro.core.scheduling import RarestFirstScheduler
from repro.core.routing import BDSRouter, RoutingDiagnostics
from repro.core.controller import BDSController
from repro.core.bandwidth import (
    BandwidthEnforcer,
    NetworkMonitor,
    residual_budget,
    residual_budgets,
)
from repro.core.fault import ControllerReplicaSet
from repro.core.formulation import JointFormulation, StandardLPRouter
from repro.core.speculation import DeliverySpeculator, SpeculatedView
from repro.core.diffs import DecisionDiff, DiffStats, diff_decisions, diff_stats_over_run

__all__ = [
    "DeliverySpeculator",
    "SpeculatedView",
    "DecisionDiff",
    "DiffStats",
    "diff_decisions",
    "diff_stats_over_run",
    "BDSConfig",
    "ControlDecision",
    "ScheduledBlock",
    "RarestFirstScheduler",
    "BDSRouter",
    "RoutingDiagnostics",
    "BDSController",
    "BandwidthEnforcer",
    "NetworkMonitor",
    "residual_budget",
    "residual_budgets",
    "ControllerReplicaSet",
    "JointFormulation",
    "StandardLPRouter",
]

"""Relay-DC support: Type I overlay paths through non-destination DCs."""


from repro.core import BDSConfig, BDSController
from repro.core.scheduling import RarestFirstScheduler
from repro.net.simulator import SimConfig, Simulation
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.units import MB, MBps


def relay_topology():
    """Thin direct A->C link; fat two-leg route through B."""
    topo = Topology()
    for name in ("A", "B", "C"):
        topo.add_dc(name)
        for j in range(2):
            topo.add_server(f"{name}-s{j}", name, uplink=50 * MBps, downlink=50 * MBps)
    topo.add_bidirectional_link("A", "B", 100 * MBps)
    topo.add_bidirectional_link("B", "C", 100 * MBps)
    topo.add_bidirectional_link("A", "C", 5 * MBps)
    return topo


def relay_job(with_relay: bool) -> MulticastJob:
    return MulticastJob(
        job_id="j",
        src_dc="A",
        dst_dcs=("C",),
        total_bytes=120 * MB,
        block_size=4 * MB,
        relay_dcs=("B",) if with_relay else (),
    )


class TestRelayScheduling:
    def test_relay_placements_listed(self):
        topo = relay_topology()
        job = relay_job(True)
        job.bind(topo)
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        placements = view.pending_relay_placements(job)
        assert len(placements) == job.num_blocks
        assert all(dc == "B" for _b, dc, _s in placements)

    def test_relay_selections_sorted_last(self):
        topo = relay_topology()
        job = relay_job(True)
        job.bind(topo)
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        selections = RarestFirstScheduler(use_relays=True).select(view)
        flags = [s.is_relay for s in selections]
        # All real deliveries come before any relay placement.
        assert flags == sorted(flags)
        assert any(flags) and not all(flags)

    def test_use_relays_false_skips_placements(self):
        topo = relay_topology()
        job = relay_job(True)
        job.bind(topo)
        sim = Simulation(topo, [job], BDSController(seed=0), SimConfig())
        view = sim.snapshot_view()
        selections = RarestFirstScheduler(use_relays=False).select(view)
        assert not any(s.is_relay for s in selections)

    def test_relay_dc_fills_without_counting_completion(self):
        topo = relay_topology()
        job = relay_job(True)
        job.bind(topo)
        result = Simulation(
            topo,
            [job],
            BDSController(seed=0),
            SimConfig(max_cycles=3000),
            seed=0,
        ).run()
        assert result.all_complete
        # Relay copies exist but the relay DC is not in dc_completion.
        assert ("j", "B") not in result.dc_completion
        relayed = sum(
            1
            for block in job.blocks
            if result.store.dc_has_block("B", block.block_id)
        )
        assert relayed > 0


class TestRelayBenefit:
    def test_relays_speed_up_thin_direct_route(self):
        """The Fig. 1 effect: store-and-forward through a relay DC beats
        the thin network-layer route by a large factor."""
        times = {}
        for with_relay in (False, True):
            topo = relay_topology()
            job = relay_job(with_relay)
            job.bind(topo)
            config = BDSConfig(use_relays=with_relay)
            result = Simulation(
                topo,
                [job],
                BDSController(config=config, seed=0),
                SimConfig(max_cycles=3000),
                seed=0,
            ).run()
            times[with_relay] = result.completion_time("j")
        assert times[True] < times[False] / 2

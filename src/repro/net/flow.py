"""Flow-level bandwidth sharing.

Two allocation regimes are needed by the reproduction:

* **Max-min fairness** (progressive filling) — models what TCP-like
  transport gives the *decentralized* baselines (Gingko, Bullet, Akamai),
  where nobody assigns explicit rates and flows contend on shared links.
* **Controller-assigned rates** — BDS assigns each flow an explicit rate;
  :func:`clip_rates_to_capacity` then enforces physics by proportionally
  scaling down any resource that ended up oversubscribed (e.g. because the
  controller worked from slightly stale state, §5.1's non-blocking update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.net.topology import ResourceKey


@dataclass
class Flow:
    """A unidirectional transfer consuming a fixed set of resources.

    ``rate_cap`` optionally bounds the rate from above (BDS's bandwidth
    allocation, or a per-flow application limit); ``demand`` optionally
    bounds it by how much the flow can actually use this cycle
    (remaining bytes / cycle length).
    """

    flow_id: Hashable
    resources: Tuple[ResourceKey, ...]
    rate_cap: Optional[float] = None
    demand: Optional[float] = None

    def effective_cap(self) -> float:
        """The flow's own upper bound, +inf when unconstrained."""
        cap = float("inf")
        if self.rate_cap is not None:
            cap = min(cap, self.rate_cap)
        if self.demand is not None:
            cap = min(cap, self.demand)
        return cap


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """Progressive-filling max-min fair allocation.

    All flows grow at the same rate until some resource saturates; flows
    through that resource freeze at their current rate, and the remaining
    flows keep growing. Flow-level caps (``rate_cap``/``demand``) are
    honoured: a flow freezes when it hits its own cap, releasing capacity
    to the others. Runs in O(iterations × flows × path length); iterations
    are bounded by the number of resources plus the number of flows.

    The per-resource active-flow counts (``load``) only ever lose flows as
    the filling progresses, so they are maintained incrementally: each
    frozen flow decrements its resources' counts instead of the counts
    being rebuilt from every active flow each iteration. Allocations are
    bit-identical to the reference rebuild-every-iteration implementation
    (kept as :func:`_max_min_fair_rates_reference` for the A/B benchmark).
    """
    rates: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: List[Flow] = [f for f in flows if f.effective_cap() > 0]
    for flow in flows:
        if flow.effective_cap() <= 0:
            rates[flow.flow_id] = 0.0
    residual: Dict[ResourceKey, float] = dict(capacities)
    level = 0.0  # the common fair-share water level so far

    # Active flows per resource; maintained incrementally as flows freeze.
    load: Dict[ResourceKey, int] = {}
    for flow in active:
        for res in flow.resources:
            if res not in residual:
                raise KeyError(f"flow references unknown resource {res!r}")
            load[res] = load.get(res, 0) + 1

    while active:
        # Smallest increment that saturates a resource or hits a flow cap.
        increment = float("inf")
        for res, count in load.items():
            increment = min(increment, residual[res] / count)
        for flow in active:
            increment = min(increment, flow.effective_cap() - level)
        if increment == float("inf"):
            raise ValueError("unbounded allocation: no capacities bind any flow")
        increment = max(increment, 0.0)

        level += increment
        for flow in active:
            rates[flow.flow_id] = level
        for res, count in load.items():
            residual[res] -= increment * count
            if residual[res] < 0:  # numerical dust
                residual[res] = 0.0

        still_active: List[Flow] = []
        frozen: List[Flow] = []
        for flow in active:
            capped = flow.effective_cap() - level <= 1e-12
            saturated = any(residual[res] <= 1e-9 for res in flow.resources)
            if capped or saturated:
                frozen.append(flow)
            else:
                still_active.append(flow)
        if not frozen:
            # Numerical stalemate; freeze everything to terminate.
            break
        for flow in frozen:
            for res in flow.resources:
                load[res] -= 1
                if load[res] == 0:
                    del load[res]
        active = still_active
    return rates


def _max_min_fair_rates_reference(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """The original allocator rebuilding ``load`` every iteration.

    Kept as the in-tree baseline for the allocator A/B in
    ``benchmarks/bench_parallel_suite.py`` and the equivalence regression
    in ``tests/test_flow.py``; :func:`max_min_fair_rates` must match it
    bit-for-bit on every input.
    """
    rates: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: List[Flow] = [f for f in flows if f.effective_cap() > 0]
    for flow in flows:
        if flow.effective_cap() <= 0:
            rates[flow.flow_id] = 0.0
    residual: Dict[ResourceKey, float] = dict(capacities)
    level = 0.0

    while active:
        load: Dict[ResourceKey, int] = {}
        for flow in active:
            for res in flow.resources:
                load[res] = load.get(res, 0) + 1

        increment = float("inf")
        for res, count in load.items():
            if res not in residual:
                raise KeyError(f"flow references unknown resource {res!r}")
            increment = min(increment, residual[res] / count)
        for flow in active:
            increment = min(increment, flow.effective_cap() - level)
        if increment == float("inf"):
            raise ValueError("unbounded allocation: no capacities bind any flow")
        increment = max(increment, 0.0)

        level += increment
        for flow in active:
            rates[flow.flow_id] = level
        for res, count in load.items():
            residual[res] -= increment * count
            if residual[res] < 0:
                residual[res] = 0.0

        still_active: List[Flow] = []
        for flow in active:
            capped = flow.effective_cap() - level <= 1e-12
            saturated = any(residual[res] <= 1e-9 for res in flow.resources)
            if not (capped or saturated):
                still_active.append(flow)
        if len(still_active) == len(active):
            break
        active = still_active
    return rates


def clip_rates_to_capacity(
    flows: Sequence[Flow],
    requested: Mapping[Hashable, float],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """Scale requested rates so no resource is oversubscribed.

    Every resource with aggregate demand above capacity scales all its flows
    by the same factor (the network's approximation of per-link fair
    dropping); a flow crossing several oversubscribed resources gets the
    most restrictive factor. One pass is sufficient because scaling only
    ever decreases loads.
    """
    usage: Dict[ResourceKey, float] = {}
    for flow in flows:
        r = requested.get(flow.flow_id, 0.0)
        for res in flow.resources:
            usage[res] = usage.get(res, 0.0) + r
    scale: Dict[ResourceKey, float] = {}
    for res, used in usage.items():
        cap = capacities.get(res)
        if cap is None:
            raise KeyError(f"flow references unknown resource {res!r}")
        scale[res] = 1.0 if used <= cap or used <= 0 else cap / used
    result: Dict[Hashable, float] = {}
    for flow in flows:
        r = requested.get(flow.flow_id, 0.0)
        factor = min((scale[res] for res in flow.resources), default=1.0)
        result[flow.flow_id] = r * factor
    return result


def resource_utilization(
    flows: Sequence[Flow],
    rates: Mapping[Hashable, float],
) -> Dict[ResourceKey, float]:
    """Aggregate bytes/second crossing each resource under ``rates``."""
    usage: Dict[ResourceKey, float] = {}
    for flow in flows:
        r = rates.get(flow.flow_id, 0.0)
        for res in flow.resources:
            usage[res] = usage.get(res, 0.0) + r
    return usage

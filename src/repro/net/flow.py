"""Flow-level bandwidth sharing.

Two allocation regimes are needed by the reproduction:

* **Max-min fairness** (progressive filling) — models what TCP-like
  transport gives the *decentralized* baselines (Gingko, Bullet, Akamai),
  where nobody assigns explicit rates and flows contend on shared links.
* **Controller-assigned rates** — BDS assigns each flow an explicit rate;
  :func:`clip_rates_to_capacity` then enforces physics by proportionally
  scaling down any resource that ended up oversubscribed (e.g. because the
  controller worked from slightly stale state, §5.1's non-blocking update).

Both allocators exist in two bit-identical implementations: the original
scalar dict loops, and array kernels over a CSR flow×resource incidence
(:class:`repro.lp.incidence.FlowIncidence` — the same interning and
``reduceat``/``bincount`` machinery the routing solvers use). The public
entry points dispatch on ``vectorized`` and input size; the simulator
routes its choice through ``SimConfig(vectorized_flow=...)``. The
per-kernel bit-identity arguments live next to each vectorized step; the
randomized equivalence suite in ``tests/test_flow_kernel.py`` asserts
exact dict equality between the paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.net.topology import ResourceKey

#: Below this many flows the scalar loops win on constant factors, so the
#: dispatchers fall back to them; results are bit-identical either way.
VECTOR_MIN_FLOWS = 64


@dataclass
class Flow:
    """A unidirectional transfer consuming a fixed set of resources.

    ``rate_cap`` optionally bounds the rate from above (BDS's bandwidth
    allocation, or a per-flow application limit); ``demand`` optionally
    bounds it by how much the flow can actually use this cycle
    (remaining bytes / cycle length).
    """

    flow_id: Hashable
    resources: Tuple[ResourceKey, ...]
    rate_cap: Optional[float] = None
    demand: Optional[float] = None

    def effective_cap(self) -> float:
        """The flow's own upper bound, +inf when unconstrained."""
        cap = float("inf")
        if self.rate_cap is not None:
            cap = min(cap, self.rate_cap)
        if self.demand is not None:
            cap = min(cap, self.demand)
        return cap


@dataclass
class FlowKernelStats:
    """Diagnostics the rate kernels report back to their caller.

    ``stalemates`` counts progressive-filling iterations that terminated
    without freezing any flow — the numerical corner where no resource
    saturates and no cap binds within tolerance, historically a silent
    ``break``. The simulator surfaces the count per cycle through
    ``CycleStats.rate_stalemates``.
    """

    stalemates: int = 0


def max_min_fair_rates(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
    stats: Optional[FlowKernelStats] = None,
    vectorized: bool = True,
) -> Dict[Hashable, float]:
    """Progressive-filling max-min fair allocation.

    All flows grow at the same rate until some resource saturates; flows
    through that resource freeze at their current rate, and the remaining
    flows keep growing. Flow-level caps (``rate_cap``/``demand``) are
    honoured: a flow freezes when it hits its own cap, releasing capacity
    to the others.

    Dispatches between :func:`max_min_fair_rates_scalar` and
    :func:`max_min_fair_rates_vectorized` (bit-identical results): the
    array kernel only pays off past :data:`VECTOR_MIN_FLOWS` flows.
    """
    if vectorized and len(flows) >= VECTOR_MIN_FLOWS:
        return max_min_fair_rates_vectorized(flows, capacities, stats)
    return max_min_fair_rates_scalar(flows, capacities, stats)


def max_min_fair_rates_scalar(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
    stats: Optional[FlowKernelStats] = None,
) -> Dict[Hashable, float]:
    """The scalar progressive-filling loop (dict bookkeeping).

    Runs in O(iterations × flows × path length); iterations are bounded
    by the number of resources plus the number of flows.

    The per-resource active-flow counts (``load``) only ever lose flows as
    the filling progresses, so they are maintained incrementally: each
    frozen flow decrements its resources' counts instead of the counts
    being rebuilt from every active flow each iteration. Allocations are
    bit-identical to the reference rebuild-every-iteration implementation
    (kept as :func:`_max_min_fair_rates_reference` for the A/B benchmark)
    and to the array kernel (:func:`max_min_fair_rates_vectorized`).
    """
    rates: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: List[Flow] = [f for f in flows if f.effective_cap() > 0]
    for flow in flows:
        if flow.effective_cap() <= 0:
            rates[flow.flow_id] = 0.0
    residual: Dict[ResourceKey, float] = dict(capacities)
    level = 0.0  # the common fair-share water level so far

    # Active flows per resource; maintained incrementally as flows freeze.
    load: Dict[ResourceKey, int] = {}
    for flow in active:
        for res in flow.resources:
            if res not in residual:
                raise KeyError(f"flow references unknown resource {res!r}")
            load[res] = load.get(res, 0) + 1

    while active:
        # Smallest increment that saturates a resource or hits a flow cap.
        increment = float("inf")
        for res, count in load.items():
            increment = min(increment, residual[res] / count)
        for flow in active:
            increment = min(increment, flow.effective_cap() - level)
        if increment == float("inf"):
            raise ValueError("unbounded allocation: no capacities bind any flow")
        increment = max(increment, 0.0)

        level += increment
        for flow in active:
            rates[flow.flow_id] = level
        for res, count in load.items():
            residual[res] -= increment * count
            if residual[res] < 0:  # numerical dust
                residual[res] = 0.0

        still_active: List[Flow] = []
        frozen: List[Flow] = []
        for flow in active:
            capped = flow.effective_cap() - level <= 1e-12
            saturated = any(residual[res] <= 1e-9 for res in flow.resources)
            if capped or saturated:
                frozen.append(flow)
            else:
                still_active.append(flow)
        if not frozen:
            # Numerical stalemate: nothing saturated and nothing capped
            # within tolerance. Freeze everything to terminate, and count
            # the event so it is observable (CycleStats.rate_stalemates).
            if stats is not None:
                stats.stalemates += 1
            break
        for flow in frozen:
            for res in flow.resources:
                load[res] -= 1
                if load[res] == 0:
                    del load[res]
        active = still_active
    return rates


def max_min_fair_rates_vectorized(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
    stats: Optional[FlowKernelStats] = None,
) -> Dict[Hashable, float]:
    """Array progressive filling over CSR flow×resource incidence.

    Bit-identical to :func:`max_min_fair_rates_scalar`; every step of the
    scalar loop has an exact array counterpart:

    * the bottleneck increment ``min(residual/load)`` is a float minimum —
      order-independent, so an array ``.min()`` equals the dict-iteration
      ``min`` chain;
    * the cap increment ``min(cap_i - level)`` equals ``min(cap_i) -
      level`` because IEEE subtraction by a constant is monotone, so only
      the running cap minimum is subtracted;
    * per-resource residual updates subtract ``increment × load`` with
      one elementwise multiply — the same two-operand IEEE ops, per
      resource, as the scalar loop;
    * flow freezing is boolean masking (``capped | saturated``) with
      saturation detected by per-flow segment minima over residuals;
    * load updates scatter-subtract each frozen flow's resource counts
      (integer arithmetic — exact).

    Duplicate ``flow_id`` values resolve like the scalar loop: the final
    dict value is the freeze level of the longest-surviving duplicate
    (levels are monotone, so that is the maximum).
    """
    # Imported lazily: repro.lp.__init__ imports repro.lp.mcf, which
    # imports repro.net.topology, which triggers repro.net.__init__ →
    # this module — an eager import here would close that cycle onto a
    # partially-initialized repro.lp.mcf.
    from repro.lp.incidence import FlowIncidence, segment_mins

    rates: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: List[Flow] = [f for f in flows if f.effective_cap() > 0]
    if not active:
        return rates

    # Only active flows are compiled (and therefore validated) — the
    # scalar loop likewise never looks at a zero-cap flow's resources.
    inc = FlowIncidence.build((f.resources for f in active), capacities)
    residual = inc.caps.copy()
    load = inc.loads()  # int64: exact scatter arithmetic
    num_res = residual.size

    act_flat = inc.flat_res
    act_lens = inc.lens
    act_caps = np.array([f.effective_cap() for f in active], dtype=np.float64)
    act_ids = np.arange(len(active), dtype=np.intp)
    final_level = np.zeros(len(active), dtype=np.float64)
    level = 0.0

    while act_ids.size:
        pos = load > 0
        if pos.any():
            inc_res = (residual[pos] / load[pos]).min()
        else:
            inc_res = np.inf
        increment = min(inc_res, act_caps.min() - level)
        if increment == float("inf"):
            raise ValueError("unbounded allocation: no capacities bind any flow")
        increment = float(max(increment, 0.0))

        level += increment
        residual[pos] -= increment * load[pos]
        np.maximum(residual, 0.0, out=residual)  # numerical dust

        capped = (act_caps - level) <= 1e-12
        act_starts = np.concatenate(
            ([0], np.cumsum(act_lens[:-1]))
        ) if act_lens.size else act_lens
        saturated = (
            segment_mins(residual[act_flat], act_starts, act_lens, np.inf)
            <= 1e-9
        )
        frozen = capped | saturated
        if not frozen.any():
            # Numerical stalemate (see the scalar loop): freeze the
            # remaining flows at the current level and count the event.
            if stats is not None:
                stats.stalemates += 1
            final_level[act_ids] = level
            break
        final_level[act_ids[frozen]] = level

        entry_frozen = np.repeat(frozen, act_lens)
        load -= np.bincount(act_flat[entry_frozen], minlength=num_res)
        keep = ~frozen
        act_flat = act_flat[~entry_frozen]
        act_lens = act_lens[keep]
        act_caps = act_caps[keep]
        act_ids = act_ids[keep]

    for i, flow in enumerate(active):
        r = final_level[i]
        if r > rates[flow.flow_id]:
            rates[flow.flow_id] = float(r)
    return rates


def _max_min_fair_rates_reference(
    flows: Sequence[Flow],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """The original allocator rebuilding ``load`` every iteration.

    Kept as the in-tree baseline for the allocator A/B in
    ``benchmarks/bench_parallel_suite.py`` and the equivalence regression
    in ``tests/test_flow.py``; :func:`max_min_fair_rates` must match it
    bit-for-bit on every input.
    """
    rates: Dict[Hashable, float] = {f.flow_id: 0.0 for f in flows}
    active: List[Flow] = [f for f in flows if f.effective_cap() > 0]
    for flow in flows:
        if flow.effective_cap() <= 0:
            rates[flow.flow_id] = 0.0
    residual: Dict[ResourceKey, float] = dict(capacities)
    level = 0.0

    while active:
        load: Dict[ResourceKey, int] = {}
        for flow in active:
            for res in flow.resources:
                load[res] = load.get(res, 0) + 1

        increment = float("inf")
        for res, count in load.items():
            if res not in residual:
                raise KeyError(f"flow references unknown resource {res!r}")
            increment = min(increment, residual[res] / count)
        for flow in active:
            increment = min(increment, flow.effective_cap() - level)
        if increment == float("inf"):
            raise ValueError("unbounded allocation: no capacities bind any flow")
        increment = max(increment, 0.0)

        level += increment
        for flow in active:
            rates[flow.flow_id] = level
        for res, count in load.items():
            residual[res] -= increment * count
            if residual[res] < 0:
                residual[res] = 0.0

        still_active: List[Flow] = []
        for flow in active:
            capped = flow.effective_cap() - level <= 1e-12
            saturated = any(residual[res] <= 1e-9 for res in flow.resources)
            if not (capped or saturated):
                still_active.append(flow)
        if len(still_active) == len(active):
            break
        active = still_active
    return rates


def clip_rates_to_capacity(
    flows: Sequence[Flow],
    requested: Mapping[Hashable, float],
    capacities: Mapping[ResourceKey, float],
    vectorized: bool = True,
) -> Dict[Hashable, float]:
    """Scale requested rates so no resource is oversubscribed.

    Every resource with aggregate demand above capacity scales all its flows
    by the same factor (the network's approximation of per-link fair
    dropping); a flow crossing several oversubscribed resources gets the
    most restrictive factor. One pass is sufficient because scaling only
    ever decreases loads.

    Dispatches between :func:`clip_rates_to_capacity_scalar` and
    :func:`clip_rates_to_capacity_vectorized` (bit-identical results).
    """
    if vectorized and len(flows) >= VECTOR_MIN_FLOWS:
        return clip_rates_to_capacity_vectorized(flows, requested, capacities)
    return clip_rates_to_capacity_scalar(flows, requested, capacities)


def clip_rates_to_capacity_scalar(
    flows: Sequence[Flow],
    requested: Mapping[Hashable, float],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """The scalar one-pass clip (dict bookkeeping)."""
    usage: Dict[ResourceKey, float] = {}
    for flow in flows:
        r = requested.get(flow.flow_id, 0.0)
        for res in flow.resources:
            usage[res] = usage.get(res, 0.0) + r
    scale: Dict[ResourceKey, float] = {}
    for res, used in usage.items():
        cap = capacities.get(res)
        if cap is None:
            raise KeyError(f"flow references unknown resource {res!r}")
        scale[res] = 1.0 if used <= cap or used <= 0 else cap / used
    result: Dict[Hashable, float] = {}
    for flow in flows:
        r = requested.get(flow.flow_id, 0.0)
        factor = min((scale[res] for res in flow.resources), default=1.0)
        result[flow.flow_id] = r * factor
    return result


def clip_rates_to_capacity_vectorized(
    flows: Sequence[Flow],
    requested: Mapping[Hashable, float],
    capacities: Mapping[ResourceKey, float],
) -> Dict[Hashable, float]:
    """Array one-pass clip over CSR flow×resource incidence.

    Bit-identical to :func:`clip_rates_to_capacity_scalar`: the whole
    arithmetic lives in :func:`repro.lp.incidence.outer_waterfill` (also
    the sharded controller's WAN reconciliation pass — one
    implementation, two consumers), which accumulates per-resource usage
    via ``bincount`` in the same entry order as the scalar dict loop
    (identical partial sums), applies the same ``cap / used`` guard
    elementwise, and takes each flow's factor as a segment minimum over
    its resources (order-independent). Unlike the waterfill, *every*
    flow's resources are validated — the scalar clip builds usage over
    all flows, zero-rate ones included.
    """
    # Imported lazily: see the waterfill note on the repro.lp cycle.
    from repro.lp.incidence import FlowIncidence, outer_waterfill

    if not flows:
        return {}
    inc = FlowIncidence.build((f.resources for f in flows), capacities)
    r = np.fromiter(
        (requested.get(f.flow_id, 0.0) for f in flows),
        dtype=np.float64,
        count=len(flows),
    )
    vals = outer_waterfill(inc, r)
    return {f.flow_id: float(vals[i]) for i, f in enumerate(flows)}


def resource_utilization(
    flows: Sequence[Flow],
    rates: Mapping[Hashable, float],
) -> Dict[ResourceKey, float]:
    """Aggregate bytes/second crossing each resource under ``rates``."""
    usage: Dict[ResourceKey, float] = {}
    for flow in flows:
        r = rates.get(flow.flow_id, 0.0)
        for res in flow.resources:
            usage[res] = usage.get(res, 0.0) + r
    return usage

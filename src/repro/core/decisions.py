"""Decision records produced by the controller each cycle.

The paper's output per cycle is the 2-tuple ⟨w, f⟩: ``w_b,s`` (is server s
the destination of block b this cycle) and ``f_b,p`` (bandwidth allocated
to b on path p). :class:`ScheduledBlock` captures a ``w`` entry;
:class:`ControlDecision` carries the final directives (each encodes its
``f`` as a rate cap) plus timing diagnostics used by the scalability
benchmarks (Fig. 11a, 13a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.net.simulator import TransferDirective
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob

BlockId = Tuple[str, int]


@dataclass(frozen=True)
class ScheduledBlock:
    """One scheduling-step selection: deliver ``block`` to ``dst_server``.

    ``is_relay`` marks placements onto relay DCs (§2.2 Type I path
    diversity); relays never count toward job completion and are scheduled
    at lower priority than real deliveries.
    """

    job_id: str
    block: Block
    dst_dc: str
    dst_server: str
    duplicates: int  # cluster-wide copy count when selected (rarity)
    is_relay: bool = False


@dataclass
class SelectionBatch:
    """Integer companion of a scheduler selection list.

    Produced by the vectorized scheduling kernel alongside its
    :class:`ScheduledBlock` list: row ``i`` of these parallel columns
    describes ``selections[i]`` in the possession matrix's interned id
    space (see :class:`repro.overlay.store.PossessionMatrix`). The router
    consumes it to build commodity groups without re-hashing string
    server ids — group keys, source picks, and path-memo lookups all run
    on small ints; names are materialized once per final group.
    """

    #: The view's job list; ``job_slots`` indexes into it.
    jobs: List[MulticastJob]
    #: Per-row interned block column id.
    gids: List[int]
    #: Per-row block index within its job.
    indices: List[int]
    #: Per-row destination server id.
    dst_sids: List[int]
    #: Per-row destination DC id.
    dc_gids: List[int]
    #: Per-row index into ``jobs``.
    job_slots: List[int]


@dataclass
class ControlDecision:
    """The controller's output for one cycle."""

    cycle: int
    directives: List[TransferDirective] = field(default_factory=list)
    scheduled_blocks: int = 0
    num_commodities: int = 0
    schedule_runtime: float = 0.0
    routing_runtime: float = 0.0
    objective: float = 0.0  # total allocated bytes/s (Eq. 5 value)
    # Routing-solver telemetry (FPTAS backend; zero/empty otherwise):
    # flow pushes, Fleischer phases, and how the solve started ("cold",
    # "warm", "reuse", "cold-fallback").
    routing_iterations: int = 0
    routing_phases: int = 0
    routing_warm_start: str = ""
    #: Demand-independence certificate for the event engine's decision
    #: reuse (§5.2: decisions stay valid until state changes): how many
    #: cycles past ``cycle`` this decision's directives are guaranteed to
    #: be re-derivable bit-identically under an unchanged validity key,
    #: accounting for commodity demands draining as bytes flow. ``None``
    #: means unbounded (no output depends on a draining quantity); ``0``
    #: means never reuse (e.g. approximate solver backends, partition
    #: fallback directives).
    reuse_horizon: Optional[int] = 0
    # Sharded control plane telemetry (BDSConfig.shards > 1; zeros on
    # the single-controller path). shard_count is the configured shard
    # count; the walls are the max/mean per-shard schedule+route
    # wall-clock this cycle over the shards that decided fresh (replayed
    # shards cost ~nothing and are excluded); reconcile_runtime is the
    # outer WAN-capacity waterfill over all shards' directives; and
    # reconciled_directives counts directives whose rate cap the
    # reconciliation pass actually lowered.
    shard_count: int = 0
    shard_wall_max: float = 0.0
    shard_wall_mean: float = 0.0
    reconcile_runtime: float = 0.0
    reconciled_directives: int = 0
    # Shard-local state telemetry (shard_local_state / process mode;
    # zeros on the shared-store fallback paths, which hold no per-shard
    # state): the effective decide stride this cycle (the adaptive
    # stride's current value under shard_stride="auto", the static knob
    # otherwise), the max per-shard possession-array and candidate-table
    # bytes over the shards that decided fresh, and the summed
    # structural size of the delta payloads that fed them.
    shard_stride: int = 0
    shard_state_bytes: int = 0
    shard_candidate_bytes: int = 0
    shard_payload_bytes: int = 0

    @property
    def total_runtime(self) -> float:
        """Controller algorithm running time (the Fig. 11a metric).

        Includes the sharded reconciliation pass (zero when unsharded):
        it is on the decide critical path just like schedule and route.
        """
        return self.schedule_runtime + self.routing_runtime + self.reconcile_runtime

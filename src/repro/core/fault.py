"""Controller replication and failover (§5.3).

The production system replicates the controller over three ZooKeeper-backed
replicas: when the master fails, another replica is elected; when *all*
replicas are unreachable (e.g. a network partition), agents fall back to
the decentralized overlay protocol. :class:`ControllerReplicaSet` models the
replica group at cycle granularity; the simulation couples its
``has_leader()`` output to ``ClusterView.controller_available``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.utils.validation import check_positive


@dataclass
class ReplicaState:
    """Health of one controller replica."""

    name: str
    up: bool = True


class ControllerReplicaSet:
    """Leader election over a fixed replica group, advanced per cycle.

    Election is modeled after leader-based consensus: when the current
    leader dies, the surviving replicas elect a new one after
    ``election_cycles`` cycles without a leader (1 by default — elections
    complete well within a 3-second BDS cycle).
    """

    def __init__(
        self, replica_names: Optional[List[str]] = None, election_cycles: int = 1
    ) -> None:
        check_positive("election_cycles", election_cycles)
        names = replica_names or ["controller-0", "controller-1", "controller-2"]
        if len(set(names)) != len(names):
            raise ValueError("replica names must be unique")
        self.replicas: Dict[str, ReplicaState] = {
            name: ReplicaState(name=name) for name in names
        }
        self.election_cycles = election_cycles
        self._leader: Optional[str] = names[0]
        self._cycles_without_leader = 0

    # -- failure injection ---------------------------------------------------

    def fail(self, name: str) -> None:
        """Crash one replica; if it led, an election begins."""
        replica = self._get(name)
        replica.up = False
        if self._leader == name:
            self._leader = None
            self._cycles_without_leader = 0

    def recover(self, name: str) -> None:
        """Restart one replica (it rejoins as a follower)."""
        self._get(name).up = True

    def fail_all(self) -> None:
        """Partition away the whole replica group (Fig. 12a, cycle 20)."""
        for replica in self.replicas.values():
            replica.up = False
        self._leader = None
        self._cycles_without_leader = 0

    def recover_all(self) -> None:
        for replica in self.replicas.values():
            replica.up = True

    def _get(self, name: str) -> ReplicaState:
        try:
            return self.replicas[name]
        except KeyError:
            raise KeyError(f"unknown replica {name!r}") from None

    # -- cycle advancement -------------------------------------------------------

    def tick(self) -> None:
        """Advance one cycle: run the election protocol if leaderless."""
        if self._leader is not None:
            if not self.replicas[self._leader].up:
                self._leader = None
                self._cycles_without_leader = 0
            else:
                return
        survivors = sorted(n for n, r in self.replicas.items() if r.up)
        if not survivors:
            return
        self._cycles_without_leader += 1
        if self._cycles_without_leader >= self.election_cycles:
            # Deterministic election: lowest surviving name wins.
            self._leader = survivors[0]
            self._cycles_without_leader = 0

    # -- queries -----------------------------------------------------------------

    @property
    def leader(self) -> Optional[str]:
        return self._leader

    def has_leader(self) -> bool:
        """True when a controller is available to make centralized decisions."""
        return self._leader is not None

    def up_count(self) -> int:
        return sum(1 for r in self.replicas.values() if r.up)

"""Shard-local execution for the sharded controller.

This module owns the *partition-scoped state* side of the sharded
control plane (``BDSConfig.shards > 1``): each shard decides against a
:class:`ShardMirror` — its own :class:`~repro.overlay.store.
PossessionIndex` (shard-local block interning and bitsets), its own
:class:`~repro.net.candidates.CandidateTable`, and its own
:class:`~repro.net.cycle_cache.CycleCache` — so per-shard possession and
candidate memory is O(its partition's pairs), not O(total pairs). The
same mirror class backs both execution modes:

* ``shard_mode="inprocess"`` (:class:`LocalShardRunner`): mirrors live
  in the controller's process and are fed directly from the live view;
* ``shard_mode="process"`` (:class:`ShardExecutor`): one persistent
  single-worker :class:`~concurrent.futures.ProcessPoolExecutor` per
  shard gives each shard worker affinity; the worker keeps its mirror
  across cycles, so per-decide payloads are *deltas*. All payloads are
  pickle-pure (topologies, jobs, and directives are plain dataclasses of
  primitives; jobs carry no topology reference — their placement binding
  is a string dict).

Both modes share :class:`ShardFeed`, the parent-side delta bookkeeping:
the first time a job reaches its shard the feed snapshots that job's
current holders outright; every later possession change arrives through
the **delivery-log watermark replay** — the parent keeps one cursor per
shard into the store's append-only delivery log and forwards only the
records of blocks the shard owns (blocks belong to exactly one job, jobs
to exactly one shard). Replays re-apply via ``seed`` (idempotent: an
already-set possession bit is a no-op), so overlap between a snapshot
and the log can never double-count. ``PossessionIndex.seed`` does not
write the delivery log, so initial placements are covered by the
snapshot alone. Possession is monotone while a simulation runs (the
simulator never drops copies mid-run; disk-loss enters as *agent*
failure), so a mirror can never hold a copy the global store has lost.

Because the mirror store answers straight from a live
:class:`~repro.overlay.store.PossessionMatrix` and carries a candidate
table, mirror decides run the *vectorized* scheduling kernel and the
batched router build — bit-identical to the shared-store sub-view path
by the array-control-plane equivalence guarantees (shard-local gid
numbering differs with arrival order, but nothing downstream compares
gids across jobs; holders, duplicate counts, and iteration orders are
equal), so neither ``shard_mode`` nor ``shard_local_state`` changes
results. The equivalence tests assert this directly.

Determinism: the parent feeds and submits due shards in shard-index
order and gathers results in the same order, so the combined directive
list is identical regardless of worker scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import BDSConfig
    from repro.net.simulator import ClusterView, TransferDirective
    from repro.net.topology import Topology
    from repro.overlay.job import MulticastJob

BlockId = Tuple[str, int]
ResourceKey = Tuple[str, str]


@dataclass
class ShardPayload:
    """One due shard's decide input (a delta against the shard mirror)."""

    cycle: int
    time: float
    cycle_seconds: float
    budgets: Mapping[ResourceKey, float]
    failed_agents: Tuple[str, ...]
    failed_links: FrozenSet
    active_job_ids: Tuple[str, ...]
    #: Jobs the mirror has not seen yet, with a holders snapshot as
    #: ``(job_id, server_id, block-index array)`` batches — one entry
    #: per (new job, holding server), in job order then ascending
    #: server-row order (deterministic payload bytes), each carrying the
    #: ascending indices of that job's blocks the server holds. The
    #: batched form keeps 10^6-block snapshots out of per-block Python
    #: loops on both sides of the boundary.
    new_jobs: List["MulticastJob"] = field(default_factory=list)
    new_holders: List[Tuple[str, str, "np.ndarray"]] = field(
        default_factory=list
    )
    #: Possession deltas since this shard's previous payload:
    #: ``(block_id, dst_server)`` in delivery-log order.
    deliveries: List[Tuple[BlockId, str]] = field(default_factory=list)
    #: In-flight partial bytes. Process mode filters to the shard's
    #: blocks (pickle size); in-process passes the live map (strategies
    #: only query their own blocks' keys, so results are identical).
    partials: Mapping[Tuple[BlockId, str], float] = field(default_factory=dict)
    #: First payload only: the topology, store vectorization flag, and
    #: controller config the mirror is built from.
    topology: Optional["Topology"] = None
    vectorized: bool = True
    config: Optional["BDSConfig"] = None

    def approx_bytes(self) -> int:
        """Structural size estimate of the *delta* stream (bytes).

        Counts the components that actually cross the mirror boundary
        each decide — new jobs (dominated by their block lists), holders
        snapshots, and the watermark delivery replay — with fixed
        per-entry costs, so the telemetry is deterministic and identical
        across execution modes (a real ``pickle.dumps`` would charge the
        in-process mode for serialization it never performs). The
        per-cycle scalars and the shared partials/budget references are
        excluded.
        """
        total = 0
        for job in self.new_jobs:
            total += 256 + 96 * len(job.blocks)
        for _job_id, _server, indices in self.new_holders:
            total += 48 + 8 * len(indices)
        total += 56 * len(self.deliveries)
        return total


@dataclass
class ShardResult:
    """One shard decide's output, execution-mode independent.

    The in-process runner and the process workers both reduce to this
    shape, so the accumulation and replay bookkeeping in
    ``BDSController._decide_sharded`` cannot diverge between modes.
    """

    directives: List["TransferDirective"]
    scheduled_blocks: int
    num_commodities: int
    objective: float
    schedule_runtime: float
    routing_runtime: float
    iterations: int
    phases: int
    warm_start: str
    reuse_horizon: Optional[int]
    wall: float
    #: Shard-local state telemetry: possession-array bytes and candidate
    #: table bytes of the mirror after this decide, and the structural
    #: size of the delta payload that fed it. Zero on the shared-store
    #: fallback path (``shard_local_state=False`` / speculation
    #: overlays), which holds no per-shard state.
    state_bytes: int = 0
    candidate_bytes: int = 0
    payload_bytes: int = 0


class ShardMirror:
    """One shard's partition-scoped control state.

    Owns everything a shard needs to decide: a shard-local possession
    index (only the shard's blocks are ever interned, so its matrix
    capacity — bits, dup counts, DC counts — grows with the partition,
    not the cluster), the shard's candidate table built incrementally as
    jobs arrive, the scheduler/router pair (with the router's private
    FPTAS warm store), and a persistent :class:`CycleCache`. Fed by
    :meth:`apply`-ing :class:`ShardPayload` deltas; :meth:`decide` runs
    one schedule+route over a plain :class:`ClusterView` whose store IS
    the mirror — the exactness witness holds, so the vectorized kernel
    and the batched router build engage.
    """

    def __init__(
        self,
        topology: "Topology",
        config: "BDSConfig",
        vectorized: bool = True,
        block_capacity: int = 64,
    ) -> None:
        from repro.core.routing import BDSRouter
        from repro.core.scheduling import RarestFirstScheduler
        from repro.net.cycle_cache import CycleCache
        from repro.overlay.store import PossessionIndex

        self.topology = topology
        self.config = config
        server_dc = {
            server.server_id: server.dc
            for server in topology.servers.values()
        }
        # Right-size the matrix to the partition: callers pass the block
        # count of the shard's first job batch, so per-shard possession
        # arrays start at ~pairs/k instead of the cluster-scale floor.
        self.store = PossessionIndex(
            server_dc, vectorized=vectorized, block_capacity=block_capacity
        )
        self.jobs_by_id: Dict[str, "MulticastJob"] = {}
        self.blocks_by_id: Dict[BlockId, object] = {}
        self.scheduler = RarestFirstScheduler(
            max_blocks_per_cycle=config.max_blocks_per_cycle,
            use_relays=config.use_relays,
        )
        self.router = BDSRouter(
            backend=config.routing_backend,
            epsilon=config.epsilon,
            max_sources_per_group=config.max_sources_per_group,
            merge_blocks=config.merge_blocks,
        )
        self.cache = CycleCache()
        self.candidates = None
        if self.store.matrix is not None:
            from repro.net.candidates import CandidateTable

            self.candidates = CandidateTable((), self.store.matrix)

    def apply(self, payload: ShardPayload) -> None:
        """Fold one delta payload into the mirror (idempotent seeds).

        With the matrix backing, each new job's blocks are interned as
        one contiguous column range up front, so the holders snapshot
        and the delivery replay land as whole-array ``set_many`` batches
        (``base + block-index``) instead of per-block facade calls — the
        final possession bits, duplicate counts, and epoch total are
        identical to the sequential form (seeds are idempotent and
        commute across distinct (server, block) pairs).
        """
        store = self.store
        matrix = store.matrix
        blocks_by_id = self.blocks_by_id
        job_base: Dict[str, int] = {}
        for job in payload.new_jobs:
            self.jobs_by_id[job.job_id] = job
            if matrix is None:
                # The per-block object map only serves the scalar seed
                # path below; the matrix path addresses blocks by column
                # id and never chases the 10^6 Block objects here.
                for block in job.blocks:
                    blocks_by_id[block.block_id] = block
            if matrix is not None:
                base = matrix.intern_block_range(
                    job.job_id, len(job.blocks)
                )
                job_base[job.job_id] = base
                if self.candidates is not None:
                    self.candidates.ensure_job(
                        job,
                        gids=np.arange(
                            base, base + len(job.blocks), dtype=np.int64
                        ),
                    )
            elif self.candidates is not None:
                self.candidates.ensure_job(job)
        if matrix is not None:
            for job_id, server, indices in payload.new_holders:
                store.seed_gids(server, job_base[job_id] + indices)
            if payload.deliveries:
                gid_of = matrix.block_gids
                by_server: Dict[str, List[int]] = {}
                for block_id, dst in payload.deliveries:
                    by_server.setdefault(dst, []).append(gid_of[block_id])
                for dst, gids in by_server.items():
                    store.seed_gids(
                        dst, np.asarray(gids, dtype=np.int64)
                    )
        else:
            for job_id, server, indices in payload.new_holders:
                blocks = self.jobs_by_id[job_id].blocks
                store.seed(server, [blocks[i] for i in indices])
            for block_id, dst in payload.deliveries:
                store.seed(dst, (blocks_by_id[block_id],))

    def decide(self, payload: ShardPayload) -> ShardResult:
        """One schedule+route over the mirror for this payload's cycle."""
        import time as _time

        from repro.net.simulator import ClusterView

        view = ClusterView(
            topology=self.topology,
            store=self.store,
            jobs=[self.jobs_by_id[jid] for jid in payload.active_job_ids],
            cycle=payload.cycle,
            time=payload.time,
            cycle_seconds=payload.cycle_seconds,
            bulk_capacities=payload.budgets,
            failed_agents=set(payload.failed_agents),
            controller_available=True,
            partial_bytes=payload.partials,
            failed_links=payload.failed_links,
            cache=self.cache,
            candidates=self.candidates,
        )
        started = _time.perf_counter()
        selections = self.scheduler.select(view)
        directives, diag = self.router.route(
            view, selections, batch=getattr(self.scheduler, "last_batch", None)
        )
        wall = _time.perf_counter() - started
        return ShardResult(
            directives=directives,
            scheduled_blocks=len(selections),
            num_commodities=diag.num_commodities,
            objective=diag.objective,
            schedule_runtime=getattr(self.scheduler, "last_runtime", 0.0),
            routing_runtime=diag.runtime,
            iterations=diag.iterations,
            phases=diag.phases,
            warm_start=diag.warm_start,
            reuse_horizon=diag.reuse_horizon,
            wall=wall,
            state_bytes=self.store.state_bytes(),
            candidate_bytes=(
                self.candidates.state_bytes()
                if self.candidates is not None
                else 0
            ),
            payload_bytes=payload.approx_bytes(),
        )


class ShardFeed:
    """Parent-side delta bookkeeping, shared by both execution modes.

    Tracks per shard which jobs the mirror already knows and a watermark
    into the store's append-only delivery log; :meth:`payload` emits
    exactly the delta between the mirror's last feeding and the live
    view. Job→shard ownership is resolved through the controller's
    ``shard_of`` callable so hash and affinity partitioning feed the
    same mirrors they decide (the feed must never re-derive assignments
    with a different policy than the bucketer).
    """

    def __init__(self, shards: int, shard_of: Callable[[str], int]) -> None:
        self._shard_of = shard_of
        self._known_jobs: List[Set[str]] = [set() for _ in range(shards)]
        self._watermarks: List[int] = [0] * shards
        self._initialized: List[bool] = [False] * shards

    def payload(
        self,
        view: "ClusterView",
        shard: int,
        bucket: Sequence["MulticastJob"],
        config: "BDSConfig",
        isolate: bool,
    ) -> ShardPayload:
        """The shard's delta payload for this cycle's view.

        ``isolate=True`` (process mode) copies the budget map and
        filters the partial-bytes map to the shard's blocks — the
        payload crosses a pickle boundary. ``isolate=False`` (in-process
        mirrors) passes the live mappings through: the mirror only
        queries its own blocks' keys, results are identical, and the
        filtering cost vanishes.
        """
        known = self._known_jobs[shard]
        new_jobs = [job for job in bucket if job.job_id not in known]
        new_holders: List[Tuple[str, str, np.ndarray]] = []
        store = view.store
        matrix = getattr(store, "matrix", None)
        for job in new_jobs:
            known.add(job.job_id)
            if matrix is not None:
                # One row-gather per (job, server) replaces the
                # per-block holders() scan: gather the job's column ids
                # once, then test each server's bit row against them.
                # Keys are built as (job_id, index) tuples directly —
                # block ids are exactly that, and skipping the Block
                # objects keeps the gather from pointer-chasing 10^6
                # dataclass instances inside the decide wall.
                gid_map = matrix.block_gids
                n_blocks = len(job.blocks)
                job_id = job.job_id
                get_gid = gid_map.get
                gids = np.fromiter(
                    (get_gid((job_id, i), -1) for i in range(n_blocks)),
                    dtype=np.int64,
                    count=n_blocks,
                )
                seen = gids >= 0
                if not seen.any():
                    continue
                sub_gids = gids[seen]
                sub_idx = np.flatnonzero(seen)
                held = matrix.dup[sub_gids] > 0
                if not held.any():
                    continue
                sub_gids = sub_gids[held]
                sub_idx = sub_idx[held]
                names = matrix.server_names
                for sid in range(matrix.num_servers):
                    mask = matrix.test_row_many(sid, sub_gids)
                    if mask.any():
                        new_holders.append(
                            (job.job_id, names[sid], sub_idx[mask])
                        )
            else:
                per_server: Dict[str, List[int]] = {}
                for block in job.blocks:
                    for server in store.holders(block.block_id):
                        per_server.setdefault(server, []).append(
                            block.index
                        )
                for server in sorted(per_server):
                    new_holders.append(
                        (
                            job.job_id,
                            server,
                            np.asarray(
                                per_server[server], dtype=np.int64
                            ),
                        )
                    )
        log = store.deliveries
        watermark = self._watermarks[shard]
        shard_of = self._shard_of
        deliveries = [
            (record.block_id, record.dst_server)
            for record in log[watermark:]
            if shard_of(record.block_id[0]) == shard
        ]
        self._watermarks[shard] = len(log)
        partial_map = getattr(view, "_partial", {})
        if isolate:
            partials = {
                key: value
                for key, value in partial_map.items()
                if shard_of(key[0][0]) == shard
            }
            budgets: Mapping[ResourceKey, float] = dict(view.bulk_capacities)
        else:
            partials = partial_map
            budgets = view.bulk_capacities
        first = not self._initialized[shard]
        self._initialized[shard] = True
        return ShardPayload(
            cycle=view.cycle,
            time=view.time,
            cycle_seconds=view.cycle_seconds,
            budgets=budgets,
            failed_agents=tuple(sorted(view.failed_agents)),
            failed_links=view.failed_links,
            active_job_ids=tuple(job.job_id for job in bucket),
            new_jobs=new_jobs,
            new_holders=new_holders,
            deliveries=deliveries,
            partials=partials,
            topology=view.topology if first else None,
            vectorized=getattr(store, "matrix", None) is not None,
            config=config if first else None,
        )


class LocalShardRunner:
    """In-process shard-local mirrors (``shard_local_state``, default).

    The in-process twin of :class:`ShardExecutor`: same feed, same
    mirrors, no process boundary. Compared to the PR 7 shared-store
    sub-views this trades one extra (partitioned) copy of possession
    state for per-shard candidate tables and caches that are
    O(pairs/shards) — the memory shape that lets a shard lift out to its
    own process or host unchanged.
    """

    def __init__(
        self, config: "BDSConfig", shard_of: Callable[[str], int]
    ) -> None:
        self.config = config
        self.feed = ShardFeed(config.shards, shard_of)
        self._mirrors: List[Optional[ShardMirror]] = [None] * config.shards

    def decide(
        self,
        view: "ClusterView",
        buckets: Sequence[Sequence["MulticastJob"]],
        due: Sequence[int],
    ) -> List[ShardResult]:
        """Run the due shards' decides in shard-index order."""
        results: List[ShardResult] = []
        for shard in due:
            payload = self.feed.payload(
                view, shard, buckets[shard], self.config, isolate=False
            )
            mirror = self._mirrors[shard]
            if mirror is None:
                mirror = ShardMirror(
                    view.topology,
                    self.config,
                    vectorized=payload.vectorized,
                    block_capacity=_payload_block_count(payload),
                )
                self._mirrors[shard] = mirror
            mirror.apply(payload)
            results.append(mirror.decide(payload))
        return results

    def mirror_state_bytes(self) -> List[Tuple[int, int]]:
        """Per existing mirror: (possession bytes, candidate bytes)."""
        out: List[Tuple[int, int]] = []
        for mirror in self._mirrors:
            if mirror is None:
                continue
            out.append(
                (
                    mirror.store.state_bytes(),
                    mirror.candidates.state_bytes()
                    if mirror.candidates is not None
                    else 0,
                )
            )
        return out


def _payload_block_count(payload: ShardPayload) -> int:
    """Matrix-capacity hint from a mirror's first payload."""
    return max(64, sum(len(job.blocks) for job in payload.new_jobs))


# Worker-process mirror. Each pool has exactly one worker and serves
# exactly one shard, so a single module global suffices.
_MIRROR: Optional[ShardMirror] = None


def _worker_decide(payload: ShardPayload) -> ShardResult:
    global _MIRROR
    if _MIRROR is None:
        _MIRROR = ShardMirror(
            payload.topology,
            payload.config,
            vectorized=payload.vectorized,
            block_capacity=_payload_block_count(payload),
        )
    _MIRROR.apply(payload)
    return _MIRROR.decide(payload)


class ShardExecutor:
    """Parent-side manager of the per-shard worker pools."""

    def __init__(
        self, config: "BDSConfig", shard_of: Callable[[str], int]
    ) -> None:
        self.config = config
        self.feed = ShardFeed(config.shards, shard_of)
        self._pools: List[Optional[ProcessPoolExecutor]] = [
            None
        ] * config.shards

    def decide(
        self,
        view: "ClusterView",
        buckets: Sequence[Sequence["MulticastJob"]],
        due: Sequence[int],
    ) -> List[ShardResult]:
        """Run the due shards' decides concurrently; results in due order."""
        futures = []
        for shard in due:
            payload = self.feed.payload(
                view, shard, buckets[shard], self.config, isolate=True
            )
            pool = self._pools[shard]
            if pool is None:
                pool = ProcessPoolExecutor(max_workers=1)
                self._pools[shard] = pool
            futures.append(pool.submit(_worker_decide, payload))
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        for pool in self._pools:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        self._pools = [None] * self.config.shards

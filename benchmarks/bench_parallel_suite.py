"""Parallel experiment engine A/B — serial vs pool fan-out vs warm cache.

Runs the same mini figure-suite batch (a strategy × file-size grid of
independent simulations) three ways:

* **serial** — ``run_many(specs, workers=1)``, the baseline every other
  mode must match bit-for-bit (compared via ``SimResult.fingerprint()``);
* **parallel** — ``workers=N`` over a process pool, no cache (the pure
  fan-out speedup);
* **cached** — parallel with a cold content-addressed
  :class:`~repro.analysis.runcache.RunCache`, then a warm re-run that
  must be served entirely from disk.

Also A/Bs the max-min fair allocator's incremental ``load`` bookkeeping
against the in-tree rebuild-every-iteration reference at Fig. 11a flow
counts (the satellite optimisation riding this PR).

Run as a script to emit ``BENCH_parallel.json``::

    PYTHONPATH=src python benchmarks/bench_parallel_suite.py [--quick]

or through pytest like the other benchmarks (quick scale). The >=2.5x
parallel-speedup floor is asserted only when the host actually has >=4
CPUs (a 1-core container cannot exhibit it); the warm-cache floor
(< 20 % of the cold-cache wall time) and bit-identical results are
asserted everywhere.
"""

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.analysis.parallel import RunSpec, run_many
from repro.analysis.runcache import RunCache
from repro.net.flow import Flow, _max_min_fair_rates_reference, max_min_fair_rates
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import make_rng
from repro.utils.units import MB, MBps

RESULT_FORMAT_VERSION = 1

FULL_STRATEGIES = ("bds", "gingko", "bullet", "akamai", "chain", "direct")
QUICK_STRATEGIES = ("bds", "gingko", "direct")
# Sized so each full-scale run takes a substantial fraction of a second
# (41-670 simulated cycles depending on strategy): thin 2 MB/s NICs make
# the transfer span many cycles, which is what gives the pool something
# to overlap.
FULL_SIZES_MB = (1024, 2048)
QUICK_SIZES_MB = (48,)

# Progressive filling is O(flows^2) when caps freeze flows one wave at a
# time; 6k flows keeps the reference side of the A/B near half a minute.
FULL_FLOWS = 6_000
QUICK_FLOWS = 2_000


def make_specs(quick: bool, seed: int = 7):
    """The suite batch: strategy × file-size grid on a 6-DC mesh."""
    strategies = QUICK_STRATEGIES if quick else FULL_STRATEGIES
    sizes_mb = QUICK_SIZES_MB if quick else FULL_SIZES_MB

    def make_scenario(size_mb: int):
        def _scenario():
            topo = Topology.full_mesh(
                num_dcs=6,
                servers_per_dc=8,
                wan_capacity=500 * MBps,
                uplink=2 * MBps,
            )
            job = MulticastJob(
                job_id="suite",
                src_dc="dc0",
                dst_dcs=tuple(f"dc{i}" for i in range(1, 6)),
                total_bytes=size_mb * MB,
                block_size=2 * MB,
            )
            job.bind(topo)
            return topo, [job]

        return _scenario

    return [
        RunSpec(
            strategy=strategy,
            seed=seed,
            scenario=make_scenario(size_mb),
            label=f"{strategy}:{size_mb}MB",
        )
        for strategy in strategies
        for size_mb in sizes_mb
    ]


def _fingerprints(outcomes):
    for outcome in outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"run {outcome.spec.label!r} failed: {outcome.error}"
            )
    return [outcome.result.fingerprint() for outcome in outcomes]


def measure_suite(quick: bool, workers: int, progress: bool) -> dict:
    """Time the batch serial / parallel / cold-cache / warm-cache."""
    specs = make_specs(quick)

    started = time.perf_counter()
    serial = run_many(make_specs(quick), workers=1)
    serial_wall = time.perf_counter() - started
    serial_fps = _fingerprints(serial)

    started = time.perf_counter()
    parallel = run_many(make_specs(quick), workers=workers, progress=progress)
    parallel_wall = time.perf_counter() - started
    parallel_fps = _fingerprints(parallel)

    cache_dir = tempfile.mkdtemp(prefix="bench-repro-cache-")
    try:
        cold_cache = RunCache(root=cache_dir)
        started = time.perf_counter()
        cold = run_many(
            make_specs(quick), workers=workers, cache=cold_cache,
            progress=progress,
        )
        cold_wall = time.perf_counter() - started
        cold_fps = _fingerprints(cold)

        warm_cache = RunCache(root=cache_dir)
        started = time.perf_counter()
        warm = run_many(
            make_specs(quick), workers=workers, cache=warm_cache,
            progress=progress,
        )
        warm_wall = time.perf_counter() - started
        warm_fps = _fingerprints(warm)
        entry_count = warm_cache.entry_count()
        size_bytes = warm_cache.size_bytes()
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    return {
        "runs": len(specs),
        "workers": workers,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "parallel_speedup": serial_wall / max(parallel_wall, 1e-9),
        "cold_cache": {
            "wall_s": cold_wall,
            "stats": cold_cache.stats.as_dict(),
        },
        "warm_cache": {
            "wall_s": warm_wall,
            "stats": warm_cache.stats.as_dict(),
            "fraction_of_cold": warm_wall / max(cold_wall, 1e-9),
            "entries": entry_count,
            "size_bytes": size_bytes,
        },
        "identical_results": (
            serial_fps == parallel_fps == cold_fps == warm_fps
        ),
    }


def measure_flow_alloc(quick: bool, seed: int = 0) -> dict:
    """A/B the allocator's incremental load bookkeeping at Fig. 11a scale.

    Synthetic but structurally faithful flow set: each flow crosses its
    source server's uplink, one WAN pair, and its destination server's
    downlink; caps and demands are drawn so freezes happen in many small
    waves (the regime where rebuilding ``load`` every iteration hurts).
    """
    num_flows = QUICK_FLOWS if quick else FULL_FLOWS
    rng = make_rng(seed)
    num_servers = 400
    num_dcs = 20

    capacities = {}
    for s in range(num_servers):
        capacities[("up", s)] = float(rng.uniform(20, 60)) * MBps
        capacities[("down", s)] = float(rng.uniform(20, 60)) * MBps
    for a in range(num_dcs):
        for b in range(num_dcs):
            if a != b:
                capacities[("wan", a, b)] = float(rng.uniform(200, 900)) * MBps

    flows = []
    for i in range(num_flows):
        src = int(rng.integers(0, num_servers))
        dst = int(rng.integers(0, num_servers))
        a, b = int(rng.integers(0, num_dcs)), int(rng.integers(0, num_dcs))
        if a == b:
            b = (a + 1) % num_dcs
        flows.append(
            Flow(
                flow_id=i,
                resources=(("up", src), ("wan", a, b), ("down", dst)),
                rate_cap=float(rng.uniform(1, 30)) * MBps,
                demand=float(rng.uniform(0.5, 20)) * MBps,
            )
        )

    started = time.perf_counter()
    reference = _max_min_fair_rates_reference(flows, capacities)
    reference_s = time.perf_counter() - started

    started = time.perf_counter()
    incremental = max_min_fair_rates(flows, capacities)
    incremental_s = time.perf_counter() - started

    return {
        "flows": num_flows,
        "resources": len(capacities),
        "reference_s": reference_s,
        "incremental_s": incremental_s,
        "speedup": reference_s / max(incremental_s, 1e-9),
        "identical": reference == incremental,
    }


def format_report(payload: dict) -> str:
    suite = payload["suite"]
    alloc = payload["flow_alloc"]
    return (
        f"[parallel suite] {suite['runs']} runs, "
        f"workers={suite['workers']}, cpu_count={payload['cpu_count']}\n"
        f"serial    {suite['serial_wall_s']:.2f}s\n"
        f"parallel  {suite['parallel_wall_s']:.2f}s "
        f"-> {suite['parallel_speedup']:.2f}x\n"
        f"cold cache {suite['cold_cache']['wall_s']:.2f}s "
        f"{suite['cold_cache']['stats']}\n"
        f"warm cache {suite['warm_cache']['wall_s']:.2f}s "
        f"({suite['warm_cache']['fraction_of_cold']:.1%} of cold) "
        f"{suite['warm_cache']['stats']}\n"
        f"identical results across all modes: {suite['identical_results']}\n"
        f"[flow alloc] {alloc['flows']} flows / {alloc['resources']} "
        f"resources: reference {alloc['reference_s']:.3f}s vs incremental "
        f"{alloc['incremental_s']:.3f}s -> {alloc['speedup']:.2f}x "
        f"(identical: {alloc['identical']})"
    )


def run_bench(quick: bool, workers: int, progress: bool = False) -> dict:
    return {
        "format_version": RESULT_FORMAT_VERSION,
        "quick": quick,
        "cpu_count": os.cpu_count() or 1,
        "suite": measure_suite(quick, workers, progress),
        "flow_alloc": measure_flow_alloc(quick),
    }


def test_parallel_suite(benchmark, report):
    """Pytest entry: quick scale, 2 workers; parity + warm cache asserted."""
    payload = benchmark.pedantic(
        lambda: run_bench(quick=True, workers=2), rounds=1, iterations=1
    )
    report("\n" + format_report(payload))
    suite = payload["suite"]
    assert suite["identical_results"]
    assert suite["warm_cache"]["stats"]["hits"] >= 1
    assert suite["warm_cache"]["stats"]["misses"] == 0
    assert payload["flow_alloc"]["identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small batch for CI smoke runs (no speedup floor asserted)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(4, os.cpu_count() or 1),
        help="pool size for the parallel/cached passes (default: >=4)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_parallel.json",
        help="where to write the JSON result (default: ./BENCH_parallel.json)",
    )
    parser.add_argument(
        "--progress", action="store_true", help="stream run_many progress"
    )
    args = parser.parse_args(argv)

    payload = run_bench(
        quick=args.quick, workers=args.workers, progress=args.progress
    )
    print(format_report(payload))

    Path(args.output).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.output}")

    suite = payload["suite"]
    failed = False
    if not suite["identical_results"]:
        print("FAIL: parallel/cached results diverged from serial", file=sys.stderr)
        failed = True
    if not payload["flow_alloc"]["identical"]:
        print("FAIL: incremental allocator diverged from reference", file=sys.stderr)
        failed = True
    if suite["warm_cache"]["stats"]["misses"] > 0:
        print("FAIL: warm cache pass missed", file=sys.stderr)
        failed = True
    if suite["warm_cache"]["fraction_of_cold"] >= 0.20:
        print(
            f"FAIL: warm cache pass took "
            f"{suite['warm_cache']['fraction_of_cold']:.1%} of the cold pass "
            "(floor: 20%)",
            file=sys.stderr,
        )
        failed = True
    cpu_count = payload["cpu_count"]
    if not args.quick:
        if cpu_count >= 4 and args.workers >= 4:
            if suite["parallel_speedup"] < 2.5:
                print(
                    f"FAIL: parallel speedup {suite['parallel_speedup']:.2f}x "
                    "below the 2.5x target at workers>=4",
                    file=sys.stderr,
                )
                failed = True
        else:
            print(
                f"note: host has {cpu_count} CPU(s); the 2.5x parallel-speedup "
                "floor needs >=4 and is not asserted here"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

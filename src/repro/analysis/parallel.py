"""Parallel experiment engine: process-pool fan-out over independent runs.

The evaluation surface (``compare_strategies``, the sweeps, the
``benchmarks/bench_fig*`` scripts) is a matrix of *independent*
(strategy × knob value × seed) simulations — embarrassingly parallel, yet
historically executed one after another on one core. This module is the
missing subsystem:

* :class:`RunSpec` — one simulation as pure data: a scenario factory (or
  pre-built topology + jobs), a strategy name, the ``SimConfig`` knobs,
  and a seed. Specs are materialized in the parent process and shipped to
  workers by value, so scenario factories may freely be lambdas/closures
  (they are never pickled).
* :func:`run_many` — executes a list of specs on a
  ``concurrent.futures.ProcessPoolExecutor``, streams ``k/n done, ETA``
  progress, survives worker failures by marking the affected spec failed
  instead of killing the batch, and merges results deterministically in
  spec order. ``workers=1`` (the default) keeps the serial in-process
  path; because every run owns a fresh topology/jobs/seed, parallel
  results are bit-identical to serial (compare
  :meth:`~repro.net.simulator.SimResult.fingerprint`).

Layered on top is the content-addressed run cache
(:mod:`repro.analysis.runcache`): pass ``cache=RunCache()`` and any spec
whose fingerprint is already on disk is restored instead of re-run, with
identical in-flight specs deduplicated to a single execution.
"""

from __future__ import annotations

import pickle
import sys
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.runcache import RunCache, spec_fingerprint
from repro.net.simulator import SimResult
from repro.net.topology import Topology
from repro.overlay.job import MulticastJob
from repro.utils.rng import SeedLike

ScenarioFn = Callable[[], Tuple[Topology, List[MulticastJob]]]


@dataclass
class RunSpec:
    """One independent simulation, as data.

    Exactly one of ``scenario`` (a zero-argument factory returning
    ``(topology, jobs)``) or the ``topology``+``jobs`` pair must be
    provided. The factory form is preferred: it is invoked freshly per
    execution, making state leakage between runs impossible (the same
    contract ``compare_strategies`` and ``sweep`` always had). Pre-built
    objects are pickled-copied per execution for the same reason.
    """

    strategy: str
    seed: SeedLike = None
    scenario: Optional[ScenarioFn] = None
    topology: Optional[Topology] = None
    jobs: Optional[Sequence[MulticastJob]] = None
    label: str = ""
    config: Any = None  # optional strategy config (e.g. BDSConfig)
    # SimConfig knobs (mirrors run_simulation's signature).
    cycle_seconds: float = 3.0
    max_cycles: int = 100_000
    safety_threshold: float = 0.8
    record_link_stats: bool = False
    incremental_engine: bool = True
    control_overhead_seconds: float = 0.0
    flow_setup_seconds: float = 0.0
    stop_when_complete: bool = True

    def __post_init__(self) -> None:
        has_factory = self.scenario is not None
        has_objects = self.topology is not None and self.jobs is not None
        if has_factory == has_objects:
            raise ValueError(
                "a RunSpec needs either a scenario factory or both "
                "topology and jobs (and not both forms)"
            )
        if not self.label:
            self.label = self.strategy

    def sim_knobs(self) -> Dict[str, Any]:
        """The ``run_simulation`` keyword arguments this spec pins down."""
        return {
            "cycle_seconds": self.cycle_seconds,
            "max_cycles": self.max_cycles,
            "safety_threshold": self.safety_threshold,
            "record_link_stats": self.record_link_stats,
            "incremental_engine": self.incremental_engine,
            "control_overhead_seconds": self.control_overhead_seconds,
            "flow_setup_seconds": self.flow_setup_seconds,
            "stop_when_complete": self.stop_when_complete,
        }

    def materialize(self) -> Tuple[Topology, List[MulticastJob]]:
        """Fresh ``(topology, jobs)`` for one execution of this spec."""
        if self.scenario is not None:
            topology, jobs = self.scenario()
            return topology, list(jobs)
        # Pre-built objects: hand out a deep copy so repeated executions
        # (and the caller's own references) never share mutable state.
        return pickle.loads(pickle.dumps((self.topology, list(self.jobs))))


@dataclass
class RunOutcome:
    """What happened to one spec: a result, a cache hit, or a failure."""

    spec: RunSpec
    index: int
    result: Optional[SimResult] = None
    error: Optional[str] = None
    cached: bool = False  # restored from the on-disk run cache
    deduped: bool = False  # reused an identical in-flight spec's result
    wall_s: float = 0.0
    fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.result is not None


@dataclass
class BatchStats:
    """Aggregates of one :func:`run_many` batch (shown in progress lines)."""

    total: int = 0
    done: int = 0
    cache_hits: int = 0
    deduped: int = 0
    failed: int = 0
    executed: int = 0
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "failed": self.failed,
            "executed": self.executed,
            "wall_s": self.wall_s,
        }


def _execute_payload(payload: Dict[str, Any]) -> SimResult:
    """Run one materialized spec (the worker-side entry point)."""
    from repro.analysis.runner import run_simulation

    return run_simulation(
        payload["topology"],
        payload["jobs"],
        payload["strategy"],
        seed=payload["seed"],
        config=payload["config"],
        **payload["knobs"],
    )


class _Progress:
    """``k/n done, ETA`` streaming to stderr plus an optional callback."""

    def __init__(
        self,
        stats: BatchStats,
        enabled: bool,
        on_progress: Optional[Callable[[BatchStats], None]],
    ) -> None:
        self.stats = stats
        self.enabled = enabled
        self.on_progress = on_progress
        self.started = _time.perf_counter()
        self._tty = enabled and getattr(sys.stderr, "isatty", lambda: False)()

    def tick(self) -> None:
        stats = self.stats
        if self.on_progress is not None:
            self.on_progress(stats)
        if not self.enabled:
            return
        elapsed = _time.perf_counter() - self.started
        remaining = stats.total - stats.done
        eta = (elapsed / stats.done) * remaining if stats.done else float("inf")
        line = (
            f"[run_many] {stats.done}/{stats.total} done "
            f"({stats.cache_hits} cache hits, {stats.deduped} deduped, "
            f"{stats.failed} failed) elapsed {elapsed:.1f}s ETA {eta:.1f}s"
        )
        if self._tty:
            sys.stderr.write("\r" + line + (" " * 8))
            if remaining == 0:
                sys.stderr.write("\n")
        else:
            sys.stderr.write(line + "\n")
        sys.stderr.flush()


def run_many(
    specs: Sequence[RunSpec],
    workers: int = 1,
    cache: Optional[RunCache] = None,
    progress: bool = False,
    on_progress: Optional[Callable[[BatchStats], None]] = None,
) -> List[RunOutcome]:
    """Execute every spec and return outcomes in spec order.

    ``workers=1`` runs in-process, in order — the exact serial semantics
    the evaluation code always had. ``workers>1`` fans the specs out over
    a process pool; completion order is whatever the machine does, but
    the returned list is always indexed by spec order, so downstream
    consumers are deterministic either way.

    Failure containment: an exception inside one run (bad strategy name,
    simulation error) marks *that* outcome failed and the batch carries
    on. A hard worker death (segfault, OOM kill) poisons the whole pool;
    the affected specs are resubmitted to a fresh pool and only specs
    that break a pool twice are marked failed.

    With ``cache`` set, each spec's fingerprint is looked up first
    (restored results count as that spec's outcome, ``cached=True``), and
    identical cache-able specs in the same batch execute once
    (``deduped=True`` on the followers). Successful executions are stored
    back. Scenario factories run in the parent during this phase; factory
    exceptions therefore propagate to the caller, exactly like the old
    serial loops.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    specs = list(specs)
    stats = BatchStats(total=len(specs))
    reporter = _Progress(stats, progress, on_progress)
    outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
    started = _time.perf_counter()

    # Materialize + cache lookup + in-flight dedup, in spec order.
    pending: List[Tuple[int, Dict[str, Any]]] = []
    primary_by_key: Dict[str, int] = {}
    followers: Dict[int, List[int]] = {}
    for i, spec in enumerate(specs):
        topology, jobs = spec.materialize()
        key = None
        if cache is not None:
            key = spec_fingerprint(
                topology,
                jobs,
                spec.strategy,
                spec.sim_knobs(),
                spec.seed,
                spec.config,
            )
            restored = cache.get(key)
            if restored is not None:
                outcomes[i] = RunOutcome(
                    spec=spec,
                    index=i,
                    result=restored,
                    cached=True,
                    fingerprint=key,
                )
                stats.done += 1
                stats.cache_hits += 1
                reporter.tick()
                continue
            if key is not None and key in primary_by_key:
                followers.setdefault(primary_by_key[key], []).append(i)
                outcomes[i] = RunOutcome(
                    spec=spec, index=i, deduped=True, fingerprint=key
                )
                continue
            if key is not None:
                primary_by_key[key] = i
        payload = {
            "topology": topology,
            "jobs": jobs,
            "strategy": spec.strategy,
            "seed": spec.seed,
            "config": spec.config,
            "knobs": spec.sim_knobs(),
        }
        outcomes[i] = RunOutcome(spec=spec, index=i, fingerprint=key)
        pending.append((i, payload))

    def finish(i: int, result: Optional[SimResult], error: Optional[str], wall: float) -> None:
        outcome = outcomes[i]
        assert outcome is not None
        outcome.result = result
        outcome.error = error
        outcome.wall_s = wall
        stats.done += 1
        if result is None:
            stats.failed += 1
        else:
            stats.executed += 1
            if cache is not None:
                cache.put(outcome.fingerprint, result)
        # Settle in-flight duplicates of this spec.
        for j in followers.get(i, ()):  # noqa: B023 - resolved eagerly
            follower = outcomes[j]
            assert follower is not None
            follower.result = result
            follower.error = error
            stats.done += 1
            if result is None:
                stats.failed += 1
            else:
                stats.deduped += 1
            reporter.tick()
        reporter.tick()

    if workers == 1 or len(pending) <= 1:
        for i, payload in pending:
            run_started = _time.perf_counter()
            try:
                result: Optional[SimResult] = _execute_payload(payload)
                error = None
            except Exception as exc:  # contained: one failed spec
                result, error = None, f"{type(exc).__name__}: {exc}"
            finish(i, result, error, _time.perf_counter() - run_started)
    else:
        _run_pooled(pending, workers, finish)

    stats.wall_s = _time.perf_counter() - started
    return [outcome for outcome in outcomes if outcome is not None]


def _run_pooled(
    pending: List[Tuple[int, Dict[str, Any]]],
    workers: int,
    finish: Callable[[int, Optional[SimResult], Optional[str], float], None],
) -> None:
    """Fan ``pending`` out over a process pool, surviving worker deaths.

    A hard worker death (segfault, OOM kill) breaks the whole pool, which
    poisons every in-flight future — including innocent specs. All
    poisoned specs get a second attempt, each in its *own* single-worker
    pool, so only the spec that actually kills its worker ends up failed.
    """
    from concurrent.futures import as_completed
    from concurrent.futures.process import BrokenProcessPool

    retry: List[Tuple[int, Dict[str, Any]]] = []
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        submitted: Dict[Any, Tuple[int, Dict[str, Any], float]] = {}
        queue = list(pending)
        try:
            for i, payload in queue:
                future = pool.submit(_execute_payload, payload)
                submitted[future] = (i, payload, _time.perf_counter())
        except BrokenProcessPool:
            done_count = len(submitted)
            retry.extend(queue[done_count:])
        for future in as_completed(submitted):
            i, payload, t0 = submitted[future]
            wall = _time.perf_counter() - t0
            try:
                finish(i, future.result(), None, wall)
            except BrokenProcessPool:
                retry.append((i, payload))
            except Exception as exc:
                finish(i, None, f"{type(exc).__name__}: {exc}", wall)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    for i, payload in retry:
        t0 = _time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                result = solo.submit(_execute_payload, payload).result()
            finish(i, result, None, _time.perf_counter() - t0)
        except BrokenProcessPool:
            finish(
                i,
                None,
                "worker process died while running this spec",
                _time.perf_counter() - t0,
            )
        except Exception as exc:
            finish(
                i,
                None,
                f"{type(exc).__name__}: {exc}",
                _time.perf_counter() - t0,
            )

"""Equivalence suite for the vectorized data-plane kernels.

The array waterfill (`max_min_fair_rates_vectorized`), the array clip
(`clip_rates_to_capacity_vectorized`), and the batched delivery path
(`PossessionIndex.record_deliveries` + `Simulation._apply_deliveries`)
all claim *bit-identity* with the scalar baselines they replace. These
tests make that claim falsifiable: randomized scenario sweeps compare
the two implementations dict-for-dict, error paths must raise the same
exceptions, and whole simulations are fingerprinted under both
``SimConfig(vectorized_flow=...)`` settings.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.runner import make_strategy
from repro.lp.incidence import FlowIncidence, segment_mins
from repro.net.flow import (
    Flow,
    FlowKernelStats,
    clip_rates_to_capacity_scalar,
    clip_rates_to_capacity_vectorized,
    max_min_fair_rates_scalar,
    max_min_fair_rates_vectorized,
)
from repro.net.simulator import SimConfig, SimResult, Simulation
from repro.net.topology import Topology
from repro.overlay.blocks import Block
from repro.overlay.job import MulticastJob
from repro.overlay.store import PossessionIndex
from repro.utils.units import MB, MBps

# ---------------------------------------------------------------------------
# Randomized scenario generation
# ---------------------------------------------------------------------------

RESOURCE_POOL = [("wan", f"dc{i}", f"dc{j}") for i in range(6) for j in range(6)]


def _random_scenario(rng: random.Random, num_flows: int):
    """Random flows over a random subset of a shared resource pool."""
    resources = rng.sample(RESOURCE_POOL, rng.randint(3, 12))
    capacities = {
        res: rng.choice([0.5, 1.0, 2.0, 5.0, 10.0, 100.0]) for res in resources
    }
    flows = []
    for i in range(num_flows):
        path = tuple(rng.sample(resources, rng.randint(1, min(4, len(resources)))))
        demand = rng.choice([0.0, 0.25, 1.0, 3.0, 7.5, float("inf")])
        rate_cap = rng.choice([None, 0.0, 0.5, 2.0, 50.0])
        # flow ids deliberately collide sometimes to exercise dup handling
        fid = f"f{i % max(1, num_flows - 2)}"
        flows.append(
            Flow(flow_id=fid, resources=path, demand=demand, rate_cap=rate_cap)
        )
    return flows, capacities


# ---------------------------------------------------------------------------
# Waterfill: vectorized ≡ scalar
# ---------------------------------------------------------------------------


class TestWaterfillEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("num_flows", [1, 7, 64, 150])
    def test_randomized_bit_identity(self, seed, num_flows):
        rng = random.Random(1000 * seed + num_flows)
        flows, capacities = _random_scenario(rng, num_flows)
        scalar = max_min_fair_rates_scalar(flows, capacities)
        vectorized = max_min_fair_rates_vectorized(flows, capacities)
        # Exact dict equality: same keys, same float bits.
        assert scalar == vectorized
        assert all(isinstance(v, float) for v in vectorized.values())

    def test_zero_cap_flows_skip_resource_validation(self):
        # Scalar semantics: flows with no effective capacity are preset to
        # 0 and never validated, so their unknown resources must not raise
        # in the vectorized path either.
        flows = [
            Flow(flow_id="dead", resources=(("wan", "x", "y"),), rate_cap=0.0),
            Flow(flow_id="live", resources=(("wan", "a", "b"),), demand=5.0),
        ]
        caps = {("wan", "a", "b"): 2.0}
        scalar = max_min_fair_rates_scalar(flows, caps)
        vectorized = max_min_fair_rates_vectorized(flows, caps)
        assert scalar == vectorized == {"dead": 0.0, "live": 2.0}

    def test_flow_caps_hit_before_saturation(self):
        # Rate caps freeze flows below every link's fair share; the
        # leftover headroom goes to the uncapped flow.
        shared = ("wan", "a", "b")
        flows = [
            Flow(flow_id="small", resources=(shared,), rate_cap=1.0),
            Flow(flow_id="mid", resources=(shared,), rate_cap=3.0),
            Flow(flow_id="big", resources=(shared,)),
        ]
        caps = {shared: 12.0}
        expected = {"small": 1.0, "mid": 3.0, "big": 8.0}
        assert max_min_fair_rates_scalar(flows, caps) == expected
        assert max_min_fair_rates_vectorized(flows, caps) == expected

    def test_unknown_resource_raises_same_keyerror(self):
        flows = [Flow(flow_id="f", resources=(("wan", "a", "b"),), demand=1.0)]
        with pytest.raises(KeyError) as scalar_err:
            max_min_fair_rates_scalar(flows, {})
        with pytest.raises(KeyError) as vec_err:
            max_min_fair_rates_vectorized(flows, {})
        assert str(scalar_err.value) == str(vec_err.value)

    def test_unbounded_raises_same_valueerror(self):
        flows = [Flow(flow_id="f", resources=())]
        with pytest.raises(ValueError, match="unbounded"):
            max_min_fair_rates_scalar(flows, {})
        with pytest.raises(ValueError, match="unbounded"):
            max_min_fair_rates_vectorized(flows, {})

    def test_stats_counter_threads_through(self):
        flows = [
            Flow(flow_id="f", resources=(("wan", "a", "b"),), demand=1.0)
        ]
        stats = FlowKernelStats()
        max_min_fair_rates_vectorized(flows, {("wan", "a", "b"): 5.0}, stats=stats)
        # A healthy run records no stalemates.
        assert stats.stalemates == 0


# ---------------------------------------------------------------------------
# Clip: vectorized ≡ scalar
# ---------------------------------------------------------------------------


class TestClipEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_bit_identity(self, seed):
        rng = random.Random(seed)
        flows, capacities = _random_scenario(rng, rng.randint(1, 80))
        requested = {
            f.flow_id: rng.choice([0.0, 0.3, 1.5, 4.0, 20.0]) for f in flows
        }
        scalar = clip_rates_to_capacity_scalar(flows, requested, capacities)
        vectorized = clip_rates_to_capacity_vectorized(
            flows, requested, capacities
        )
        assert scalar == vectorized

    def test_validates_all_resources_even_at_zero_rate(self):
        # clip (unlike the waterfill) validates every flow's resources.
        flows = [Flow(flow_id="f", resources=(("wan", "x", "y"),))]
        with pytest.raises(KeyError):
            clip_rates_to_capacity_scalar(flows, {"f": 0.0}, {})
        with pytest.raises(KeyError):
            clip_rates_to_capacity_vectorized(flows, {"f": 0.0}, {})


# ---------------------------------------------------------------------------
# FlowIncidence / segment_mins building blocks
# ---------------------------------------------------------------------------


class TestIncidenceHelpers:
    def test_segment_mins_handles_empty_segments(self):
        values = np.array([3.0, 1.0, 2.0])
        starts = np.array([0, 2, 2, 2])
        lens = np.array([2, 0, 1, 0])
        out = segment_mins(values, starts, lens, default=np.inf)
        assert out.tolist() == [1.0, np.inf, 2.0, np.inf]

    def test_segment_mins_empty_input(self):
        out = segment_mins(
            np.array([]), np.array([0]), np.array([0]), default=7.0
        )
        assert out.tolist() == [7.0]

    def test_incidence_build_rejects_unknown_resource(self):
        with pytest.raises(KeyError, match="unknown resource"):
            FlowIncidence.build([(("wan", "a", "b"),)], {})

    def test_incidence_loads_and_usage(self):
        r1, r2 = ("wan", "a", "b"), ("wan", "b", "c")
        inc = FlowIncidence.build(
            [(r1,), (r1, r2)], {r1: 10.0, r2: 20.0}
        )
        assert inc.num_flows == 2 and inc.num_resources == 2
        assert inc.loads().tolist() == [2, 1]
        assert inc.usage(np.array([1.0, 3.0])).tolist() == [4.0, 3.0]


# ---------------------------------------------------------------------------
# Batched delivery: record_deliveries ≡ looped record_delivery
# ---------------------------------------------------------------------------


def _fresh_indexes():
    server_dc = {f"dc{d}-s{s}": f"dc{d}" for d in range(3) for s in range(4)}
    return (
        PossessionIndex(server_dc, vectorized=True),
        PossessionIndex(server_dc, vectorized=True),
        PossessionIndex(server_dc, vectorized=False),
        sorted(server_dc),
    )


def _random_events(rng: random.Random, servers, count: int):
    blocks = [Block(job_id="j", index=i, size=MB) for i in range(10)]
    events = []
    for _ in range(count):
        block = rng.choice(blocks)
        src, dst = rng.sample(servers, 2)
        events.append((block, src, dst, rng.random() * 10.0, "dc0"))
    return events


class TestBatchedDelivery:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("count", [1, 5, 40, 200])
    def test_batch_matches_sequential(self, seed, count):
        rng = random.Random(seed * 7 + count)
        batched, sequential, dict_backed, servers = _fresh_indexes()
        events = _random_events(rng, servers, count)

        out_batch = batched.record_deliveries(events)
        out_seq = [sequential.record_delivery(*e) for e in events]
        out_dict = dict_backed.record_deliveries(events)

        assert out_batch == out_seq == out_dict
        assert batched.deliveries == sequential.deliveries
        assert batched.epoch == sequential.epoch == dict_backed.epoch
        for server in servers:
            assert batched.blocks_on(server) == sequential.blocks_on(server)
        for block in {e[0] for e in events}:
            bid = block.block_id
            assert batched.holders(bid) == sequential.holders(bid)
            assert (
                batched.duplicate_count(bid)
                == sequential.duplicate_count(bid)
                == dict_backed.duplicate_count(bid)
            )
            for dc in ("dc0", "dc1", "dc2"):
                assert batched.dc_copy_count(dc, bid) == sequential.dc_copy_count(
                    dc, bid
                )

    def test_within_batch_duplicate_keeps_first_occurrence(self):
        batched, sequential, _, servers = _fresh_indexes()
        block = Block(job_id="j", index=0, size=MB)
        events = [
            (block, servers[0], servers[1], 1.0, "dc0"),
            (block, servers[2], servers[1], 2.0, "dc0"),  # same pair, later
        ]
        out = batched.record_deliveries(events)
        assert out[0] is not None and out[1] is None
        assert [r.time for r in batched.deliveries] == [1.0]
        assert sequential.record_delivery(*events[0]) is not None
        assert sequential.record_delivery(*events[1]) is None

    def test_unknown_destination_rejected(self):
        batched, _, _, servers = _fresh_indexes()
        block = Block(job_id="j", index=0, size=MB)
        with pytest.raises(KeyError, match="unknown server"):
            batched.record_deliveries([(block, servers[0], "ghost", 1.0, "dc0")])
        # Whole-batch rejection: nothing landed.
        assert batched.epoch == 0 and not batched.deliveries

    def test_empty_batch_is_noop(self):
        batched, _, _, _ = _fresh_indexes()
        assert batched.record_deliveries([]) == []
        assert batched.epoch == 0


# ---------------------------------------------------------------------------
# Whole-simulation golden fingerprints: vectorized_flow on/off
# ---------------------------------------------------------------------------

SEED = 90


def _run(strategy_name: str, vectorized_flow: bool) -> SimResult:
    topo = Topology.full_mesh(
        num_dcs=5, servers_per_dc=4, wan_capacity=500 * MBps, uplink=25 * MBps
    )
    job = MulticastJob(
        job_id="fig9",
        src_dc="dc0",
        dst_dcs=tuple(f"dc{i}" for i in range(1, 5)),
        total_bytes=64 * MB,
        block_size=4 * MB,
    )
    job.bind(topo)
    sim = Simulation(
        topology=topo,
        jobs=[job],
        strategy=make_strategy(strategy_name, seed=SEED),
        config=SimConfig(vectorized_flow=vectorized_flow),
        seed=SEED,
    )
    return sim.run()


def _fingerprint(result: SimResult):
    return (
        result.job_completion,
        result.dc_completion,
        result.server_completion,
        result.blocks_per_cycle(),
        [s.bytes_transferred for s in result.cycle_stats],
        [r.time for r in result.store.deliveries],
    )


class TestDataPlaneGolden:
    @pytest.mark.parametrize("strategy", ["bds", "gingko", "bullet"])
    def test_vectorized_flow_matches_scalar(self, strategy):
        vectorized = _run(strategy, vectorized_flow=True)
        scalar = _run(strategy, vectorized_flow=False)
        assert vectorized.all_complete
        assert _fingerprint(vectorized) == _fingerprint(scalar)

    def test_delivery_records_identical(self):
        vectorized = _run("gingko", vectorized_flow=True)
        scalar = _run("gingko", vectorized_flow=False)
        assert vectorized.store.deliveries == scalar.store.deliveries
        assert len(vectorized.store.deliveries) > 0

    def test_stalemate_counter_exported(self):
        result = _run("bds", vectorized_flow=True)
        # Healthy scenario: the counter exists and stays at zero.
        assert result.total_rate_stalemates() == 0
